//! The bounded front end: accept loop with admission control, fixed
//! worker pool over a bounded ready queue, and a parking lot + poller for
//! idle keep-alive connections.
//!
//! Threading shape (all counts fixed at start):
//!
//! ```text
//!  accept thread ──admission──▶ ready queue (bounded) ──▶ N workers
//!        │ shed 429                   ▲                      │ idle
//!        ▼                           promote                 ▼
//!      close                          └──── poller ◀──── parking lot
//! ```
//!
//! A connection lives in exactly one place: the ready queue (bytes
//! waiting, or just accepted), a worker (being served), or the parking
//! lot (keep-alive, idle between requests). The poller sweeps the lot
//! with non-blocking peeks, promoting readable connections and reaping
//! ones idle past the budget. No thread ever blocks on a socket without
//! a deadline.

use crate::stats::FrontendStats;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-connection read buffer. Small on purpose: thousands of parked
/// keep-alive connections each hold one.
const READ_BUF: usize = 1024;

/// Requests served on one connection before a worker rotates it back
/// through the queue, so a pipelining client cannot monopolize a worker.
const MAX_REQUESTS_PER_SLICE: usize = 32;

/// Everything bounded about the front end. Defaults suit a production
/// box; tests shrink the budgets to milliseconds.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Worker threads (fixed pool). Default: `4 × cores`, clamped to
    /// [4, 64] — workers block on the store, not on sockets, so a few
    /// per core keeps the engine busy without thread explosion.
    pub workers: usize,
    /// Ready-queue capacity. Accepts beyond this are shed with `429`.
    pub queue_depth: usize,
    /// Global live-connection cap (fd budget). Accepts beyond it shed.
    pub max_conns: usize,
    /// In-flight connections allowed per client IP before `429`
    /// (fairness: one greedy client cannot take every slot).
    pub max_per_client: usize,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the poller reaps it.
    pub idle_timeout: Duration,
    /// Wall-clock budget for reading one request once its first byte
    /// exists — a deadline, not a per-read timeout, so a client
    /// trickling one byte per second cannot extend it (slow-loris).
    pub read_budget: Duration,
    /// Socket write timeout for responses (dead/slow-reading peers).
    pub write_budget: Duration,
    /// Soft per-request deadline: requests served slower than this are
    /// counted (`deadline-overruns`) for operators to alarm on.
    pub request_deadline: Duration,
    /// Advertised `Retry-After` on shed responses.
    pub retry_after: Duration,
    /// Parking-lot sweep cadence (adds at most this much latency to the
    /// first request after an idle gap).
    pub poll_interval: Duration,
    /// Sleep after an `accept(2)` failure (EMFILE et al.) instead of
    /// hot-spinning the accept loop.
    pub accept_error_backoff: Duration,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        FrontendConfig {
            workers: (cores * 4).clamp(4, 64),
            queue_depth: 1024,
            max_conns: 8192,
            max_per_client: 256,
            idle_timeout: Duration::from_secs(30),
            read_budget: Duration::from_secs(10),
            write_budget: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
            retry_after: Duration::from_secs(1),
            poll_interval: Duration::from_millis(10),
            accept_error_backoff: Duration::from_millis(100),
        }
    }
}

/// What [`Service::serve_one`] did with the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// One request answered; `keep` says whether the protocol wants the
    /// connection kept open.
    Served {
        /// Keep the connection for more requests.
        keep: bool,
    },
    /// Clean end of stream at a request boundary (client done).
    CleanClose,
    /// The read budget expired mid-request (slow-loris kill).
    TimedOut,
    /// Unrecoverable protocol or socket error; close.
    Fatal,
}

/// A protocol binding: parse one request off `reader`, write one
/// response to `out`. The front end owns everything else about the
/// socket (budgets, parking, shedding, accounting).
pub trait Service: Send + Sync + 'static {
    /// Serves exactly one request. `reader` enforces the front end's
    /// read budget internally — a timeout surfaces as an I/O error with
    /// kind `TimedOut`/`WouldBlock`, which implementations map to
    /// [`ServeOutcome::TimedOut`].
    fn serve_one(&self, reader: &mut dyn BufRead, out: &mut dyn Write) -> ServeOutcome;

    /// The canned over-capacity response (e.g. HTTP `429` with
    /// `Retry-After`), rendered once at startup and written verbatim to
    /// shed connections.
    fn shed_response(&self, retry_after: Duration) -> Vec<u8>;
}

/// Source of inbound connections. `TcpListener` in production; tests
/// inject failures to pin the accept-error backoff behaviour.
pub trait Acceptor: Send + 'static {
    /// Accepts one connection.
    fn accept_conn(&self) -> io::Result<(TcpStream, SocketAddr)>;
    /// Bound address.
    fn local_addr(&self) -> io::Result<SocketAddr>;
}

impl Acceptor for TcpListener {
    fn accept_conn(&self) -> io::Result<(TcpStream, SocketAddr)> {
        self.accept()
    }
    fn local_addr(&self) -> io::Result<SocketAddr> {
        TcpListener::local_addr(self)
    }
}

// ------------------------------------------------------------ deadlines

/// Shared per-connection read deadline, armed by the worker before each
/// request and checked by [`DeadlineStream`] on every read.
#[derive(Debug, Default)]
struct DeadlineCell(Mutex<Option<Instant>>);

impl DeadlineCell {
    fn arm(&self, until: Instant) {
        *self.0.lock().expect("deadline poisoned") = Some(until);
    }
    fn disarm(&self) {
        *self.0.lock().expect("deadline poisoned") = None;
    }
    fn get(&self) -> Option<Instant> {
        *self.0.lock().expect("deadline poisoned")
    }
}

/// A `TcpStream` reader that enforces a wall-clock deadline rather than
/// a per-read timeout: each `read` re-checks the remaining budget, so a
/// peer feeding one byte at a time exhausts the budget instead of
/// resetting it (the slow-loris hole in plain `set_read_timeout`).
///
/// The stream is the connection's single shared descriptor (see
/// [`Conn`]): `Arc`, not `try_clone`, so C10k costs 10k fds, not 30k.
struct DeadlineStream {
    stream: Arc<TcpStream>,
    deadline: Arc<DeadlineCell>,
}

impl DeadlineStream {
    fn socket(&self) -> &TcpStream {
        &self.stream
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            let timeout = match self.deadline.get() {
                Some(d) => {
                    let rem = d.saturating_duration_since(Instant::now());
                    if rem.is_zero() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "read budget exhausted",
                        ));
                    }
                    // set_read_timeout rejects zero; clamp up.
                    Some(rem.max(Duration::from_millis(1)))
                }
                None => None,
            };
            self.stream.set_read_timeout(timeout)?;
            match (&*self.stream).read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Socket timer fired; loop re-checks the deadline and
                    // errors out if the budget is truly gone.
                    continue;
                }
                other => return other,
            }
        }
    }
}

// ------------------------------------------------------- conn accounting

/// Live-connection registry: socket clones for hard shutdown, per-client
/// in-flight counts for fairness. Entries are released by [`ConnGuard`]
/// **on drop**, so a panicking handler cannot leak them (the bug the old
/// `ConnTracker::release`-after-handler call had).
#[derive(Default)]
struct Registry {
    next: AtomicU64,
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    conns: HashMap<u64, Arc<TcpStream>>,
    per_client: HashMap<IpAddr, usize>,
}

enum Admission {
    Admitted(ConnGuard),
    /// Per-client fairness cap hit.
    ClientCap,
    /// Global connection cap hit.
    Full,
}

impl Registry {
    fn admit(
        self: &Arc<Registry>,
        stream: &Arc<TcpStream>,
        peer: IpAddr,
        cfg: &FrontendConfig,
        stats: &Arc<FrontendStats>,
    ) -> Admission {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if inner.conns.len() >= cfg.max_conns {
            return Admission::Full;
        }
        let slot = inner.per_client.entry(peer).or_insert(0);
        if *slot >= cfg.max_per_client {
            return Admission::ClientCap;
        }
        *slot += 1;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        inner.conns.insert(id, Arc::clone(stream));
        drop(inner);
        FrontendStats::gauge_add(&stats.active, 1);
        Admission::Admitted(ConnGuard {
            registry: Arc::clone(self),
            stats: Arc::clone(stats),
            id,
            peer,
        })
    }

    fn release(&self, id: u64, peer: IpAddr) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.conns.remove(&id);
        if let Some(n) = inner.per_client.get_mut(&peer) {
            *n -= 1;
            if *n == 0 {
                inner.per_client.remove(&peer);
            }
        }
    }

    /// Hard-closes every live socket so blocked reads/writes fail now
    /// instead of waiting out their budgets (shutdown path).
    fn close_all(&self) {
        for conn in self.inner.lock().expect("registry poisoned").conns.values() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// RAII token for one admitted connection; releases the registry entry,
/// the per-client slot, and the active gauge on drop — on every path,
/// including unwinding out of a panicked handler.
struct ConnGuard {
    registry: Arc<Registry>,
    stats: Arc<FrontendStats>,
    id: u64,
    peer: IpAddr,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.registry.release(self.id, self.peer);
        FrontendStats::gauge_add(&self.stats.active, -1);
    }
}

/// One live connection with its buffered reader (kept across parkings so
/// pipelined bytes survive) and write half. Reader, writer, and the
/// registry's shutdown handle all share **one** descriptor (`Arc`): a
/// parked connection costs exactly one fd.
struct Conn {
    reader: BufReader<DeadlineStream>,
    out: Arc<TcpStream>,
    deadline: Arc<DeadlineCell>,
    last_active: Instant,
    _guard: ConnGuard,
}

/// What a non-blocking peek said about a socket.
enum Ready {
    Data,
    Eof,
    Idle,
}

fn readiness(stream: &TcpStream) -> io::Result<Ready> {
    stream.set_nonblocking(true)?;
    let mut probe = [0u8; 1];
    let peeked = stream.peek(&mut probe);
    stream.set_nonblocking(false)?;
    match peeked {
        Ok(0) => Ok(Ready::Eof),
        Ok(_) => Ok(Ready::Data),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(Ready::Idle),
        Err(e) => Err(e),
    }
}

impl Conn {
    fn new(stream: Arc<TcpStream>, guard: ConnGuard, cfg: &FrontendConfig) -> io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(cfg.write_budget))?;
        let out = Arc::clone(&stream);
        let deadline = Arc::new(DeadlineCell::default());
        let reader = BufReader::with_capacity(
            READ_BUF,
            DeadlineStream {
                stream,
                deadline: Arc::clone(&deadline),
            },
        );
        Ok(Conn {
            reader,
            out,
            deadline,
            last_active: Instant::now(),
            _guard: guard,
        })
    }

    fn ready(&self) -> io::Result<Ready> {
        if !self.reader.buffer().is_empty() {
            return Ok(Ready::Data); // pipelined bytes already buffered
        }
        readiness(self.reader.get_ref().socket())
    }
}

// ------------------------------------------------------- queue + parking

/// Bounded MPMC queue of ready connections (mutex + condvar; the queue
/// hands whole connections to workers, so the lock is held for a push or
/// pop only).
struct ConnQueue {
    inner: Mutex<QueueInner>,
    takeable: Condvar,
    cap: usize,
    stats: Arc<FrontendStats>,
}

struct QueueInner {
    q: VecDeque<Conn>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize, stats: Arc<FrontendStats>) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                q: VecDeque::new(),
                closed: false,
            }),
            takeable: Condvar::new(),
            cap,
            stats,
        }
    }

    /// Enqueues, or hands the connection back when full/closed (the
    /// caller sheds or parks it). The `Err` is a hand-back channel, not
    /// an error: the caller immediately takes ownership again.
    #[allow(clippy::result_large_err)]
    fn push(&self, conn: Conn) -> Result<(), Conn> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.q.len() >= self.cap {
            return Err(conn);
        }
        inner.q.push_back(conn);
        FrontendStats::gauge_add(&self.stats.queued, 1);
        drop(inner);
        self.takeable.notify_one();
        Ok(())
    }

    /// Blocks for the next ready connection; `None` once closed.
    fn pop(&self) -> Option<Conn> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = inner.q.pop_front() {
                FrontendStats::gauge_add(&self.stats.queued, -1);
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = self.takeable.wait(inner).expect("queue poisoned");
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        let drained = inner.q.len();
        inner.q.clear(); // drops conns → RAII guards release
        FrontendStats::gauge_add(&self.stats.queued, -(drained as i64));
        drop(inner);
        self.takeable.notify_all();
    }
}

/// Idle keep-alive connections between requests. One poller thread
/// sweeps the lot every `poll_interval`, promoting readable connections
/// to the queue and reaping ones idle past the budget.
struct ParkingLot {
    inner: Mutex<LotInner>,
}

struct LotInner {
    parked: Vec<Conn>,
    closed: bool,
}

impl ParkingLot {
    fn new() -> ParkingLot {
        ParkingLot {
            inner: Mutex::new(LotInner {
                parked: Vec::new(),
                closed: false,
            }),
        }
    }

    // Hand-back `Err`, same as `ConnQueue::push`.
    #[allow(clippy::result_large_err)]
    fn park(&self, conn: Conn) -> Result<(), Conn> {
        let mut inner = self.inner.lock().expect("lot poisoned");
        if inner.closed {
            return Err(conn);
        }
        inner.parked.push(conn);
        Ok(())
    }

    fn take_all(&self) -> Vec<Conn> {
        std::mem::take(&mut self.inner.lock().expect("lot poisoned").parked)
    }

    fn close(&self) {
        let mut inner = self.inner.lock().expect("lot poisoned");
        inner.closed = true;
        inner.parked.clear(); // drops conns → RAII guards release
    }
}

// -------------------------------------------------------------- frontend

/// The front end itself. Construct with [`Frontend::start`]; the
/// returned handle stops everything on [`FrontendHandle::stop`] or drop.
pub struct Frontend;

impl Frontend {
    /// Starts the front end on a bound listener.
    pub fn start<S: Service>(
        listener: TcpListener,
        service: S,
        cfg: FrontendConfig,
        stats: Arc<FrontendStats>,
    ) -> io::Result<FrontendHandle> {
        Frontend::start_with(listener, service, cfg, stats)
    }

    /// Starts the front end over any [`Acceptor`] (tests inject accept
    /// failures here to pin the backoff behaviour).
    pub fn start_with<A: Acceptor, S: Service>(
        acceptor: A,
        service: S,
        cfg: FrontendConfig,
        stats: Arc<FrontendStats>,
    ) -> io::Result<FrontendHandle> {
        let addr = acceptor.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::default());
        let queue = Arc::new(ConnQueue::new(cfg.queue_depth, Arc::clone(&stats)));
        let lot = Arc::new(ParkingLot::new());
        let service = Arc::new(service);
        let shed_payload: Arc<[u8]> = service.shed_response(cfg.retry_after).into();

        let mut threads = Vec::with_capacity(cfg.workers + 2);

        // Workers: serve ready connections, park idle ones.
        for _ in 0..cfg.workers.max(1) {
            let (queue, lot, stats, service, cfg) = (
                Arc::clone(&queue),
                Arc::clone(&lot),
                Arc::clone(&stats),
                Arc::clone(&service),
                cfg.clone(),
            );
            threads.push(std::thread::spawn(move || {
                worker_loop(&queue, &lot, &stats, service.as_ref(), &cfg)
            }));
        }

        // Poller: sweep the parking lot.
        {
            let (queue, lot, stats, stop, cfg) = (
                Arc::clone(&queue),
                Arc::clone(&lot),
                Arc::clone(&stats),
                Arc::clone(&stop),
                cfg.clone(),
            );
            threads.push(std::thread::spawn(move || {
                poller_loop(&queue, &lot, &stats, &stop, &cfg)
            }));
        }

        // Accept loop: admission control, shedding, error backoff.
        {
            let (queue, registry, stats, stop, cfg) = (
                Arc::clone(&queue),
                Arc::clone(&registry),
                Arc::clone(&stats),
                Arc::clone(&stop),
                cfg.clone(),
            );
            threads.push(std::thread::spawn(move || {
                accept_loop(
                    &acceptor,
                    &queue,
                    &registry,
                    &stats,
                    &stop,
                    &cfg,
                    &shed_payload,
                )
            }));
        }

        Ok(FrontendHandle {
            addr,
            stop,
            queue,
            lot,
            registry,
            stats,
            threads,
        })
    }
}

fn accept_loop<A: Acceptor>(
    acceptor: &A,
    queue: &ConnQueue,
    registry: &Arc<Registry>,
    stats: &Arc<FrontendStats>,
    stop: &AtomicBool,
    cfg: &FrontendConfig,
    shed_payload: &[u8],
) {
    loop {
        let accepted = acceptor.accept_conn();
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let (stream, peer) = match accepted {
            Ok(pair) => pair,
            Err(_) => {
                // EMFILE and friends: hot-spinning `continue` here burns
                // 100% CPU exactly when the box is already in trouble.
                // Count it, back off, try again.
                stats.accept_errors();
                std::thread::sleep(cfg.accept_error_backoff);
                continue;
            }
        };
        stats.accepted();
        let stream = Arc::new(stream);
        match registry.admit(&stream, peer.ip(), cfg, stats) {
            Admission::Admitted(guard) => {
                let Ok(conn) = Conn::new(stream, guard, cfg) else {
                    continue; // socket died between accept and setup
                };
                if let Err(conn) = queue.push(conn) {
                    // Ready queue at capacity: shed rather than queue
                    // unboundedly (the conn's guard releases on drop).
                    stats.sheds();
                    shed(&conn.out, shed_payload);
                }
            }
            Admission::ClientCap => {
                stats.client_rejects();
                shed(&stream, shed_payload);
            }
            Admission::Full => {
                stats.sheds();
                shed(&stream, shed_payload);
            }
        }
    }
}

/// Best-effort canned-429 write, then close.
fn shed(stream: &TcpStream, payload: &[u8]) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut out: &TcpStream = stream;
    let _ = out.write_all(payload);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn poller_loop(
    queue: &ConnQueue,
    lot: &ParkingLot,
    stats: &Arc<FrontendStats>,
    stop: &AtomicBool,
    cfg: &FrontendConfig,
) {
    while !stop.load(Ordering::SeqCst) {
        let sweep_started = Instant::now();
        let mut still_parked = Vec::new();
        for conn in lot.take_all() {
            match conn.ready() {
                Ok(Ready::Data) => {
                    if let Err(conn) = queue.push(conn) {
                        // Queue full: keep it parked — established
                        // connections see latency under overload, not
                        // drops (sheds happen at accept).
                        still_parked.push(conn);
                    }
                }
                Ok(Ready::Idle) => {
                    if conn.last_active.elapsed() >= cfg.idle_timeout {
                        stats.idle_reaped(); // reclaim: drop closes it
                    } else {
                        still_parked.push(conn);
                    }
                }
                Ok(Ready::Eof) | Err(_) => {} // client gone; drop
            }
        }
        stats.set_parked(still_parked.len() as u64);
        for conn in still_parked {
            if lot.park(conn).is_err() {
                break; // closed mid-sweep; remaining conns drop
            }
        }
        // Sleep out the remainder of the interval (a huge lot can make
        // the sweep itself take longer than the cadence).
        let spent = sweep_started.elapsed();
        if let Some(rest) = cfg.poll_interval.checked_sub(spent) {
            std::thread::sleep(rest.max(Duration::from_millis(1)));
        }
    }
    lot.close();
    stats.set_parked(0);
}

/// Where a worker leaves a connection after a serving slice.
enum SliceEnd {
    Close,
    Park(Conn),
    Rotate(Conn),
}

fn worker_loop(
    queue: &ConnQueue,
    lot: &ParkingLot,
    stats: &Arc<FrontendStats>,
    service: &dyn Service,
    cfg: &FrontendConfig,
) {
    while let Some(conn) = queue.pop() {
        // A panicking handler must cost exactly one connection — the
        // worker survives, and the conn's RAII guard releases its
        // registry entry and gauges during unwind.
        match catch_unwind(AssertUnwindSafe(|| serve_slice(conn, stats, service, cfg))) {
            Ok(SliceEnd::Close) => {}
            Ok(SliceEnd::Park(conn)) => {
                let _ = lot.park(conn); // Err(closed) → conn drops
            }
            Ok(SliceEnd::Rotate(conn)) => {
                // Fairness rotation for pipelining clients: back through
                // the queue; if full, the lot will re-promote it.
                if let Err(conn) = queue.push(conn) {
                    let _ = lot.park(conn);
                }
            }
            Err(_) => stats.panics(),
        }
    }
}

fn serve_slice(
    mut conn: Conn,
    stats: &Arc<FrontendStats>,
    service: &dyn Service,
    cfg: &FrontendConfig,
) -> SliceEnd {
    for _ in 0..MAX_REQUESTS_PER_SLICE {
        match conn.ready() {
            Ok(Ready::Data) => {}
            Ok(Ready::Eof) | Err(_) => return SliceEnd::Close,
            Ok(Ready::Idle) => {
                if conn.last_active.elapsed() >= cfg.idle_timeout {
                    stats.idle_reaped();
                    return SliceEnd::Close;
                }
                return SliceEnd::Park(conn);
            }
        }
        // Bytes are waiting: arm the mid-request read budget and serve.
        let started = Instant::now();
        conn.deadline.arm(started + cfg.read_budget);
        let mut out: &TcpStream = &conn.out;
        let outcome = service.serve_one(&mut conn.reader, &mut out);
        conn.deadline.disarm();
        match outcome {
            ServeOutcome::Served { keep } => {
                stats.requests();
                if started.elapsed() > cfg.request_deadline {
                    stats.deadline_overruns();
                }
                if !keep {
                    return SliceEnd::Close;
                }
                conn.last_active = Instant::now();
            }
            ServeOutcome::CleanClose => return SliceEnd::Close,
            ServeOutcome::TimedOut => {
                stats.read_timeouts();
                return SliceEnd::Close;
            }
            ServeOutcome::Fatal => {
                stats.write_errors();
                return SliceEnd::Close;
            }
        }
    }
    SliceEnd::Rotate(conn)
}

/// Handle to a running front end; stops and joins everything on
/// [`stop`](FrontendHandle::stop) or drop.
pub struct FrontendHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    lot: Arc<ParkingLot>,
    registry: Arc<Registry>,
    stats: Arc<FrontendStats>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl FrontendHandle {
    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live stats (shared with the block passed to [`Frontend::start`]).
    pub fn stats(&self) -> &Arc<FrontendStats> {
        &self.stats
    }

    /// Stops the front end: accept loop, workers, poller, and every live
    /// connection (hard-closed), then joins all threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        // Wake workers (dropping queued conns) and empty the lot.
        self.queue.close();
        self.lot.close();
        // Hard-close live sockets so in-flight reads/writes fail now
        // instead of waiting out their budgets.
        self.registry.close_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for FrontendHandle {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Line-echo protocol: one request = one `\n`-terminated line, echoed
    /// back as `echo: <line>`. `quit` closes, `panic` panics the handler
    /// (exercising worker panic containment), `block` parks the handler
    /// on a gate until the test opens it (exercising queue bounds).
    struct EchoService {
        gate: Mutex<bool>,
        opened: Condvar,
    }

    impl EchoService {
        fn new() -> EchoService {
            EchoService {
                gate: Mutex::new(true),
                opened: Condvar::new(),
            }
        }

        fn closed_gate() -> EchoService {
            EchoService {
                gate: Mutex::new(false),
                opened: Condvar::new(),
            }
        }

        fn open_gate(&self) {
            *self.gate.lock().unwrap() = true;
            self.opened.notify_all();
        }
    }

    impl Service for EchoService {
        fn serve_one(&self, mut reader: &mut dyn BufRead, mut out: &mut dyn Write) -> ServeOutcome {
            let mut line = String::new();
            match (&mut reader).read_line(&mut line) {
                Ok(0) => ServeOutcome::CleanClose,
                Ok(_) => {
                    let line = line.trim_end();
                    match line {
                        "panic" => panic!("handler exploded"),
                        "quit" => {
                            let _ = writeln!(&mut out, "bye");
                            ServeOutcome::Served { keep: false }
                        }
                        "block" => {
                            let mut open = self.gate.lock().unwrap();
                            while !*open {
                                open = self.opened.wait(open).unwrap();
                            }
                            drop(open);
                            let _ = writeln!(&mut out, "unblocked");
                            ServeOutcome::Served { keep: true }
                        }
                        other => match writeln!(&mut out, "echo: {other}") {
                            Ok(()) => ServeOutcome::Served { keep: true },
                            Err(_) => ServeOutcome::Fatal,
                        },
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
                {
                    ServeOutcome::TimedOut
                }
                Err(_) => ServeOutcome::Fatal,
            }
        }

        fn shed_response(&self, retry_after: Duration) -> Vec<u8> {
            format!("BUSY retry-after={}\n", retry_after.as_secs()).into_bytes()
        }
    }

    fn tight_config() -> FrontendConfig {
        FrontendConfig {
            workers: 2,
            poll_interval: Duration::from_millis(5),
            ..FrontendConfig::default()
        }
    }

    fn start_echo(cfg: FrontendConfig) -> (FrontendHandle, Arc<FrontendStats>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stats = FrontendStats::shared();
        let h =
            Frontend::start_with(listener, EchoService::new(), cfg, Arc::clone(&stats)).unwrap();
        (h, stats)
    }

    fn send_line(s: &mut TcpStream, line: &str) -> String {
        writeln!(s, "{line}").unwrap();
        read_reply(s)
    }

    fn read_reply(s: &mut TcpStream) -> String {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match s.read(&mut byte) {
                Ok(0) => break,
                Ok(_) => {
                    buf.push(byte[0]);
                    if byte[0] == b'\n' {
                        break;
                    }
                }
                Err(e) => panic!("reply read failed: {e}"),
            }
        }
        String::from_utf8(buf).unwrap()
    }

    /// Polls until `pred` holds or the budget expires (sweeps and guard
    /// drops are asynchronous).
    fn eventually(what: &str, pred: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("timed out waiting for: {what}");
    }

    #[test]
    fn keep_alive_round_trips_across_parkings() {
        let (h, stats) = start_echo(tight_config());
        let mut s = TcpStream::connect(h.addr()).unwrap();
        assert_eq!(send_line(&mut s, "one"), "echo: one\n");
        // Idle long enough to be parked and swept at least once, then
        // prove the connection still answers (promotion path).
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(send_line(&mut s, "two"), "echo: two\n");
        assert_eq!(send_line(&mut s, "quit"), "bye\n");
        // The worker books the request after writing the reply; poll.
        eventually("3 requests booked", || stats.snapshot().requests == 3);
        h.stop();
        assert_eq!(stats.snapshot().active, 0);
    }

    #[test]
    fn panicking_handler_costs_one_connection_not_a_worker() {
        let cfg = FrontendConfig {
            workers: 1, // a dead worker would hang the follow-up request
            ..tight_config()
        };
        let (h, stats) = start_echo(cfg);

        let mut s = TcpStream::connect(h.addr()).unwrap();
        writeln!(s, "panic").unwrap();
        // The connection dies with the handler…
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);

        // …but its RAII guard released the registry slot and gauge
        // (before this PR the tracker entry leaked on panic)…
        eventually("active gauge back to 0", || stats.snapshot().active == 0);
        assert_eq!(stats.snapshot().panics, 1);

        // …and the sole worker survived to serve the next connection.
        let mut s2 = TcpStream::connect(h.addr()).unwrap();
        assert_eq!(send_line(&mut s2, "alive"), "echo: alive\n");
        h.stop();
    }

    #[test]
    fn slow_loris_is_killed_at_the_read_budget() {
        let cfg = FrontendConfig {
            read_budget: Duration::from_millis(200),
            idle_timeout: Duration::from_secs(30), // isolate the read budget
            ..tight_config()
        };
        let (h, stats) = start_echo(cfg);
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Open a request (no terminating newline) and trickle: each byte
        // lands inside a poll interval, so a per-read timeout would never
        // fire. Only a wall-clock deadline kills this.
        let started = Instant::now();
        for _ in 0..100 {
            if s.write_all(b"x").is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut rest = Vec::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.read_to_end(&mut rest); // server closed on us
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "slow-loris survived: {:?}",
            started.elapsed()
        );
        eventually("read timeout booked", || {
            stats.snapshot().read_timeouts >= 1
        });
        eventually("conn released", || stats.snapshot().active == 0);
        h.stop();
    }

    #[test]
    fn idle_connection_is_reaped_at_the_idle_budget() {
        let cfg = FrontendConfig {
            idle_timeout: Duration::from_millis(150),
            ..tight_config()
        };
        let (h, stats) = start_echo(cfg);
        let mut s = TcpStream::connect(h.addr()).unwrap();
        assert_eq!(send_line(&mut s, "hi"), "echo: hi\n");
        // Now go quiet past the idle budget: the poller must reap the
        // parked connection (fd reclaim), seen client-side as EOF.
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut rest = Vec::new();
        let n = s.read_to_end(&mut rest).unwrap();
        assert_eq!(n, 0, "expected server-side close, got {rest:?}");
        eventually("idle reap booked", || stats.snapshot().idle_reaped >= 1);
        eventually("conn released", || stats.snapshot().active == 0);
        h.stop();
    }

    #[test]
    fn per_client_cap_sheds_with_the_canned_response() {
        let cfg = FrontendConfig {
            max_per_client: 1,
            retry_after: Duration::from_secs(7),
            ..tight_config()
        };
        let (h, stats) = start_echo(cfg);
        let mut first = TcpStream::connect(h.addr()).unwrap();
        assert_eq!(send_line(&mut first, "hold"), "echo: hold\n");
        // Same client IP, second in-flight connection: rejected with the
        // canned payload carrying the advertised Retry-After.
        let mut second = TcpStream::connect(h.addr()).unwrap();
        assert_eq!(read_reply(&mut second), "BUSY retry-after=7\n");
        eventually("client reject booked", || {
            stats.snapshot().client_rejects == 1
        });
        // The held connection is unaffected.
        assert_eq!(send_line(&mut first, "still"), "echo: still\n");
        h.stop();
    }

    #[test]
    fn global_cap_and_full_queue_both_shed() {
        // One worker wedged on a gated request + queue_depth 1: the third
        // connection with bytes waiting must be shed, not queued
        // unboundedly (the failure mode of thread-per-connection).
        let cfg = FrontendConfig {
            workers: 1,
            queue_depth: 1,
            max_conns: 64,
            ..tight_config()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stats = FrontendStats::shared();
        let service = Arc::new(EchoService::closed_gate());
        let h = Frontend::start_with(
            listener,
            BlockingProxy(Arc::clone(&service)),
            cfg,
            Arc::clone(&stats),
        )
        .unwrap();

        let mut wedged = TcpStream::connect(h.addr()).unwrap();
        writeln!(wedged, "block").unwrap();
        eventually("worker wedged", || stats.snapshot().queued == 0);
        std::thread::sleep(Duration::from_millis(30)); // let the pop land

        // Fills the ready queue (accept pushes straight into it).
        let _queued = TcpStream::connect(h.addr()).unwrap();
        eventually("queue full", || stats.snapshot().queued == 1);

        // Shed: queue at capacity.
        let mut shed_conn = TcpStream::connect(h.addr()).unwrap();
        assert!(read_reply(&mut shed_conn).starts_with("BUSY"));
        eventually("shed booked", || stats.snapshot().sheds >= 1);

        service.open_gate();
        assert_eq!(read_reply(&mut wedged), "unblocked\n");
        h.stop();
    }

    /// Delegates to a shared [`EchoService`] so tests keep a handle to
    /// the gate after the front end takes ownership of the service.
    struct BlockingProxy(Arc<EchoService>);

    impl Service for BlockingProxy {
        fn serve_one(&self, reader: &mut dyn BufRead, out: &mut dyn Write) -> ServeOutcome {
            self.0.serve_one(reader, out)
        }
        fn shed_response(&self, retry_after: Duration) -> Vec<u8> {
            self.0.shed_response(retry_after)
        }
    }

    /// Fails `accept` a fixed number of times before delegating to a real
    /// listener — pins the EMFILE backoff path (the old loops hot-spun).
    struct FlakyAcceptor {
        listener: TcpListener,
        failures_left: AtomicUsize,
    }

    impl Acceptor for FlakyAcceptor {
        fn accept_conn(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let left = self.failures_left.load(Ordering::SeqCst);
            if left > 0 {
                self.failures_left.store(left - 1, Ordering::SeqCst);
                return Err(io::Error::other("too many open files (simulated)"));
            }
            self.listener.accept()
        }
        fn local_addr(&self) -> io::Result<SocketAddr> {
            self.listener.local_addr()
        }
    }

    #[test]
    fn accept_errors_back_off_instead_of_spinning() {
        const FAILURES: usize = 3;
        let backoff = Duration::from_millis(50);
        let cfg = FrontendConfig {
            accept_error_backoff: backoff,
            ..tight_config()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let acceptor = FlakyAcceptor {
            listener,
            failures_left: AtomicUsize::new(FAILURES),
        };
        let stats = FrontendStats::shared();
        let started = Instant::now();
        let h =
            Frontend::start_with(acceptor, EchoService::new(), cfg, Arc::clone(&stats)).unwrap();

        // Service resumes once the fault clears…
        let mut s = TcpStream::connect(h.addr()).unwrap();
        assert_eq!(send_line(&mut s, "back"), "echo: back\n");
        // …every failure was counted (operators can alarm on it), and the
        // loop slept through each one instead of hot-spinning.
        assert_eq!(stats.snapshot().accept_errors, FAILURES as u64);
        assert!(
            started.elapsed() >= backoff * FAILURES as u32,
            "accept loop did not back off: {:?}",
            started.elapsed()
        );
        h.stop();
    }
}
