//! [`ShardedStore`]: N independent NETMARK shards behind one `XdbBackend`.
//!
//! The paper's federation chapter observes that NETMARK "scales out" by
//! putting a thin router in front of ordinary instances. This module
//! applies the same move *inside one box*: documents are partitioned by
//! name hash across N full NETMARK instances (each with its own WAL,
//! MVCC store, and segmented text index — default one per core), and the
//! coordinator is a thin scatter-gather layer with no storage of its own
//! beyond the shard map and the global ingest-order log.
//!
//! Contract: query results are **byte-identical** to a single-shard store
//! that ingested the same history. Three mechanisms carry that:
//!
//! 1. *Placement*: same name ⇒ same shard ([`crate::partition`]), so one
//!    document's hits arrive from one shard in node order.
//! 2. *Order*: merged hits are stable-sorted by the coordinator's global
//!    ingest sequence ([`crate::seqlog`]), reproducing the single-store
//!    `(doc_id, node_id)` order.
//! 3. *Fallback pinning*: the exact→phrase fallback for `Context=` labels
//!    is a global decision, so the coordinator probes every shard first
//!    and pins the outcome into `XdbQuery::exact_contexts` — a shard whose
//!    local slice lacks an exact label must not invent phrase matches the
//!    single store would never produce.
//!
//! `candidates` sums across shards, which matches the single store
//! because a term's postings partition cleanly by document. The one
//! caveat: a store configured with `workers == 0` runs multi-term
//! keyword queries serially with an early exit that stops counting — the
//! sum can then overshoot the single-store count. The default engine
//! (workers ≥ 2) evaluates every term, where the sum is exact.
//!
//! Batch atomicity narrows from "whole batch" to "per-shard slice of the
//! batch": each shard commits its slice in one WAL commit. A crash can
//! land some shards' slices and not others — the same exposure a
//! federated deployment already has.

use crate::manifest::ShardManifest;
use crate::partition::shard_of;
use crate::seqlog::{SeqLog, FILE_NAME as SEQ_FILE};
use netmark::IndexStats;
use netmark::{
    scatter, IngestMetrics, NetMark, NetMarkOptions, NetmarkError, QueryOutput, QueryStats, Result,
    XdbBackend,
};
use netmark_model::{Document, Node};
use netmark_relstore::{MvccStats, StoreError, WalStats};
use netmark_xdb::{ResultSet, XdbQuery};
use netmark_xslt::Stylesheet;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shard count used when none is requested: one shard per core, capped at
/// 8 (beyond that, coordination overhead outruns the parallel speedup for
/// the workloads in the paper's range).
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(8)
}

/// Tuning knobs for [`ShardedStore::open_with`].
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Number of shards. `0` means [`default_shard_count`] for a fresh
    /// store; for an existing store the persisted manifest always wins,
    /// and a non-zero request that disagrees with it is an error.
    pub shards: usize,
    /// Options applied to every member shard.
    pub netmark: NetMarkOptions,
}

/// Per-shard observability counters kept by the coordinator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Live documents on the shard.
    pub docs: usize,
    /// Compressed text-index bytes on the shard.
    pub size: usize,
    /// Index tombstones pending compaction purge.
    pub pending: usize,
    /// Queries the coordinator routed to this shard.
    pub queries: u64,
}

/// N NETMARK shards behind one store facade. See the module docs.
pub struct ShardedStore {
    dir: PathBuf,
    shards: Vec<Arc<NetMark>>,
    seq: SeqLog,
    stylesheets: RwLock<HashMap<String, Stylesheet>>,
    metrics: IngestMetrics,
    shard_queries: Vec<AtomicU64>,
    /// Serializes ingest and removal so global sequence numbers are
    /// assigned in commit order (queries never take this).
    ingest_lock: Mutex<()>,
}

fn io_err(e: std::io::Error) -> NetmarkError {
    NetmarkError::Store(StoreError::Io(e))
}

/// Subdirectory name of shard `i`.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

impl ShardedStore {
    /// Opens (or creates) a sharded store in `dir` with default options
    /// (shard count from the manifest, or one per core for a fresh store).
    pub fn open(dir: &Path) -> Result<ShardedStore> {
        ShardedStore::open_with(dir, ShardOptions::default())
    }

    /// Opens with explicit options. The persisted manifest governs the
    /// shard count of an existing store; a conflicting non-zero request
    /// is refused (reshard offline with [`crate::rebalance`]).
    pub fn open_with(dir: &Path, opts: ShardOptions) -> Result<ShardedStore> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let manifest = ShardManifest::load(dir).map_err(io_err)?;
        let n = match (&manifest, opts.shards) {
            (Some(m), 0) => m.shards,
            (Some(m), req) if req == m.shards => m.shards,
            (Some(m), req) => {
                return Err(NetmarkError::Corrupt(format!(
                    "store has {} shards; reopening with {req} requires an offline rebalance",
                    m.shards
                )))
            }
            (None, 0) => default_shard_count(),
            (None, req) => req,
        };
        if manifest.is_none() {
            ShardManifest::new(n).save(dir).map_err(io_err)?;
        }
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let nm = NetMark::open_with(&dir.join(shard_dir_name(i)), opts.netmark.clone())?;
            shards.push(Arc::new(nm));
        }
        let seq = SeqLog::open(&dir.join(SEQ_FILE)).map_err(io_err)?;
        Ok(ShardedStore {
            dir: dir.to_path_buf(),
            shards,
            seq,
            stylesheets: RwLock::new(HashMap::new()),
            metrics: IngestMetrics::default(),
            shard_queries: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ingest_lock: Mutex::new(()),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The member shards (exposed for benches and the rebalance tool).
    pub fn shards(&self) -> &[Arc<NetMark>] {
        &self.shards
    }

    /// Store root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The global ingest-order log (exposed for the rebalance tool).
    pub fn seq_log(&self) -> &SeqLog {
        &self.seq
    }

    /// The shard owning `name`.
    pub fn owner(&self, name: &str) -> usize {
        shard_of(name, self.shards.len())
    }

    fn shard_for(&self, name: &str) -> &Arc<NetMark> {
        &self.shards[self.owner(name)]
    }

    /// Point-in-time per-shard counters (the `<shards/>` stats element).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, nm)| {
                let ix = nm.text_index().stats();
                ShardStats {
                    docs: nm.list_documents().map(|d| d.len()).unwrap_or(0),
                    size: ix.bytes as usize,
                    pending: ix.tombstones as usize,
                    queries: self.shard_queries[i].load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Renders the `<shards/>` element served under `GET /xdb/stats`.
    pub fn shards_node(&self) -> Node {
        let mut node = Node::element("shards").with_attr("count", &self.shards.len().to_string());
        for (i, s) in self.shard_stats().iter().enumerate() {
            node = node.with_child(
                Node::element("shard")
                    .with_attr("id", &i.to_string())
                    .with_attr("docs", &s.docs.to_string())
                    .with_attr("size", &s.size.to_string())
                    .with_attr("pending", &s.pending.to_string())
                    .with_attr("queries", &s.queries.to_string()),
            );
        }
        node
    }

    /// Pins the global exact→phrase fallback decision for every `Context=`
    /// label into the query (see the module docs, point 3).
    fn pin_exact_contexts(&self, q: &mut XdbQuery) -> Result<()> {
        let Some(spec) = &q.context else {
            return Ok(());
        };
        let labels: Vec<String> = spec
            .split('|')
            .map(str::trim)
            .filter(|l| !l.is_empty() && !q.exact_contexts.iter().any(|e| e == l))
            .map(str::to_string)
            .collect();
        if labels.is_empty() {
            return Ok(());
        }
        let per_shard: Vec<Result<Vec<bool>>> =
            scatter(&self.shards, self.shards.len(), |_, nm| {
                labels.iter().map(|l| nm.has_exact_context(l)).collect()
            });
        let mut exact = vec![false; labels.len()];
        for shard in per_shard {
            for (i, e) in shard?.into_iter().enumerate() {
                exact[i] |= e;
            }
        }
        for (label, is_exact) in labels.into_iter().zip(exact) {
            if is_exact {
                q.exact_contexts.push(label);
            }
        }
        Ok(())
    }

    /// Runs a parsed XDB query across the shards and merges the answers.
    /// Results are byte-identical to a single-shard store with the same
    /// ingest history (see the module docs).
    pub fn query(&self, q: &XdbQuery) -> Result<ResultSet> {
        let mut q = q.clone();
        self.pin_exact_contexts(&mut q)?;
        // Doc-routed fast path: a `doc=` filter without `Content=` needs
        // only the owner shard — `candidates` is 0 on those paths either
        // way, and the owner holds every hit of the named document. A
        // content query still fans out, because its candidate count sums
        // index postings across ALL documents, filtered or not.
        if let Some(doc) = &q.doc {
            if q.content.is_none() {
                let s = self.owner(doc);
                self.shard_queries[s].fetch_add(1, Ordering::Relaxed);
                return self.shards[s].query(&q);
            }
        }
        if q.ranked() && self.shards.len() > 1 {
            if let Some(k) = q.limit {
                if k > 0 {
                    return self.query_two_wave(&q, k);
                }
            }
        }
        let per_shard: Vec<Result<ResultSet>> =
            scatter(&self.shards, self.shards.len(), |i, nm| {
                self.shard_queries[i].fetch_add(1, Ordering::Relaxed);
                nm.query(&q)
            });
        let mut sets = Vec::with_capacity(per_shard.len());
        for r in per_shard {
            sets.push(r?);
        }
        Ok(self.merge(sets, q.limit))
    }

    /// Ranked `limit=k` scatter in two waves with a refined score floor.
    ///
    /// Wave 1 queries the first ⌈n/2⌉ shards as-is. If they return at
    /// least k hits, the kth best score θ becomes a floor for wave 2:
    /// any hit scoring strictly below θ provably cannot enter the merged
    /// top-k (the k wave-1 hits at or above θ all outrank it), so wave-2
    /// shards push `min_score` into their bounded collectors and never
    /// materialize such hits. The floor is `θ.next_down()` — `min_score`
    /// is a strict cut, and a wave-2 hit tying θ exactly must survive to
    /// lose (or win) on the global-sequence tie-break in [`Self::merge`].
    ///
    /// One boundary needs repair: a wave-2 hit *between* the user's floor
    /// and θ is invisible under the raised floor, yet it counts toward
    /// `truncated` ("more qualifying hits existed than the limit"). That
    /// can only change the answer when nothing else already proves
    /// truncation — merged hits at the limit exactly and no shard locally
    /// truncated — so only in that rare case wave 2 is re-asked with the
    /// user's own floor.
    fn query_two_wave(&self, q: &XdbQuery, k: usize) -> Result<ResultSet> {
        let split = self.shards.len().div_ceil(2);
        let (wave1, wave2) = self.shards.split_at(split);
        let r1: Vec<Result<ResultSet>> = scatter(wave1, wave1.len(), |i, nm| {
            self.shard_queries[i].fetch_add(1, Ordering::Relaxed);
            nm.query(q)
        });
        let mut sets = Vec::with_capacity(self.shards.len());
        for r in r1 {
            sets.push(r?);
        }
        let mut scores: Vec<f64> = sets
            .iter()
            .flat_map(|rs| rs.hits.iter().filter_map(|h| h.score))
            .collect();
        let theta = (scores.len() >= k).then(|| {
            scores.sort_by(|a, b| b.total_cmp(a));
            scores[k - 1]
        });
        let mut q2 = q.clone();
        let mut raised = false;
        if let Some(t) = theta {
            let refined = t.next_down();
            if q.min_score.map(|u| refined > u).unwrap_or(true) {
                q2.min_score = Some(refined);
                raised = true;
            }
        }
        let r2: Vec<Result<ResultSet>> = scatter(wave2, wave2.len(), |i, nm| {
            self.shard_queries[split + i].fetch_add(1, Ordering::Relaxed);
            nm.query(&q2)
        });
        for r in r2 {
            sets.push(r?);
        }
        let total: usize = sets.iter().map(|rs| rs.hits.len()).sum();
        if raised && total <= k && !sets.iter().any(|rs| rs.truncated) {
            sets.truncate(split);
            let r2: Vec<Result<ResultSet>> = scatter(wave2, wave2.len(), |i, nm| {
                self.shard_queries[split + i].fetch_add(1, Ordering::Relaxed);
                nm.query(q)
            });
            for r in r2 {
                sets.push(r?);
            }
        }
        Ok(self.merge(sets, q.limit))
    }

    /// Order-preserving merge: concatenate per-shard hits (each already in
    /// shard-local store order), stable-sort by global ingest sequence,
    /// re-apply the limit. The per-shard limit pushdown stays correct
    /// because a shard's local order IS the global order restricted to its
    /// documents — its first L hits are its globally-first L hits.
    ///
    /// Ranked sets instead sort by score descending with the global ingest
    /// sequence as the tie-break, via the shared
    /// [`netmark::merge_scored`] policy. Pushdown stays valid there too:
    /// every member of the global top-k is in its own shard's top-k, so the
    /// union of per-shard top-ks contains the global top-k.
    fn merge(&self, sets: Vec<ResultSet>, limit: Option<usize>) -> ResultSet {
        let ranked = sets.iter().any(|rs| rs.ranked);
        let mut candidates = 0usize;
        let mut truncated = false;
        let mut keyed: Vec<(u64, netmark_xdb::Hit)> = Vec::new();
        self.seq.with_map(|map| {
            for rs in sets {
                candidates += rs.candidates;
                truncated |= rs.truncated;
                for h in rs.hits {
                    // A name missing from the log (removed mid-query)
                    // sorts last rather than failing the merge.
                    let key = map.get(&h.doc).copied().unwrap_or(u64::MAX);
                    keyed.push((key, h));
                }
            }
        });
        if ranked {
            netmark::merge_scored(&mut keyed);
        } else {
            keyed.sort_by_key(|(s, _)| *s);
        }
        let mut hits: Vec<netmark_xdb::Hit> = keyed.into_iter().map(|(_, h)| h).collect();
        if let Some(l) = limit {
            if hits.len() > l {
                hits.truncate(l);
                truncated = true;
            }
        }
        ResultSet {
            hits,
            candidates,
            truncated,
            ranked,
        }
    }

    /// Composes `results` with a registered stylesheet (the coordinator
    /// owns composition: it must run over the *merged* result set).
    pub fn compose(&self, results: &ResultSet, stylesheet: &str) -> Result<Node> {
        let guard = self.stylesheets.read();
        let ss = guard
            .get(stylesheet)
            .ok_or_else(|| NetmarkError::NoSuchStylesheet(stylesheet.to_string()))?;
        Ok(ss.apply(&results.to_node())?)
    }

    /// Splits `docs` by owning shard and ingests every slice in parallel,
    /// one WAL commit per shard. Reports come back in input order.
    pub fn ingest_batch(&self, docs: &[Document]) -> Result<Vec<netmark::IngestReport>> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let _g = self.ingest_lock.lock();
        let t0 = Instant::now();
        // Sequence numbers are assigned in input order, before the
        // parallel scatter, so the global order is the caller's order.
        for d in docs {
            self.seq.assign(&d.name).map_err(io_err)?;
        }
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, d) in docs.iter().enumerate() {
            buckets[self.owner(&d.name)].push(i);
        }
        let work: Vec<(usize, Vec<usize>)> = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .collect();
        let per_shard: Vec<Result<(Vec<usize>, Vec<netmark::IngestReport>)>> =
            scatter(&work, work.len(), |_, (shard, idxs)| {
                let slice: Vec<Document> = idxs.iter().map(|&i| docs[i].clone()).collect();
                let reports = self.shards[*shard].ingest_batch(&slice)?;
                Ok((idxs.clone(), reports))
            });
        let mut out: Vec<Option<netmark::IngestReport>> = (0..docs.len()).map(|_| None).collect();
        let mut nodes = 0u64;
        for r in per_shard {
            let (idxs, reports) = r?;
            for (i, rep) in idxs.into_iter().zip(reports) {
                nodes += rep.node_count as u64;
                out[i] = Some(rep);
            }
        }
        self.metrics
            .record_store(docs.len() as u64, nodes, t0.elapsed());
        Ok(out
            .into_iter()
            .map(|r| r.expect("every input doc was ingested by its shard"))
            .collect())
    }

    /// Ingests one document on its owner shard.
    pub fn insert_document(&self, doc: &Document) -> Result<netmark::IngestReport> {
        let _g = self.ingest_lock.lock();
        let t0 = Instant::now();
        self.seq.assign(&doc.name).map_err(io_err)?;
        let report = self.shard_for(&doc.name).insert_document(doc)?;
        self.metrics
            .record_store(1, report.node_count as u64, t0.elapsed());
        Ok(report)
    }

    /// Removes a document by name from its owner shard. Returns `false`
    /// when no such document exists.
    pub fn remove_named(&self, name: &str) -> Result<bool> {
        let _g = self.ingest_lock.lock();
        let removed = XdbBackend::remove_named(&**self.shard_for(name), name)?;
        if removed {
            self.seq.remove(name).map_err(io_err)?;
        }
        Ok(removed)
    }

    /// Stored documents across all shards, in global ingest order.
    pub fn list_documents(&self) -> Result<Vec<netmark::DocInfo>> {
        let mut keyed: Vec<(u64, netmark::DocInfo)> = Vec::new();
        self.seq.with_map(|map| -> Result<()> {
            for nm in &self.shards {
                for info in nm.list_documents()? {
                    let key = map.get(&info.file_name).copied().unwrap_or(u64::MAX);
                    keyed.push((key, info));
                }
            }
            Ok(())
        })?;
        keyed.sort_by_key(|(s, _)| *s);
        Ok(keyed.into_iter().map(|(_, i)| i).collect())
    }

    /// Persists every shard's index, checkpoints every shard's store, and
    /// compacts the sequence log.
    pub fn flush(&self) -> Result<()> {
        let flushed: Vec<Result<()>> = scatter(&self.shards, self.shards.len(), |_, nm| nm.flush());
        for r in flushed {
            r?;
        }
        self.seq.compact().map_err(io_err)
    }
}

impl XdbBackend for ShardedStore {
    fn run(&self, q: &XdbQuery) -> Result<QueryOutput> {
        let results = self.query(q)?;
        match &q.xslt {
            None => Ok(QueryOutput::Results(results)),
            Some(name) => Ok(QueryOutput::Composed(self.compose(&results, name)?)),
        }
    }

    fn insert_document(&self, doc: &Document) -> Result<netmark::IngestReport> {
        ShardedStore::insert_document(self, doc)
    }

    fn ingest_batch(&self, docs: &[Document]) -> Result<Vec<netmark::IngestReport>> {
        ShardedStore::ingest_batch(self, docs)
    }

    fn insert_file(&self, name: &str, content: &str) -> Result<netmark::IngestReport> {
        let t0 = Instant::now();
        let doc = netmark_docformats::upmark(name, content);
        self.metrics.record_upmark(t0.elapsed());
        ShardedStore::insert_document(self, &doc)
    }

    fn list_documents(&self) -> Result<Vec<netmark::DocInfo>> {
        ShardedStore::list_documents(self)
    }

    fn document_by_name(&self, name: &str) -> Result<Option<netmark::DocInfo>> {
        self.shard_for(name).document_by_name(name)
    }

    fn reconstruct_named(&self, name: &str) -> Result<Option<Document>> {
        XdbBackend::reconstruct_named(&**self.shard_for(name), name)
    }

    fn remove_named(&self, name: &str) -> Result<bool> {
        ShardedStore::remove_named(self, name)
    }

    fn register_stylesheet(&self, name: &str, source: &str) -> Result<()> {
        let ss = Stylesheet::parse(source)?;
        self.stylesheets.write().insert(name.to_string(), ss);
        Ok(())
    }

    fn query_stats(&self) -> QueryStats {
        let mut acc = QueryStats::default();
        for nm in &self.shards {
            acc.merge(&nm.query_stats());
        }
        acc
    }

    fn stats_children(&self) -> Vec<Node> {
        let mut index = IndexStats::default();
        let mut mvcc = MvccStats::default();
        for nm in &self.shards {
            index.merge(&nm.text_index().stats());
            mvcc.merge(&nm.store().database().mvcc_stats());
        }
        vec![
            self.query_stats().to_node(),
            netmark::index_stats_node(&index),
            netmark::mvcc_stats_node(&mvcc),
            self.shards_node(),
        ]
    }

    fn ingest_metrics(&self) -> &IngestMetrics {
        &self.metrics
    }

    fn wal_stats(&self) -> WalStats {
        let mut acc = WalStats::default();
        for nm in &self.shards {
            let w = nm.wal_stats();
            acc.commits += w.commits;
            acc.syncs += w.syncs;
        }
        acc
    }

    fn sync_wal(&self) -> Result<()> {
        for nm in &self.shards {
            XdbBackend::sync_wal(&**nm)?;
        }
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        ShardedStore::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark_docformats::upmark;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nm-shardstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_n(dir: &Path, n: usize) -> ShardedStore {
        ShardedStore::open_with(
            dir,
            ShardOptions {
                shards: n,
                ..ShardOptions::default()
            },
        )
        .unwrap()
    }

    fn load_samples(st: &ShardedStore) {
        for (name, content) in [
            ("plan-a.wdoc", "<<Title>> Plan A\n<<Heading1>> Budget\n<<Normal>> two million dollars\n<<Heading1>> Technology Gap\n<<Normal>> the gap is shrinking\n"),
            ("plan-b.txt", "# Budget\none million dollars\n# Technology Gap\nthe gap is growing\n"),
            ("ll-0424.html", "<html><body><h1>Summary</h1><p>The shuttle engine faulted.</p></body></html>"),
        ] {
            XdbBackend::insert_file(st, name, content).unwrap();
        }
    }

    #[test]
    fn scatter_gather_matches_single_store() {
        let sdir = scratch("sg-sharded");
        let rdir = scratch("sg-ref");
        let st = open_n(&sdir, 3);
        let reference = NetMark::open(&rdir).unwrap();
        load_samples(&st);
        for (name, content) in [
            ("plan-a.wdoc", "<<Title>> Plan A\n<<Heading1>> Budget\n<<Normal>> two million dollars\n<<Heading1>> Technology Gap\n<<Normal>> the gap is shrinking\n"),
            ("plan-b.txt", "# Budget\none million dollars\n# Technology Gap\nthe gap is growing\n"),
            ("ll-0424.html", "<html><body><h1>Summary</h1><p>The shuttle engine faulted.</p></body></html>"),
        ] {
            reference.insert_file(name, content).unwrap();
        }
        for q in [
            XdbQuery::context("Budget"),
            XdbQuery::content("shuttle"),
            XdbQuery::content("the gap is"),
            XdbQuery::context_content("Technology Gap", "Shrinking"),
            XdbQuery::default(),
            XdbQuery::context("Budget").with_limit(1),
        ] {
            assert_eq!(
                st.query(&q).unwrap().to_xml(),
                reference.query(&q).unwrap().to_xml(),
                "query {q:?}"
            );
        }
        std::fs::remove_dir_all(&sdir).unwrap();
        std::fs::remove_dir_all(&rdir).unwrap();
    }

    #[test]
    fn ranked_merge_agrees_with_single_store_top_k() {
        let dir4 = scratch("rank-4");
        let dir1 = scratch("rank-1");
        let rdir = scratch("rank-ref");
        let st4 = open_n(&dir4, 4);
        let st1 = open_n(&dir1, 1);
        let reference = NetMark::open(&rdir).unwrap();
        // Three docs mention the term densely in a short section, the rest
        // once in a long one — the top-3 SET is unambiguous under any
        // monotone scoring, even though each shard computes BM25 from its
        // local corpus statistics.
        for i in 0..16 {
            let text = if i < 3 {
                "# Sec\nrocket rocket rocket rocket rocket rocket\n".to_string()
            } else {
                "# Sec\nrocket filler filler filler filler filler filler filler filler\n"
                    .to_string()
            };
            let name = format!("d{i}.txt");
            XdbBackend::insert_file(&st4, &name, &text).unwrap();
            XdbBackend::insert_file(&st1, &name, &text).unwrap();
            reference.insert_file(&name, &text).unwrap();
        }
        let ranked = XdbQuery::content("rocket")
            .with_rank(netmark_xdb::RankMode::Bm25)
            .with_limit(3);
        let top = |rs: &ResultSet| -> std::collections::HashSet<String> {
            rs.hits.iter().map(|h| h.doc.clone()).collect()
        };
        let want: std::collections::HashSet<String> = (0..3).map(|i| format!("d{i}.txt")).collect();
        let rs4 = st4.query(&ranked).unwrap();
        let rs1 = st1.query(&ranked).unwrap();
        assert!(rs4.ranked && rs1.ranked);
        assert_eq!(top(&rs4), want, "4-shard top-k set");
        assert_eq!(top(&rs1), want, "1-shard top-k set");
        assert!(rs4.hits.iter().all(|h| h.score.is_some()));
        // A single shard sees global statistics: byte-identical to the
        // unsharded engine, scores included.
        assert_eq!(rs1.to_xml(), reference.query(&ranked).unwrap().to_xml());
        // rank=none stays byte-identical across all three deployments —
        // ranking is opt-in and leaves the v1 wire untouched.
        let plain = XdbQuery::content("rocket").with_limit(3);
        let reference_xml = reference.query(&plain).unwrap().to_xml();
        assert_eq!(st4.query(&plain).unwrap().to_xml(), reference_xml);
        assert_eq!(st1.query(&plain).unwrap().to_xml(), reference_xml);
        std::fs::remove_dir_all(&dir4).unwrap();
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&rdir).unwrap();
    }

    #[test]
    fn two_wave_ranked_scatter_is_exact() {
        let dir = scratch("twowave");
        let st = open_n(&dir, 4);
        // Mixed densities plus a run of identical documents: the identical
        // ones score exactly equal *within* any shard holding several, and
        // across shards whenever local statistics coincide — exercising
        // the θ tie boundary the next_down floor must keep alive.
        for i in 0..6 {
            let text = format!(
                "# Sec\nrocket {}filler filler filler\n",
                "rocket ".repeat(i)
            );
            XdbBackend::insert_file(&st, &format!("var{i}.txt"), &text).unwrap();
        }
        for i in 0..8 {
            XdbBackend::insert_file(
                &st,
                &format!("same{i}.txt"),
                "# Sec\nrocket payload checklist\n",
            )
            .unwrap();
        }
        let base = XdbQuery::content("rocket").with_rank(netmark_xdb::RankMode::Bm25);
        // The oracle: full scatter with no limit, merged by the same
        // policy — its prefix is what any limited query must return.
        let all = st.query(&base).unwrap();
        assert_eq!(all.hits.len(), 14);
        for k in [1, 2, 3, 7, 13, 14, 50] {
            let rs = st.query(&base.clone().with_limit(k)).unwrap();
            let want: Vec<_> = all.hits.iter().take(k).cloned().collect();
            assert_eq!(rs.hits, want, "k={k}");
            assert_eq!(rs.truncated, all.hits.len() > k, "truncated at k={k}");
        }
        // A user floor combines with the refined one and stays strict.
        let floor = all.hits[5].score.unwrap();
        let rs = st
            .query(&base.clone().with_limit(3).with_min_score(floor))
            .unwrap();
        let want: Vec<_> = all
            .hits
            .iter()
            .filter(|h| h.score.unwrap() > floor)
            .take(3)
            .cloned()
            .collect();
        assert_eq!(rs.hits, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_ingest_reports_in_input_order_and_spread() {
        let dir = scratch("batch");
        let st = open_n(&dir, 4);
        let docs: Vec<Document> = (0..32)
            .map(|i| upmark(&format!("d{i}.txt"), &format!("# S{i}\nbody {i}\n")))
            .collect();
        let reports = st.ingest_batch(&docs).unwrap();
        assert_eq!(reports.len(), 32);
        let spread: Vec<usize> = st.shard_stats().iter().map(|s| s.docs).collect();
        assert_eq!(spread.iter().sum::<usize>(), 32);
        assert!(
            spread.iter().filter(|&&d| d > 0).count() >= 2,
            "32 docs land on several shards, got {spread:?}"
        );
        // One WAL commit per shard slice, not per document.
        let wal = XdbBackend::wal_stats(&st);
        assert!(
            wal.commits <= st.shard_count() as u64 + 4,
            "batched commits, got {}",
            wal.commits
        );
        assert_eq!(st.list_documents().unwrap()[0].file_name, "d0.txt");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn context_fallback_is_a_global_decision() {
        let dir = scratch("fallback");
        let st = open_n(&dir, 2);
        // "Budget Overview FY05" and exact "Budget" deliberately placed so
        // a shard may hold only the phrase-matchable heading.
        XdbBackend::insert_file(&st, "a.txt", "# Budget Overview FY05\nthe money\n").unwrap();
        XdbBackend::insert_file(&st, "c.txt", "# Budget\nexact money\n").unwrap();
        let rs = st.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(
            rs.len(),
            1,
            "exact label match suppresses the fallback globally"
        );
        assert_eq!(rs.hits[0].doc, "c.txt");
        // Remove the exact match: the fallback applies everywhere again.
        assert!(ShardedStore::remove_named(&st, "c.txt").unwrap());
        let rs = st.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].context, "Budget Overview FY05");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn doc_routed_lookup_removal_and_reconstruction() {
        let dir = scratch("route");
        let st = open_n(&dir, 3);
        load_samples(&st);
        let doc = XdbBackend::reconstruct_named(&st, "plan-b.txt")
            .unwrap()
            .unwrap();
        assert_eq!(doc.name, "plan-b.txt");
        let mut q = XdbQuery::context("Budget");
        q.doc = Some("plan-b.txt".to_string());
        let rs = st.query(&q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "plan-b.txt");
        assert!(ShardedStore::remove_named(&st, "plan-b.txt").unwrap());
        assert!(!ShardedStore::remove_named(&st, "plan-b.txt").unwrap());
        assert!(XdbBackend::document_by_name(&st, "plan-b.txt")
            .unwrap()
            .is_none());
        assert_eq!(st.query(&XdbQuery::context("Budget")).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_preserves_manifest_order_and_contents() {
        let dir = scratch("reopen");
        {
            let st = open_n(&dir, 3);
            load_samples(&st);
            ShardedStore::flush(&st).unwrap();
        }
        // Shard count comes from the manifest on reopen.
        let st = ShardedStore::open(&dir).unwrap();
        assert_eq!(st.shard_count(), 3);
        assert_eq!(st.query(&XdbQuery::content("shuttle")).unwrap().len(), 1);
        let names: Vec<String> = st
            .list_documents()
            .unwrap()
            .into_iter()
            .map(|d| d.file_name)
            .collect();
        assert_eq!(names, vec!["plan-a.wdoc", "plan-b.txt", "ll-0424.html"]);
        // A conflicting explicit shard count is refused.
        drop(st);
        assert!(ShardedStore::open_with(
            &dir,
            ShardOptions {
                shards: 5,
                ..ShardOptions::default()
            }
        )
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_children_include_shards_element() {
        let dir = scratch("stats");
        let st = open_n(&dir, 2);
        load_samples(&st);
        st.query(&XdbQuery::content("shuttle")).unwrap();
        let children = XdbBackend::stats_children(&st);
        let names: Vec<&str> = children.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["query", "index", "mvcc", "shards"]);
        let shards = &children[3];
        assert_eq!(shards.attr("count"), Some("2"));
        let per = shards.children_named("shard");
        assert_eq!(per.len(), 2);
        let docs: usize = per
            .iter()
            .map(|s| s.attr("docs").unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(docs, 3);
        let queries: u64 = per
            .iter()
            .map(|s| s.attr("queries").unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(queries, 2, "one content query fanned out to both shards");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn xslt_composition_runs_over_the_merged_set() {
        let dir = scratch("xslt");
        let st = open_n(&dir, 3);
        load_samples(&st);
        XdbBackend::register_stylesheet(
            &st,
            "report",
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <report>
                     <xsl:for-each select="hit">
                       <section doc="{@doc}"><xsl:value-of select="Content"/></section>
                     </xsl:for-each>
                   </report>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = XdbBackend::run(&st, &XdbQuery::context("Budget").with_xslt("report"))
            .unwrap()
            .composed()
            .unwrap();
        assert_eq!(out.name, "report");
        assert_eq!(out.find_all("section").len(), 2);
        assert!(matches!(
            XdbBackend::run(&st, &XdbQuery::context("Budget").with_xslt("missing")),
            Err(NetmarkError::NoSuchStylesheet(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
