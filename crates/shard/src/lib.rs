//! `netmark-shard`: shard-per-core NETMARK.
//!
//! The paper's "lean middleware" thesis scales out by federating plain
//! NETMARK instances behind a thin router. This crate is the same idea
//! folded into one process: a [`ShardedStore`] partitions documents by
//! name hash across N independent NETMARK shards (default one per core),
//! scatters queries and batched ingest across them with the shared
//! [`netmark::scatter`] executor, and merges answers so the result bytes
//! are identical to a single-shard store with the same history.
//!
//! Layout on disk:
//!
//! ```text
//! store/
//!   SHARDMAP       persisted shard count + partitioner version
//!   seq.log        global ingest-order log (merge ordering)
//!   shard-000/     a full NETMARK instance (WAL, MVCC store, text index)
//!   shard-001/
//!   ...
//! ```
//!
//! The store implements [`netmark::XdbBackend`], so every access layer —
//! the WebDAV server, the federation server's local arm, the drop-folder
//! daemon, the CLI — runs over it unchanged. Resharding is offline via
//! [`rebalance`].

#![warn(missing_docs)]

pub mod manifest;
pub mod partition;
pub mod rebalance;
pub mod seqlog;
pub mod store;

pub use manifest::ShardManifest;
pub use partition::{fnv1a64, shard_of, PARTITIONER_ID};
pub use rebalance::{rebalance, RebalanceReport};
pub use seqlog::SeqLog;
pub use store::{default_shard_count, ShardOptions, ShardStats, ShardedStore};
