//! Offline resharding: rebuild a sharded store with a different shard
//! count.
//!
//! Rebalancing **re-ingests** every document into a fresh store rather
//! than shipping raw segments or pages between shards. That choice trades
//! speed for invariants: re-ingest reuses the one write path that already
//! maintains every derived structure (WAL, MVCC pages, text-index
//! segments, context rows), so a rebalanced store is indistinguishable
//! from one that ingested the history directly — no migration-only code
//! path to keep correct. Documents are replayed in global sequence order,
//! so the rebuilt store's merge order (and therefore its query bytes) is
//! identical to the original's.
//!
//! The rebuild lands in a temp directory next to the store and is swapped
//! in only after a full flush, so a crash mid-rebalance leaves the
//! original store untouched.

use crate::manifest;
use crate::seqlog::FILE_NAME as SEQ_FILE;
use crate::store::{shard_dir_name, ShardOptions, ShardedStore};
use netmark::{NetmarkError, Result, XdbBackend};
use std::path::Path;

/// What a rebalance did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Documents replayed into the new layout.
    pub documents: usize,
    /// Shard count before.
    pub from_shards: usize,
    /// Shard count after.
    pub to_shards: usize,
}

fn io_err(e: std::io::Error) -> NetmarkError {
    NetmarkError::Store(netmark_relstore::StoreError::Io(e))
}

/// Documents re-ingested per batch (one WAL commit per shard per batch);
/// bounds peak memory during the replay.
const BATCH: usize = 256;

/// Rebuilds the sharded store in `dir` with `to_shards` shards. The store
/// must not be open elsewhere. On success the directory holds the new
/// layout; on error the original layout is preserved.
pub fn rebalance(dir: &Path, to_shards: usize, opts: ShardOptions) -> Result<RebalanceReport> {
    if to_shards == 0 {
        return Err(NetmarkError::Corrupt(
            "rebalance target must be at least one shard".to_string(),
        ));
    }
    let old = ShardedStore::open_with(
        dir,
        ShardOptions {
            shards: 0,
            ..opts.clone()
        },
    )?;
    let from_shards = old.shard_count();
    let order = old.seq_log().entries_in_order();

    let tmp = dir.join(".rebalance.tmp");
    let _ = std::fs::remove_dir_all(&tmp);
    let new = ShardedStore::open_with(
        &tmp,
        ShardOptions {
            shards: to_shards,
            ..opts
        },
    )?;
    let mut documents = 0usize;
    for chunk in order.chunks(BATCH) {
        let mut docs = Vec::with_capacity(chunk.len());
        for (_, name) in chunk {
            // A name in the log but not in any shard (e.g. lost to a
            // partial crash) is dropped from the rebuilt store rather
            // than failing the whole rebalance.
            if let Some(doc) = XdbBackend::reconstruct_named(&old, name)? {
                docs.push(doc);
            }
        }
        documents += docs.len();
        new.ingest_batch(&docs)?;
    }
    ShardedStore::flush(&new)?;
    drop(new);
    drop(old);

    // Swap: retire the old layout, move the new one into place. Only
    // reached with the rebuilt store fully durable.
    let retired = dir.join(".rebalance.old");
    let _ = std::fs::remove_dir_all(&retired);
    std::fs::create_dir_all(&retired).map_err(io_err)?;
    for i in 0..from_shards {
        let name = shard_dir_name(i);
        if dir.join(&name).exists() {
            std::fs::rename(dir.join(&name), retired.join(&name)).map_err(io_err)?;
        }
    }
    for name in [manifest::FILE_NAME, SEQ_FILE] {
        if dir.join(name).exists() {
            std::fs::rename(dir.join(name), retired.join(name)).map_err(io_err)?;
        }
    }
    for i in 0..to_shards {
        let name = shard_dir_name(i);
        std::fs::rename(tmp.join(&name), dir.join(&name)).map_err(io_err)?;
    }
    for name in [manifest::FILE_NAME, SEQ_FILE] {
        std::fs::rename(tmp.join(name), dir.join(name)).map_err(io_err)?;
    }
    let _ = std::fs::remove_dir_all(&tmp);
    let _ = std::fs::remove_dir_all(&retired);
    Ok(RebalanceReport {
        documents,
        from_shards,
        to_shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark_xdb::XdbQuery;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nm-rebal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(n: usize) -> ShardOptions {
        ShardOptions {
            shards: n,
            ..ShardOptions::default()
        }
    }

    #[test]
    fn split_and_merge_preserve_query_bytes() {
        let dir = scratch("roundtrip");
        let before: String;
        {
            let st = ShardedStore::open_with(&dir, opts(2)).unwrap();
            for i in 0..24 {
                XdbBackend::insert_file(
                    &st,
                    &format!("d{i}.txt"),
                    &format!("# Budget\nplan {i} costs {i} million\n"),
                )
                .unwrap();
            }
            // A removal mid-history exercises seq-order replay with gaps.
            assert!(ShardedStore::remove_named(&st, "d7.txt").unwrap());
            before = st.query(&XdbQuery::context("Budget")).unwrap().to_xml();
            ShardedStore::flush(&st).unwrap();
        }
        // Split 2 → 5.
        let rep = rebalance(&dir, 5, opts(0)).unwrap();
        assert_eq!(rep.from_shards, 2);
        assert_eq!(rep.to_shards, 5);
        assert_eq!(rep.documents, 23);
        {
            let st = ShardedStore::open(&dir).unwrap();
            assert_eq!(st.shard_count(), 5);
            assert_eq!(
                st.query(&XdbQuery::context("Budget")).unwrap().to_xml(),
                before
            );
        }
        // Merge 5 → 1: a single-shard store answers identically too.
        let rep = rebalance(&dir, 1, opts(0)).unwrap();
        assert_eq!(rep.to_shards, 1);
        let st = ShardedStore::open(&dir).unwrap();
        assert_eq!(st.shard_count(), 1);
        assert_eq!(
            st.query(&XdbQuery::context("Budget")).unwrap().to_xml(),
            before
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_target_is_refused() {
        let dir = scratch("zero");
        let st = ShardedStore::open_with(&dir, opts(2)).unwrap();
        drop(st);
        assert!(rebalance(&dir, 0, opts(0)).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
