//! The deterministic document partitioner.
//!
//! Documents are placed by hashing their *name* — the only identity that
//! exists at the [`crate::ShardedStore`] boundary — with FNV-1a 64, a
//! dependency-free hash whose output is stable across platforms, builds,
//! and process restarts. Stability is the load-bearing property: the shard
//! map is persisted (see [`crate::manifest`]), so the function that placed
//! a document at ingest time must place it identically forever after.
//! Every ingest, lookup, removal, and doc-routed query goes through
//! [`shard_of`].
//!
//! Same name ⇒ same shard also means all hits of one document come from
//! one shard in that shard's node order, which is what lets the
//! scatter-gather merge reproduce single-store hit order with a stable
//! sort (see `ShardedStore::query`).

/// Version tag persisted in the shard-map manifest. Bump only with a
/// rebalance path from the old placement, since changing the hash strands
/// every stored document on the wrong shard.
pub const PARTITIONER_ID: &str = "fnv1a64/1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The shard owning a document name, for a store of `shards` shards.
pub fn shard_of(name: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "a sharded store has at least one shard");
    (fnv1a64(name.as_bytes()) % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for shards in 1..9 {
            for name in ["plan-a.wdoc", "ll-0424.html", "sheet.csv", ""] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards), "stable across calls");
            }
        }
    }

    #[test]
    fn names_spread_across_shards() {
        let shards = 4;
        let mut seen = vec![false; shards];
        for i in 0..64 {
            seen[shard_of(&format!("doc-{i}.txt"), shards)] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 names touch all 4 shards");
    }
}
