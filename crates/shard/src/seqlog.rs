//! The global ingest-order log: `seq.log` in the store root.
//!
//! Byte-identical scatter-gather depends on one fact the shards cannot
//! know on their own: the *global* order in which documents arrived. A
//! single store orders hits by `(doc_id, node_id)`, and doc ids are handed
//! out in ingest order — so the sharded coordinator keeps its own
//! monotonic sequence number per document name and sorts merged hits by
//! it. Per-shard hit order is already this sequence restricted to one
//! shard (shards receive documents in arrival order), so a stable sort of
//! the concatenated shard results reproduces the single-store order
//! exactly.
//!
//! The log is append-only text, one operation per line:
//!
//! ```text
//! NMSEQ1
//! + 1 plan-a.wdoc
//! + 2 plan-b.txt
//! - plan-a.wdoc
//! + 3 plan-a.wdoc
//! ```
//!
//! Names are escaped (`\\`, `\n`, `\r`) so arbitrary file names survive
//! the line orientation. Replay is self-healing: a torn or malformed tail
//! line (a crash mid-append) is skipped rather than failing the open —
//! the worst outcome is one document sorting at the end until the next
//! compaction, never a store that refuses to start. [`SeqLog::compact`]
//! rewrites the live mapping in sequence order, dropping dead `-` pairs.
//!
//! Re-inserting a name that is still live keeps its original sequence
//! (the access layers delete-then-reingest, so in practice a fresh number
//! is assigned); a name re-inserted after removal gets a fresh number,
//! matching the fresh doc id a single store would assign.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the sequence log inside the store root.
pub const FILE_NAME: &str = "seq.log";

/// Magic first line of a `seq.log` file.
pub const MAGIC: &str = "NMSEQ1";

struct SeqInner {
    file: File,
    map: HashMap<String, u64>,
    next: u64,
}

/// The global ingest-order log. See the module docs.
pub struct SeqLog {
    path: PathBuf,
    inner: Mutex<SeqInner>,
}

fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some(c) => out.push(c),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl SeqLog {
    /// Opens (or creates) the log at `path`, replaying its history.
    pub fn open(path: &Path) -> io::Result<SeqLog> {
        let mut map: HashMap<String, u64> = HashMap::new();
        let mut next: u64 = 1;
        match std::fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines().skip(1) {
                    // Self-healing replay: skip anything that does not
                    // parse (e.g. a torn final append after a crash).
                    if let Some(rest) = line.strip_prefix("+ ") {
                        let Some((seq, name)) = rest.split_once(' ') else {
                            continue;
                        };
                        let Ok(seq) = seq.parse::<u64>() else {
                            continue;
                        };
                        map.insert(unescape(name), seq);
                        next = next.max(seq + 1);
                    } else if let Some(name) = line.strip_prefix("- ") {
                        map.remove(&unescape(name));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let fresh = !path.exists();
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if fresh {
            writeln!(file, "{MAGIC}")?;
        }
        Ok(SeqLog {
            path: path.to_path_buf(),
            inner: Mutex::new(SeqInner { file, map, next }),
        })
    }

    /// The sequence number for `name`, assigning (and logging) a fresh one
    /// if the name is not currently live.
    pub fn assign(&self, name: &str) -> io::Result<u64> {
        let mut inner = self.inner.lock();
        if let Some(&seq) = inner.map.get(name) {
            return Ok(seq);
        }
        let seq = inner.next;
        inner.next += 1;
        writeln!(inner.file, "+ {seq} {}", escape(name))?;
        inner.map.insert(name.to_string(), seq);
        Ok(seq)
    }

    /// Drops the mapping for `name` (a removed document). A later
    /// re-insert gets a fresh sequence number.
    pub fn remove(&self, name: &str) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if inner.map.remove(name).is_some() {
            writeln!(inner.file, "- {}", escape(name))?;
        }
        Ok(())
    }

    /// The sequence number of a live name, if any.
    pub fn seq_of(&self, name: &str) -> Option<u64> {
        self.inner.lock().map.get(name).copied()
    }

    /// Number of live names.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no names are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` over the live name → sequence map without copying it (the
    /// merge path keys its sort through this).
    pub fn with_map<R>(&self, f: impl FnOnce(&HashMap<String, u64>) -> R) -> R {
        f(&self.inner.lock().map)
    }

    /// Live `(sequence, name)` pairs in sequence order — the global ingest
    /// order, used by rebalance to replay documents.
    pub fn entries_in_order(&self) -> Vec<(u64, String)> {
        let mut v: Vec<(u64, String)> = self
            .inner
            .lock()
            .map
            .iter()
            .map(|(n, &s)| (s, n.clone()))
            .collect();
        v.sort();
        v
    }

    /// Rewrites the log as the live mapping in sequence order, dropping
    /// removed names and superseded appends (temp file + rename).
    pub fn compact(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            writeln!(f, "{MAGIC}")?;
            let mut entries: Vec<(&u64, &String)> = inner.map.iter().map(|(n, s)| (s, n)).collect();
            entries.sort();
            for (seq, name) in entries {
                writeln!(f, "+ {seq} {}", escape(name))?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        inner.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nm-seqlog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn assign_remove_reassign_round_trips() {
        let dir = scratch("rt");
        let path = dir.join(FILE_NAME);
        {
            let log = SeqLog::open(&path).unwrap();
            assert_eq!(log.assign("a.txt").unwrap(), 1);
            assert_eq!(log.assign("b.txt").unwrap(), 2);
            assert_eq!(log.assign("a.txt").unwrap(), 1, "live name keeps its seq");
            log.remove("a.txt").unwrap();
            assert_eq!(log.seq_of("a.txt"), None);
            assert_eq!(
                log.assign("a.txt").unwrap(),
                3,
                "re-insert gets a fresh seq"
            );
        }
        let log = SeqLog::open(&path).unwrap();
        assert_eq!(log.seq_of("a.txt"), Some(3));
        assert_eq!(log.seq_of("b.txt"), Some(2));
        assert_eq!(log.assign("c.txt").unwrap(), 4, "counter survives reopen");
        assert_eq!(
            log.entries_in_order(),
            vec![
                (2, "b.txt".to_string()),
                (3, "a.txt".to_string()),
                (4, "c.txt".to_string())
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_names_survive() {
        let dir = scratch("esc");
        let path = dir.join(FILE_NAME);
        let names = ["with space.txt", "back\\slash", "new\nline", "cr\rname"];
        {
            let log = SeqLog::open(&path).unwrap();
            for n in names {
                log.assign(n).unwrap();
            }
        }
        let log = SeqLog::open(&path).unwrap();
        for (i, n) in names.iter().enumerate() {
            assert_eq!(log.seq_of(n), Some(i as u64 + 1), "{n:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let dir = scratch("torn");
        let path = dir.join(FILE_NAME);
        {
            let log = SeqLog::open(&path).unwrap();
            log.assign("a.txt").unwrap();
            log.assign("b.txt").unwrap();
        }
        // Simulate a crash mid-append: a truncated final line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "+ 7 tor").unwrap();
        drop(f);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 2);
        std::fs::write(&path, text).unwrap();
        let log = SeqLog::open(&path).unwrap();
        assert_eq!(log.seq_of("a.txt"), Some(1));
        assert_eq!(log.seq_of("b.txt"), Some(2));
        // The torn "+ 7 t" line DID parse its seq, which is fine: the
        // counter only ever moves forward.
        assert!(log.assign("c.txt").unwrap() >= 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_dead_history() {
        let dir = scratch("compact");
        let path = dir.join(FILE_NAME);
        let log = SeqLog::open(&path).unwrap();
        for i in 0..10 {
            log.assign(&format!("d{i}.txt")).unwrap();
        }
        for i in 0..5 {
            log.remove(&format!("d{i}.txt")).unwrap();
        }
        log.compact().unwrap();
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines, 6, "magic + 5 live entries");
        // Appends still work after compaction swapped the file.
        log.assign("late.txt").unwrap();
        drop(log);
        let log = SeqLog::open(&path).unwrap();
        assert_eq!(log.len(), 6);
        assert_eq!(log.seq_of("d7.txt"), Some(8));
        assert_eq!(log.seq_of("late.txt"), Some(11));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
