//! The persisted shard map: `SHARDMAP` in the store root.
//!
//! A sharded store's layout is a contract with its own past: the shard
//! count and the partitioner version together determine where every
//! document lives, so both are written down when the store is created and
//! checked on every subsequent open. Opening with a different requested
//! shard count is an error (resharding is an offline
//! [`crate::rebalance`]), and opening with an unknown partitioner version
//! is refused outright rather than silently mis-placing documents.
//!
//! The file is three lines of text:
//!
//! ```text
//! NMSHARD1
//! shards 4
//! partitioner fnv1a64/1
//! ```

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic first line of a `SHARDMAP` file.
pub const MAGIC: &str = "NMSHARD1";

/// File name of the shard map inside the store root.
pub const FILE_NAME: &str = "SHARDMAP";

/// The persisted shard map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Number of shards documents are partitioned across.
    pub shards: usize,
    /// Partitioner identifier (see [`crate::partition::PARTITIONER_ID`]).
    pub partitioner: String,
}

impl ShardManifest {
    /// A manifest for `shards` shards under the current partitioner.
    pub fn new(shards: usize) -> ShardManifest {
        ShardManifest {
            shards,
            partitioner: crate::partition::PARTITIONER_ID.to_string(),
        }
    }

    /// Path of the manifest inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(FILE_NAME)
    }

    /// Writes the manifest durably (temp file + rename).
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join(format!("{FILE_NAME}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{MAGIC}")?;
            writeln!(f, "shards {}", self.shards)?;
            writeln!(f, "partitioner {}", self.partitioner)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, Self::path(dir))
    }

    /// Loads the manifest from `dir`. `Ok(None)` when no manifest exists
    /// (a fresh store); an error when one exists but is malformed or names
    /// a partitioner this build does not implement.
    pub fn load(dir: &Path) -> io::Result<Option<ShardManifest>> {
        let text = match std::fs::read_to_string(Self::path(dir)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let bad =
            |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("SHARDMAP: {msg}"));
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(bad("bad magic"));
        }
        let mut shards: Option<usize> = None;
        let mut partitioner: Option<String> = None;
        for line in lines {
            match line.split_once(' ') {
                Some(("shards", v)) => {
                    shards = Some(v.parse().map_err(|_| bad("bad shard count"))?)
                }
                Some(("partitioner", v)) => partitioner = Some(v.to_string()),
                _ => return Err(bad("unknown line")),
            }
        }
        let m = ShardManifest {
            shards: shards
                .filter(|&n| n > 0)
                .ok_or_else(|| bad("missing shard count"))?,
            partitioner: partitioner.ok_or_else(|| bad("missing partitioner"))?,
        };
        if m.partitioner != crate::partition::PARTITIONER_ID {
            return Err(bad(&format!("unsupported partitioner '{}'", m.partitioner)));
        }
        Ok(Some(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nm-shardmap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip() {
        let dir = scratch("rt");
        assert_eq!(ShardManifest::load(&dir).unwrap(), None);
        let m = ShardManifest::new(6);
        m.save(&dir).unwrap();
        assert_eq!(ShardManifest::load(&dir).unwrap(), Some(m));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_and_unsupported_are_refused() {
        let dir = scratch("bad");
        std::fs::write(ShardManifest::path(&dir), "JUNK\n").unwrap();
        assert!(ShardManifest::load(&dir).is_err());
        std::fs::write(
            ShardManifest::path(&dir),
            "NMSHARD1\nshards 0\npartitioner fnv1a64/1\n",
        )
        .unwrap();
        assert!(ShardManifest::load(&dir).is_err(), "zero shards rejected");
        std::fs::write(
            ShardManifest::path(&dir),
            "NMSHARD1\nshards 2\npartitioner md5/9\n",
        )
        .unwrap();
        assert!(
            ShardManifest::load(&dir).is_err(),
            "unknown partitioner rejected"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
