//! Property test: an N-shard [`ShardedStore`] is byte-identical to a
//! single-store reference over random interleavings of batched ingest,
//! deletions, and queries.
//!
//! Both stores replay the same operation history; after every `Query` op
//! (and once at the end) the full query battery — exact context, fallback
//! context, union labels, single- and multi-term content, phrase match,
//! combined context+content, doc filter, limit truncation, unconstrained —
//! must render the same XML bytes: same hits, same order, same
//! `candidates` count, same `truncated` flag.

use netmark::{NetMark, XdbBackend};
use netmark_docformats::upmark;
use netmark_model::Document;
use netmark_shard::{ShardOptions, ShardedStore};
use netmark_xdb::XdbQuery;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

const NAMES: &[&str] = &[
    "alpha.txt",
    "beta.txt",
    "gamma.wdoc",
    "delta.txt",
    "epsilon.txt",
    "zeta.html",
    "eta.txt",
    "theta.txt",
    "iota.txt",
    "kappa.txt",
    "lambda.txt",
    "mu.txt",
];

const HEADINGS: &[&str] = &[
    "Budget",
    "Budget Overview FY05",
    "Technology Gap",
    "Schedule",
    "Cost Details",
    "Summary",
];

const VOCAB: &[&str] = &[
    "million",
    "dollars",
    "shuttle",
    "engine",
    "gap",
    "shrinking",
    "growing",
    "apollo",
    "risk",
    "schedule",
    "saturn",
    "itemized",
];

/// One step of the random interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Batch-ingest documents: `(name, heading, words)` selectors. Names
    /// already live (or repeated within the batch) are skipped — the
    /// access layers delete before re-ingesting, so a live name is never
    /// inserted twice.
    Ingest(Vec<(u8, u8, Vec<u8>)>),
    /// Remove one live document (selector modulo the live count).
    Delete(u8),
    /// Run the full query battery and compare both stores byte-for-byte.
    Query,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let doc = (
        0u8..NAMES.len() as u8,
        0u8..HEADINGS.len() as u8,
        proptest::collection::vec(0u8..VOCAB.len() as u8, 1..6),
    );
    prop_oneof![
        proptest::collection::vec(doc, 1..6).prop_map(Op::Ingest),
        (0u8..255u8).prop_map(Op::Delete),
        Just(Op::Query),
    ]
}

fn make_doc(name_sel: u8, heading_sel: u8, words: &[u8]) -> Document {
    let name = NAMES[name_sel as usize % NAMES.len()];
    let heading = HEADINGS[heading_sel as usize % HEADINGS.len()];
    let body: Vec<&str> = words
        .iter()
        .map(|&w| VOCAB[w as usize % VOCAB.len()])
        .collect();
    upmark(name, &format!("# {heading}\n{}\n", body.join(" ")))
}

/// Every query shape the engine supports, including ones that exercise
/// the global fallback decision, limit pushdown, and doc routing.
fn battery() -> Vec<XdbQuery> {
    let mut doc_filtered = XdbQuery::context("Budget|Summary");
    doc_filtered.doc = Some("delta.txt".to_string());
    let mut doc_content = XdbQuery::content("million");
    doc_content.doc = Some("alpha.txt".to_string());
    vec![
        XdbQuery::context("Budget"),
        XdbQuery::context("Technology Gap"),
        XdbQuery::context("Budget|Cost Details"),
        XdbQuery::content("million"),
        XdbQuery::content("gap shrinking"),
        XdbQuery::content("the gap is"),
        XdbQuery::content("shuttle engine").with_phrase_match(),
        XdbQuery::context_content("Budget", "million dollars"),
        XdbQuery::context("Budget").with_limit(2),
        XdbQuery::content("million").with_limit(1),
        doc_filtered,
        doc_content,
        XdbQuery::default(),
    ]
}

fn compare_battery(
    sharded: &ShardedStore,
    reference: &NetMark,
    step: usize,
) -> Result<(), TestCaseError> {
    for q in battery() {
        let s = sharded
            .query(&q)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let r = reference
            .query(&q)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (s_xml, r_xml) = (s.to_xml(), r.to_xml());
        if s_xml != r_xml {
            return Err(TestCaseError::fail(format!(
                "step {step}: sharded != reference for {q:?}\nsharded:   {s_xml}\nreference: {r_xml}"
            )));
        }
    }
    Ok(())
}

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "nm-shard-props-{tag}-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn sharded_store_is_byte_identical_to_single_store(
        shards in 2usize..5,
        ops in proptest::collection::vec(op_strategy(), 1..32)
    ) {
        let sdir = scratch_dir("sharded");
        let rdir = scratch_dir("ref");
        let _ = std::fs::remove_dir_all(&sdir);
        let _ = std::fs::remove_dir_all(&rdir);
        let sharded = ShardedStore::open_with(
            &sdir,
            ShardOptions { shards, ..ShardOptions::default() },
        )
        .unwrap();
        let reference = NetMark::open(&rdir).unwrap();

        let mut live: Vec<&str> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Ingest(specs) => {
                    let mut batch: Vec<Document> = Vec::new();
                    let mut batch_names: HashSet<&str> = HashSet::new();
                    for (n, h, words) in specs {
                        let name = NAMES[*n as usize % NAMES.len()];
                        if live.contains(&name) || !batch_names.insert(name) {
                            continue;
                        }
                        batch.push(make_doc(*n, *h, words));
                        live.push(name);
                    }
                    let s = sharded.ingest_batch(&batch).unwrap();
                    let r = reference.ingest_batch(&batch).unwrap();
                    prop_assert_eq!(s.len(), r.len());
                }
                Op::Delete(sel) => {
                    if live.is_empty() {
                        continue;
                    }
                    let name = live.remove(*sel as usize % live.len());
                    prop_assert!(ShardedStore::remove_named(&sharded, name).unwrap());
                    prop_assert!(XdbBackend::remove_named(&reference, name).unwrap());
                }
                Op::Query => compare_battery(&sharded, &reference, step)?,
            }
        }
        compare_battery(&sharded, &reference, usize::MAX)?;

        // Listings agree on names and global order (ids are store-local).
        let s_names: Vec<String> = sharded
            .list_documents().unwrap().into_iter().map(|d| d.file_name).collect();
        let r_names: Vec<String> = reference
            .list_documents().unwrap().into_iter().map(|d| d.file_name).collect();
        prop_assert_eq!(s_names, r_names);

        std::fs::remove_dir_all(&sdir).unwrap();
        std::fs::remove_dir_all(&rdir).unwrap();
    }
}
