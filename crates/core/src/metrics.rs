//! Per-stage ingest instrumentation.
//!
//! Every ingest path — single [`crate::NetMark::insert_file`] calls, batch
//! ingest, and the staged pipeline — feeds the same [`IngestMetrics`]
//! counters, so `NetMark::stats()` always reflects cumulative ingest work:
//! documents and nodes written, batch count, and wall time split across the
//! three stages (upmark parsing, store transaction, text indexing).
//!
//! The counters are atomics: recording from pipeline worker threads never
//! takes a lock, and reading via [`IngestMetrics::snapshot`] never blocks
//! an ingest.
//!
//! [`SourceMetrics`] is the query-side sibling: per-source federation
//! health (latency, failures, circuit-breaker activity), recorded by the
//! thin router's fan-out threads with the same lock-free discipline.
//!
//! [`QueryMetrics`] instruments the local read path: every query executed
//! by the [`crate::engine::QueryEngine`] folds its per-stage wall times
//! (index lookup, context walk, intersection, content collection) and its
//! cache outcome into these counters, surfaced via `NetMark::stats()` and
//! the `GET /xdb/stats` endpoint.

use netmark_model::Node;
use netmark_relstore::MvccStats;
use netmark_textindex::{IndexStats, TopkStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Renders the `<index …/>` element served under `GET /xdb/stats`:
/// segmented text-index gauges (segment chain, tombstone backlog) and
/// lifetime counters (seals, compaction merges and purges, incremental
/// saves). [`IndexStats`] lives in `netmark-textindex`, which has no XML
/// dependency, so the rendering lives here with the other stat nodes.
pub fn index_stats_node(s: &IndexStats) -> Node {
    Node::element("index")
        .with_attr("docs", &s.docs.to_string())
        .with_attr("terms", &s.terms.to_string())
        .with_attr("postings", &s.postings.to_string())
        .with_attr("postings-bytes", &s.bytes.to_string())
        .with_attr("blocks-total", &s.blocks_total.to_string())
        .with_attr("segments", &s.segments.to_string())
        .with_attr("tombstones", &s.tombstones.to_string())
        .with_attr("commits", &s.commits.to_string())
        .with_attr("seals", &s.seals.to_string())
        .with_attr("compactions", &s.compactions.to_string())
        .with_attr("segments-merged", &s.segments_merged.to_string())
        .with_attr("postings-purged", &s.postings_purged.to_string())
        .with_attr("ids-purged", &s.ids_purged.to_string())
        .with_attr("saves", &s.saves.to_string())
        .with_attr("segments-written", &s.segments_written.to_string())
}

/// Renders the `<mvcc …/>` element served under `GET /xdb/stats`: the
/// storage engine's multi-version gauges (current commit version, live
/// pinned read views, copy-on-write overlay size) and lifetime counters
/// (views opened/evicted, versions published). [`MvccStats`] lives in
/// `netmark-relstore`, which has no XML dependency, so the rendering lives
/// here with the other stat nodes.
pub fn mvcc_stats_node(s: &MvccStats) -> Node {
    Node::element("mvcc")
        .with_attr("version", &s.version.to_string())
        .with_attr("live-views", &s.live_views.to_string())
        .with_attr("views-opened", &s.views_opened.to_string())
        .with_attr("views-evicted", &s.views_evicted.to_string())
        .with_attr("publishes", &s.publishes.to_string())
        .with_attr("overlay-pages", &s.overlay_pages.to_string())
        .with_attr("overlay-bytes", &s.overlay_bytes.to_string())
}

/// Cumulative ingest counters (lock-free; shared across threads).
#[derive(Debug, Default)]
pub struct IngestMetrics {
    documents: AtomicU64,
    nodes: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    max_queue_depth: AtomicU64,
    upmark_nanos: AtomicU64,
    store_nanos: AtomicU64,
    index_nanos: AtomicU64,
}

impl IngestMetrics {
    /// Records wall time spent upmarking (stage 1). Documents are counted
    /// at commit time by [`IngestMetrics::record_store`], so a parsed file
    /// that never commits is not inflated into the throughput numbers.
    pub fn record_upmark(&self, elapsed: Duration) {
        self.upmark_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one committed store batch of `docs` documents totalling
    /// `nodes` rows (stage 2).
    pub fn record_store(&self, docs: u64, nodes: u64, elapsed: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.documents.fetch_add(docs, Ordering::Relaxed);
        self.nodes.fetch_add(nodes, Ordering::Relaxed);
        self.store_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records time spent feeding the text index (stage 3).
    pub fn record_index(&self, elapsed: Duration) {
        self.index_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one file that failed to ingest (isolated, not fatal).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds an observed pipeline queue depth into the high-water mark.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters (each field is read
    /// atomically; the set is not a single snapshot, which is fine for
    /// monitoring).
    pub fn snapshot(&self) -> IngestStats {
        IngestStats {
            documents: self.documents.load(Ordering::Relaxed),
            nodes: self.nodes.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            upmark_time: Duration::from_nanos(self.upmark_nanos.load(Ordering::Relaxed)),
            store_time: Duration::from_nanos(self.store_nanos.load(Ordering::Relaxed)),
            index_time: Duration::from_nanos(self.index_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of [`IngestMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Documents upmarked.
    pub documents: u64,
    /// `XML` rows written.
    pub nodes: u64,
    /// Store batches committed.
    pub batches: u64,
    /// Files that failed to ingest.
    pub errors: u64,
    /// High-water mark of the pipeline document queue.
    pub max_queue_depth: u64,
    /// Wall time in the upmark stage (summed across workers).
    pub upmark_time: Duration,
    /// Wall time inside store transactions.
    pub store_time: Duration,
    /// Wall time feeding the text index.
    pub index_time: Duration,
}

impl IngestStats {
    /// Counters accumulated since `earlier` (for per-run deltas over the
    /// cumulative metrics).
    pub fn since(&self, earlier: &IngestStats) -> IngestStats {
        IngestStats {
            documents: self.documents - earlier.documents,
            nodes: self.nodes - earlier.nodes,
            batches: self.batches - earlier.batches,
            errors: self.errors - earlier.errors,
            max_queue_depth: self.max_queue_depth.max(earlier.max_queue_depth),
            upmark_time: self.upmark_time - earlier.upmark_time,
            store_time: self.store_time - earlier.store_time,
            index_time: self.index_time - earlier.index_time,
        }
    }

    /// Mean documents per committed batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.documents as f64 / self.batches as f64
        }
    }

    /// Ingest throughput in documents/second over `wall` elapsed time.
    pub fn docs_per_sec(&self, wall: Duration) -> f64 {
        per_sec(self.documents, wall)
    }

    /// Ingest throughput in nodes/second over `wall` elapsed time.
    pub fn nodes_per_sec(&self, wall: Duration) -> f64 {
        per_sec(self.nodes, wall)
    }
}

/// Cumulative per-source federation counters (lock-free; shared between
/// the router's fan-out threads and monitoring readers).
///
/// The router keeps one of these per registered source; every federated
/// query records its outcome here — latency, hit counts, failures, and
/// circuit-breaker activity — so source health is observable without
/// scraping query results.
#[derive(Debug, Default)]
pub struct SourceMetrics {
    queries: AtomicU64,
    failures: AtomicU64,
    hits: AtomicU64,
    latency_nanos: AtomicU64,
    max_latency_nanos: AtomicU64,
    breaker_opens: AtomicU64,
    short_circuits: AtomicU64,
}

impl SourceMetrics {
    /// Records one completed source query: hits contributed, wall latency,
    /// and whether the source failed (a failed source still has latency —
    /// the time spent finding out).
    pub fn record_query(&self, hits: u64, latency: Duration, failed: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(hits, Ordering::Relaxed);
        if failed {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        let nanos = latency.as_nanos() as u64;
        self.latency_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_latency_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records a circuit-breaker transition to open.
    pub fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query answered without touching the source because its
    /// breaker was open.
    pub fn record_short_circuit(&self) {
        self.short_circuits.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> SourceStats {
        SourceStats {
            queries: self.queries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            total_latency: Duration::from_nanos(self.latency_nanos.load(Ordering::Relaxed)),
            max_latency: Duration::from_nanos(self.max_latency_nanos.load(Ordering::Relaxed)),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            short_circuits: self.short_circuits.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`SourceMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Queries dispatched to (or short-circuited at) this source.
    pub queries: u64,
    /// Queries that ended in a source error.
    pub failures: u64,
    /// Hits contributed across all queries.
    pub hits: u64,
    /// Summed query latency.
    pub total_latency: Duration,
    /// Worst single-query latency.
    pub max_latency: Duration,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Queries skipped because the breaker was open.
    pub short_circuits: u64,
}

impl SourceStats {
    /// Mean per-query latency.
    pub fn mean_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.queries as u32
        }
    }

    /// Fraction of queries that failed (0.0 when none ran).
    pub fn failure_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.failures as f64 / self.queries as f64
        }
    }
}

/// Per-stage record of one executed query, returned by
/// `QueryEngine::execute_traced` and folded into [`QueryMetrics`].
///
/// A cache hit short-circuits execution: only `total` is meaningful then.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// The result came straight from the generation-stamped cache.
    pub cache_hit: bool,
    /// Wall time querying the text index (postings fetch, CTXKEY probe).
    pub index_lookup: Duration,
    /// Wall time walking rowid chains up to governing contexts.
    pub context_walk: Duration,
    /// Wall time intersecting per-term / context ∩ content rowid sets.
    pub intersection: Duration,
    /// Wall time collecting section content for surviving contexts.
    pub collection: Duration,
    /// End-to-end wall time, including cache probes.
    pub total: Duration,
    /// Text-index candidate postings examined.
    pub candidates: usize,
    /// Terms fanned out across the worker pool (0 = executed serially).
    pub fanout: usize,
    /// Top-k pruning counters (all zero on unranked or unpruned paths).
    pub topk: TopkStats,
}

/// Cumulative read-path counters (lock-free; shared across server
/// threads). One per [`crate::engine::QueryEngine`].
#[derive(Debug, Default)]
pub struct QueryMetrics {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    parallel_queries: AtomicU64,
    candidates: AtomicU64,
    blocks_skipped: AtomicU64,
    postings_decoded: AtomicU64,
    postings_total: AtomicU64,
    heap_evictions: AtomicU64,
    index_nanos: AtomicU64,
    walk_nanos: AtomicU64,
    intersect_nanos: AtomicU64,
    collect_nanos: AtomicU64,
    total_nanos: AtomicU64,
}

impl QueryMetrics {
    /// Folds one completed query into the counters.
    pub fn record(&self, trace: &QueryTrace) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.total_nanos
            .fetch_add(trace.total.as_nanos() as u64, Ordering::Relaxed);
        if trace.cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.candidates
            .fetch_add(trace.candidates as u64, Ordering::Relaxed);
        self.blocks_skipped
            .fetch_add(trace.topk.blocks_skipped, Ordering::Relaxed);
        self.postings_decoded
            .fetch_add(trace.topk.postings_decoded, Ordering::Relaxed);
        self.postings_total
            .fetch_add(trace.topk.postings_total, Ordering::Relaxed);
        self.heap_evictions
            .fetch_add(trace.topk.heap_evictions, Ordering::Relaxed);
        if trace.fanout > 0 {
            self.parallel_queries.fetch_add(1, Ordering::Relaxed);
        }
        self.index_nanos
            .fetch_add(trace.index_lookup.as_nanos() as u64, Ordering::Relaxed);
        self.walk_nanos
            .fetch_add(trace.context_walk.as_nanos() as u64, Ordering::Relaxed);
        self.intersect_nanos
            .fetch_add(trace.intersection.as_nanos() as u64, Ordering::Relaxed);
        self.collect_nanos
            .fetch_add(trace.collection.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters. Memo fields are zero here; the
    /// engine's `stats()` accessor splices them in from its context memo.
    pub fn snapshot(&self) -> QueryStats {
        QueryStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            parallel_queries: self.parallel_queries.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            topk: TopkStats {
                blocks_skipped: self.blocks_skipped.load(Ordering::Relaxed),
                postings_decoded: self.postings_decoded.load(Ordering::Relaxed),
                postings_total: self.postings_total.load(Ordering::Relaxed),
                heap_evictions: self.heap_evictions.load(Ordering::Relaxed),
            },
            memo_hits: 0,
            memo_misses: 0,
            store_version: 0,
            live_views: 0,
            views_evicted: 0,
            index_time: Duration::from_nanos(self.index_nanos.load(Ordering::Relaxed)),
            walk_time: Duration::from_nanos(self.walk_nanos.load(Ordering::Relaxed)),
            intersect_time: Duration::from_nanos(self.intersect_nanos.load(Ordering::Relaxed)),
            collect_time: Duration::from_nanos(self.collect_nanos.load(Ordering::Relaxed)),
            total_time: Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of [`QueryMetrics`] (plus context-memo counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries executed (hits + misses).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that executed cold.
    pub cache_misses: u64,
    /// Cold queries whose terms fanned out across the worker pool.
    pub parallel_queries: u64,
    /// Cumulative text-index candidates examined.
    pub candidates: u64,
    /// Cumulative top-k pruning counters (blocks skipped, postings decoded
    /// vs total, bounded-heap evictions).
    pub topk: TopkStats,
    /// rowid→context walks answered by the memo.
    pub memo_hits: u64,
    /// rowid→context walks computed (and memoized).
    pub memo_misses: u64,
    /// Storage MVCC gauge: current committed version (LSN) queries pin.
    pub store_version: u64,
    /// Storage MVCC gauge: read views pinned right now.
    pub live_views: u64,
    /// Storage MVCC counter: views evicted by checkpoints for exceeding
    /// the configured `max_view_lag`.
    pub views_evicted: u64,
    /// Cumulative wall time in text-index lookups.
    pub index_time: Duration,
    /// Cumulative wall time walking to governing contexts.
    pub walk_time: Duration,
    /// Cumulative wall time intersecting rowid sets.
    pub intersect_time: Duration,
    /// Cumulative wall time collecting section content.
    pub collect_time: Duration,
    /// Cumulative end-to-end wall time.
    pub total_time: Duration,
}

impl QueryStats {
    /// Fraction of queries answered from the cache (0.0 when none ran).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Mean end-to-end latency per query.
    pub fn mean_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.queries as u32
        }
    }

    /// Counters accumulated since `earlier`.
    pub fn since(&self, earlier: &QueryStats) -> QueryStats {
        QueryStats {
            queries: self.queries - earlier.queries,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            parallel_queries: self.parallel_queries - earlier.parallel_queries,
            candidates: self.candidates - earlier.candidates,
            topk: TopkStats {
                blocks_skipped: self.topk.blocks_skipped - earlier.topk.blocks_skipped,
                postings_decoded: self.topk.postings_decoded - earlier.topk.postings_decoded,
                postings_total: self.topk.postings_total - earlier.topk.postings_total,
                heap_evictions: self.topk.heap_evictions - earlier.topk.heap_evictions,
            },
            memo_hits: self.memo_hits - earlier.memo_hits,
            memo_misses: self.memo_misses - earlier.memo_misses,
            // Version and live-view counts are gauges, not counters: a
            // delta keeps the later reading rather than subtracting.
            store_version: self.store_version,
            live_views: self.live_views,
            views_evicted: self.views_evicted - earlier.views_evicted,
            index_time: self.index_time - earlier.index_time,
            walk_time: self.walk_time - earlier.walk_time,
            intersect_time: self.intersect_time - earlier.intersect_time,
            collect_time: self.collect_time - earlier.collect_time,
            total_time: self.total_time - earlier.total_time,
        }
    }

    /// Folds another store's stats into this one — the sharded-mode
    /// aggregation. Counters and cumulative durations sum across shards;
    /// gauges (`store_version`, `live_views`) take the max, because
    /// summing instantaneous readings from independent stores fabricates
    /// a value no store ever reported.
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.parallel_queries += other.parallel_queries;
        self.candidates += other.candidates;
        self.topk.merge(&other.topk);
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.store_version = self.store_version.max(other.store_version);
        self.live_views = self.live_views.max(other.live_views);
        self.views_evicted += other.views_evicted;
        self.index_time += other.index_time;
        self.walk_time += other.walk_time;
        self.intersect_time += other.intersect_time;
        self.collect_time += other.collect_time;
        self.total_time += other.total_time;
    }

    /// Renders the `<query …/>` element served under `GET /xdb/stats`,
    /// with the top-k pruning counters as a nested `<topk/>` child.
    /// Durations are microseconds — query stages are routinely sub-ms.
    pub fn to_node(&self) -> Node {
        let topk = Node::element("topk")
            .with_attr("blocks-skipped", &self.topk.blocks_skipped.to_string())
            .with_attr("postings-decoded", &self.topk.postings_decoded.to_string())
            .with_attr("postings-total", &self.topk.postings_total.to_string())
            .with_attr("heap-evictions", &self.topk.heap_evictions.to_string());
        Node::element("query")
            .with_attr("queries", &self.queries.to_string())
            .with_attr("cache-hits", &self.cache_hits.to_string())
            .with_attr("cache-misses", &self.cache_misses.to_string())
            .with_attr("parallel", &self.parallel_queries.to_string())
            .with_attr("candidates", &self.candidates.to_string())
            .with_attr("memo-hits", &self.memo_hits.to_string())
            .with_attr("memo-misses", &self.memo_misses.to_string())
            .with_attr("store-version", &self.store_version.to_string())
            .with_attr("live-views", &self.live_views.to_string())
            .with_attr("views-evicted", &self.views_evicted.to_string())
            .with_attr("index-us", &(self.index_time.as_micros()).to_string())
            .with_attr("walk-us", &(self.walk_time.as_micros()).to_string())
            .with_attr(
                "intersect-us",
                &(self.intersect_time.as_micros()).to_string(),
            )
            .with_attr("collect-us", &(self.collect_time.as_micros()).to_string())
            .with_attr("total-us", &(self.total_time.as_micros()).to_string())
            .with_child(topk)
    }
}

fn per_sec(count: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = IngestMetrics::default();
        m.record_upmark(Duration::from_millis(30));
        m.record_store(2, 120, Duration::from_millis(50));
        m.record_store(1, 80, Duration::from_millis(20));
        m.record_index(Duration::from_millis(5));
        m.record_error();
        m.observe_queue_depth(4);
        m.observe_queue_depth(2);
        let s = m.snapshot();
        assert_eq!(s.documents, 3);
        assert_eq!(s.nodes, 200);
        assert_eq!(s.batches, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.max_queue_depth, 4, "high-water mark, not last value");
        assert_eq!(s.upmark_time, Duration::from_millis(30));
        assert_eq!(s.store_time, Duration::from_millis(70));
        assert_eq!(s.mean_batch_size(), 1.5);
    }

    #[test]
    fn source_metrics_accumulate() {
        let m = SourceMetrics::default();
        m.record_query(3, Duration::from_millis(10), false);
        m.record_query(0, Duration::from_millis(30), true);
        m.record_breaker_open();
        m.record_short_circuit();
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.failures, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.total_latency, Duration::from_millis(40));
        assert_eq!(s.max_latency, Duration::from_millis(30));
        assert_eq!(s.mean_latency(), Duration::from_millis(20));
        assert_eq!(s.failure_rate(), 0.5);
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.short_circuits, 1);
        assert_eq!(SourceStats::default().mean_latency(), Duration::ZERO);
        assert_eq!(SourceStats::default().failure_rate(), 0.0);
    }

    #[test]
    fn query_metrics_accumulate_and_render() {
        let m = QueryMetrics::default();
        m.record(&QueryTrace {
            cache_hit: false,
            index_lookup: Duration::from_micros(100),
            context_walk: Duration::from_micros(200),
            intersection: Duration::from_micros(10),
            collection: Duration::from_micros(40),
            total: Duration::from_micros(400),
            candidates: 7,
            fanout: 3,
            topk: TopkStats {
                blocks_skipped: 5,
                postings_decoded: 20,
                postings_total: 660,
                heap_evictions: 2,
            },
        });
        m.record(&QueryTrace {
            cache_hit: true,
            total: Duration::from_micros(2),
            ..Default::default()
        });
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.parallel_queries, 1);
        assert_eq!(s.candidates, 7);
        assert_eq!(s.index_time, Duration::from_micros(100));
        assert_eq!(s.walk_time, Duration::from_micros(200));
        assert_eq!(s.total_time, Duration::from_micros(402));
        assert_eq!(s.cache_hit_rate(), 0.5);
        assert_eq!(s.mean_latency(), Duration::from_micros(201));
        assert_eq!(s.topk.blocks_skipped, 5);
        assert_eq!(s.topk.postings_decoded, 20);
        assert_eq!(s.topk.postings_total, 660);
        assert_eq!(s.topk.heap_evictions, 2);
        let node = s.to_node();
        assert_eq!(node.name, "query");
        assert_eq!(node.attr("cache-hits"), Some("1"));
        assert_eq!(node.attr("walk-us"), Some("200"));
        let topk = node.children_named("topk");
        assert_eq!(topk.len(), 1, "topk counters nest under <query/>");
        assert_eq!(topk[0].attr("blocks-skipped"), Some("5"));
        assert_eq!(topk[0].attr("postings-decoded"), Some("20"));
        assert_eq!(topk[0].attr("postings-total"), Some("660"));
        assert_eq!(topk[0].attr("heap-evictions"), Some("2"));
        assert_eq!(QueryStats::default().cache_hit_rate(), 0.0);
        assert_eq!(QueryStats::default().mean_latency(), Duration::ZERO);
        let delta = s.since(&s);
        assert_eq!(delta.queries, 0);
        assert_eq!(delta.total_time, Duration::ZERO);
    }

    #[test]
    fn index_stats_render() {
        let s = IndexStats {
            docs: 10,
            terms: 40,
            bytes: 4096,
            blocks_total: 17,
            segments: 3,
            tombstones: 2,
            compactions: 1,
            segments_written: 5,
            ..Default::default()
        };
        let node = index_stats_node(&s);
        assert_eq!(node.name, "index");
        assert_eq!(node.attr("docs"), Some("10"));
        assert_eq!(node.attr("postings-bytes"), Some("4096"));
        assert_eq!(node.attr("blocks-total"), Some("17"));
        assert_eq!(node.attr("segments"), Some("3"));
        assert_eq!(node.attr("tombstones"), Some("2"));
        assert_eq!(node.attr("compactions"), Some("1"));
        assert_eq!(node.attr("segments-written"), Some("5"));
    }

    #[test]
    fn mvcc_stats_render() {
        let s = MvccStats {
            version: 42,
            live_views: 3,
            views_opened: 100,
            views_evicted: 1,
            publishes: 9,
            overlay_pages: 12,
            overlay_bytes: 98304,
        };
        let node = mvcc_stats_node(&s);
        assert_eq!(node.name, "mvcc");
        assert_eq!(node.attr("version"), Some("42"));
        assert_eq!(node.attr("live-views"), Some("3"));
        assert_eq!(node.attr("views-evicted"), Some("1"));
        assert_eq!(node.attr("overlay-pages"), Some("12"));
    }

    #[test]
    fn rates_and_deltas() {
        let m = IngestMetrics::default();
        m.record_store(10, 100, Duration::from_millis(1));
        let before = m.snapshot();
        m.record_store(40, 400, Duration::from_millis(1));
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.documents, 40);
        assert_eq!(delta.nodes, 400);
        assert_eq!(delta.docs_per_sec(Duration::from_secs(2)), 20.0);
        assert_eq!(delta.nodes_per_sec(Duration::from_secs(2)), 200.0);
        assert_eq!(IngestStats::default().docs_per_sec(Duration::ZERO), 0.0);
        assert_eq!(IngestStats::default().mean_batch_size(), 0.0);
    }

    #[test]
    fn query_stats_merge_sums_counters_and_maxes_gauges() {
        let a = QueryStats {
            queries: 10,
            cache_hits: 4,
            cache_misses: 6,
            parallel_queries: 2,
            candidates: 100,
            topk: TopkStats {
                blocks_skipped: 8,
                postings_decoded: 40,
                postings_total: 100,
                heap_evictions: 3,
            },
            memo_hits: 30,
            memo_misses: 5,
            store_version: 7,
            live_views: 1,
            views_evicted: 2,
            index_time: Duration::from_micros(100),
            walk_time: Duration::from_micros(200),
            intersect_time: Duration::from_micros(300),
            collect_time: Duration::from_micros(400),
            total_time: Duration::from_micros(1000),
        };
        let b = QueryStats {
            queries: 3,
            cache_hits: 1,
            cache_misses: 2,
            parallel_queries: 1,
            candidates: 50,
            topk: TopkStats {
                blocks_skipped: 2,
                postings_decoded: 10,
                postings_total: 30,
                heap_evictions: 1,
            },
            memo_hits: 10,
            memo_misses: 8,
            store_version: 12,
            live_views: 4,
            views_evicted: 1,
            index_time: Duration::from_micros(10),
            walk_time: Duration::from_micros(20),
            intersect_time: Duration::from_micros(30),
            collect_time: Duration::from_micros(40),
            total_time: Duration::from_micros(100),
        };
        let mut merged = a;
        merged.merge(&b);
        // Counters sum…
        assert_eq!(merged.queries, 13);
        assert_eq!(merged.cache_hits, 5);
        assert_eq!(merged.cache_misses, 8);
        assert_eq!(merged.parallel_queries, 3);
        assert_eq!(merged.candidates, 150);
        assert_eq!(merged.topk.blocks_skipped, 10);
        assert_eq!(merged.topk.postings_decoded, 50);
        assert_eq!(merged.topk.postings_total, 130);
        assert_eq!(merged.topk.heap_evictions, 4);
        assert_eq!(merged.memo_hits, 40);
        assert_eq!(merged.memo_misses, 13);
        assert_eq!(merged.views_evicted, 3);
        assert_eq!(merged.total_time, Duration::from_micros(1100));
        assert_eq!(merged.index_time, Duration::from_micros(110));
        // …gauges take the max, never the sum.
        assert_eq!(merged.store_version, 12);
        assert_eq!(merged.live_views, 4);
        // Merge order must not matter.
        let mut other = b;
        other.merge(&a);
        assert_eq!(merged, other);
    }
}
