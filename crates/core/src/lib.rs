//! `netmark` — the core of the *Lean Middleware* reproduction (SIGMOD
//! 2005): the NETMARK schema-less document store with context + content
//! search and on-the-fly result composition.
//!
//! NETMARK's tenets (paper §2.1):
//! 1. *The database is nothing more than intelligent storage*: every
//!    document of every type lands in the same two relational tables
//!    ([`schema`], Fig 5) — no per-document-type schema, ever.
//! 2. *Schema is imposed by clients, as needed*: documents are "upmarked"
//!    into context/content XML by format parsers (`netmark-docformats`)
//!    and queried by section heading, not by schema.
//! 3. *Integration happens at the client, on the fly*: see
//!    `netmark-federation` for databanks over this engine.
//!
//! # Quickstart
//!
//! ```
//! use netmark::{NetMark, XdbQuery};
//!
//! let dir = std::env::temp_dir().join(format!("netmark-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let nm = NetMark::open(&dir).unwrap();
//! nm.insert_file("plan.wdoc", "<<Heading1>> Budget\n<<Normal>> two million\n").unwrap();
//! let results = nm.query(&XdbQuery::context("Budget")).unwrap();
//! assert_eq!(results.hits[0].content_text(), "two million");
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod netmark;
pub mod pipeline;
pub mod scatter;
pub mod schema;
pub mod store;

pub use backend::XdbBackend;
pub use engine::{QueryEngine, QueryEngineOptions};
pub use error::{NetmarkError, Result};
pub use metrics::{
    index_stats_node, mvcc_stats_node, IngestMetrics, IngestStats, QueryMetrics, QueryStats,
    QueryTrace, SourceMetrics, SourceStats,
};
pub use netmark::{NetMark, NetMarkOptions, NetMarkStats, QueryOutput};
pub use pipeline::{ingest_files, BoundedQueue, PipelineConfig, PipelineStats, RawFile};
pub use scatter::{merge_scored, scatter};
pub use store::{DocId, DocInfo, IngestReport, NodeId, NodeRow, NodeStore, StoreView};

// Re-export the vocabulary types users need at the API surface.
pub use netmark_model::{Document, Node, NodeType};
pub use netmark_textindex::{CompactionPolicy, IndexStats, SegmentedIndex};
pub use netmark_xdb::{Capabilities, Hit, MatchMode, RankMode, ResultSet, XdbQuery};
