//! The staged parallel ingestion pipeline.
//!
//! Bulk ingest runs as two stages connected by a bounded queue:
//!
//! 1. **Upmark** — N worker threads pull raw files from an input queue and
//!    parse them into [`Document`]s concurrently. Upmarking is pure CPU
//!    (format detection + parsing) and needs no store access, so it
//!    parallelizes freely.
//! 2. **Write** — a single writer thread drains documents into batches and
//!    commits each batch in one store transaction via
//!    [`NetMark::ingest_batch`], so one WAL commit (and at most one fsync,
//!    amortized further by the group-commit window) covers up to
//!    [`PipelineConfig::batch_docs`] documents. Each committed batch also
//!    seals one text-index memtable run, so the segmented index grows one
//!    segment per batch (later folded together by background compaction),
//!    and queries running during the bulk load never block on a lock.
//!
//! The queue is bounded: when the writer falls behind, upmark workers block
//! instead of buffering unboundedly (backpressure), which caps memory at
//! roughly `queue_capacity` parsed documents.
//!
//! Failures are isolated per file: a batch that fails to commit is retried
//! one document at a time, and only the offending documents are dropped
//! (counted in [`PipelineStats::errors`]).

use crate::backend::XdbBackend;
use crate::error::Result;
use crate::metrics::IngestStats;
use netmark_docformats::upmark;
use netmark_model::Document;
use netmark_relstore::WalStats;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A raw file awaiting ingestion.
#[derive(Debug, Clone)]
pub struct RawFile {
    /// File name (drives format detection).
    pub name: String,
    /// File content.
    pub content: String,
}

impl RawFile {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, content: impl Into<String>) -> RawFile {
        RawFile {
            name: name.into(),
            content: content.into(),
        }
    }
}

/// Tuning knobs for [`ingest_files`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Upmark worker threads (stage 1).
    pub workers: usize,
    /// Maximum documents per store transaction (stage 2).
    pub batch_docs: usize,
    /// Bound on each inter-stage queue (backpressure).
    pub queue_capacity: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_docs: 64,
            queue_capacity: 256,
        }
    }
}

/// What one pipeline run did, per stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Files offered to the pipeline.
    pub files_in: usize,
    /// Ingest counters accumulated by this run (documents, nodes, batches,
    /// errors, per-stage wall time).
    pub ingest: IngestStats,
    /// WAL commits/fsyncs issued by this run.
    pub wal: WalStats,
    /// End-to-end wall time, including the final durability sync.
    pub elapsed: Duration,
}

impl PipelineStats {
    /// Documents committed per second of wall time.
    pub fn docs_per_sec(&self) -> f64 {
        self.ingest.docs_per_sec(self.elapsed)
    }

    /// Nodes committed per second of wall time.
    pub fn nodes_per_sec(&self) -> f64 {
        self.ingest.nodes_per_sec(self.elapsed)
    }

    /// Fsyncs avoided by group commit during this run.
    pub fn fsyncs_saved(&self) -> u64 {
        self.wal.fsyncs_saved()
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// A blocking bounded MPMC queue (Mutex + two Condvars). `push` blocks when
/// full, `pop` blocks when empty; `close` wakes everyone and makes further
/// pushes fail and pops drain-then-`None`. Tracks its depth high-water mark.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until there is room, then enqueues. Returns `false` (dropping
    /// `item`) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.state.lock();
        while st.items.len() >= self.capacity && !st.closed {
            self.not_full.wait(&mut st);
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        let depth = st.items.len();
        st.max_depth = st.max_depth.max(depth);
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Blocks until an item is available or the queue is closed and
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    /// Dequeues without blocking (`None` when currently empty).
    pub fn try_pop(&self) -> Option<T> {
        let item = self.state.lock().items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: pending items still drain, new pushes fail.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been.
    pub fn max_depth(&self) -> usize {
        self.state.lock().max_depth
    }
}

/// Runs `files` through the staged pipeline into `nm`. Returns per-stage
/// stats for the run; per-file failures are counted, not propagated. Ends
/// with a WAL sync so every reported document is durable.
pub fn ingest_files(
    nm: &dyn XdbBackend,
    files: Vec<RawFile>,
    cfg: &PipelineConfig,
) -> Result<PipelineStats> {
    let started = Instant::now();
    let files_in = files.len();
    let metrics_before = nm.ingest_metrics().snapshot();
    let wal_before = nm.wal_stats();

    let input: BoundedQueue<RawFile> = BoundedQueue::new(cfg.queue_capacity);
    let docs: BoundedQueue<Document> = BoundedQueue::new(cfg.queue_capacity);
    let workers = cfg.workers.max(1);

    std::thread::scope(|scope| {
        let worker_handles: Vec<_> = (0..workers)
            .map(|_| {
                let input = &input;
                let docs = &docs;
                scope.spawn(move || {
                    while let Some(file) = input.pop() {
                        let t0 = Instant::now();
                        let doc = upmark(&file.name, &file.content);
                        nm.ingest_metrics().record_upmark(t0.elapsed());
                        if !docs.push(doc) {
                            break;
                        }
                        nm.ingest_metrics().observe_queue_depth(docs.len());
                    }
                })
            })
            .collect();

        let writer = {
            let docs = &docs;
            scope.spawn(move || {
                let mut batch: Vec<Document> = Vec::with_capacity(cfg.batch_docs);
                while let Some(doc) = docs.pop() {
                    batch.push(doc);
                    // Opportunistically fill the batch from whatever has
                    // already queued up (group-commit-style adaptive batch
                    // size: large under load, small when idle).
                    while batch.len() < cfg.batch_docs {
                        match docs.try_pop() {
                            Some(d) => batch.push(d),
                            None => break,
                        }
                    }
                    write_batch(nm, &mut batch);
                }
            })
        };

        for file in files {
            if !input.push(file) {
                break;
            }
        }
        input.close();
        for h in worker_handles {
            let _ = h.join();
        }
        docs.close();
        let _ = writer.join();
    });

    // Every document the stats report as ingested is durable.
    nm.sync_wal()?;

    let wal_after = nm.wal_stats();
    Ok(PipelineStats {
        files_in,
        ingest: nm.ingest_metrics().snapshot().since(&metrics_before),
        wal: WalStats {
            commits: wal_after.commits - wal_before.commits,
            syncs: wal_after.syncs - wal_before.syncs,
        },
        elapsed: started.elapsed(),
    })
}

/// Commits `batch`, falling back to per-document ingestion (error
/// isolation) if the batch transaction fails. Clears `batch`.
fn write_batch(nm: &dyn XdbBackend, batch: &mut Vec<Document>) {
    if nm.ingest_batch(batch).is_err() {
        for doc in batch.iter() {
            if nm.insert_document(doc).is_err() {
                nm.ingest_metrics().record_error();
            }
        }
    }
    batch.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetMark;
    use std::sync::Arc;

    #[test]
    fn pipeline_seals_one_run_per_batch() {
        let dir = std::env::temp_dir().join(format!("netmark-pipe-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Background compaction off so the seal counter maps 1:1 to runs.
        let opts = crate::NetMarkOptions {
            background_compaction: false,
            ..Default::default()
        };
        let nm = NetMark::open_with(&dir, opts).unwrap();
        let files: Vec<RawFile> = (0..20)
            .map(|i| RawFile::new(format!("f{i}.txt"), format!("# Sec{i}\nbody {i}\n")))
            .collect();
        let cfg = PipelineConfig {
            workers: 2,
            batch_docs: 8,
            queue_capacity: 8,
        };
        let stats = ingest_files(&nm, files, &cfg).unwrap();
        assert_eq!(stats.ingest.documents, 20);
        let ix = nm.stats().unwrap().index;
        assert_eq!(
            ix.seals, stats.ingest.batches,
            "one sealed memtable run per committed batch"
        );
        assert!(ix.segments >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queue_bounds_and_drains() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        q.close();
        assert!(!q.push(9), "push after close fails");
        assert_eq!(q.pop(), Some(2), "close still drains");
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn push_blocks_until_pop() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        assert!(q.push(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "second push is blocked on capacity");
        assert_eq!(q.pop(), Some(1));
        assert!(t.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(4));
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        assert!(q.push(p * 1000 + i));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..3u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect, "every item delivered exactly once");
        assert!(q.max_depth() <= 4, "bound respected");
    }
}
