//! Error type for the NETMARK engine.

use netmark_relstore::StoreError;
use netmark_xdb::ParseError;
use netmark_xslt::XsltError;
use std::fmt;

/// Errors surfaced by the NETMARK engine.
#[derive(Debug)]
pub enum NetmarkError {
    /// Underlying storage failure.
    Store(StoreError),
    /// Malformed XDB query string.
    Query(ParseError),
    /// Stylesheet parse/apply failure.
    Xslt(XsltError),
    /// A named stylesheet is not registered.
    NoSuchStylesheet(String),
    /// A document name or id did not resolve.
    NoSuchDocument(String),
    /// Stored data failed to decode.
    Corrupt(String),
}

impl fmt::Display for NetmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetmarkError::Store(e) => write!(f, "storage: {e}"),
            NetmarkError::Query(e) => write!(f, "bad xdb query: {e}"),
            NetmarkError::Xslt(e) => write!(f, "{e}"),
            NetmarkError::NoSuchStylesheet(n) => write!(f, "no stylesheet named '{n}'"),
            NetmarkError::NoSuchDocument(n) => write!(f, "no document '{n}'"),
            NetmarkError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for NetmarkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetmarkError::Store(e) => Some(e),
            NetmarkError::Query(e) => Some(e),
            NetmarkError::Xslt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for NetmarkError {
    fn from(e: StoreError) -> Self {
        NetmarkError::Store(e)
    }
}

impl From<ParseError> for NetmarkError {
    fn from(e: ParseError) -> Self {
        NetmarkError::Query(e)
    }
}

impl From<XsltError> for NetmarkError {
    fn from(e: XsltError) -> Self {
        NetmarkError::Xslt(e)
    }
}

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, NetmarkError>;
