//! The `NetMark` facade: one handle for ingest, query, composition.

use crate::engine::{QueryEngine, QueryEngineOptions};
use crate::error::{NetmarkError, Result};
use crate::metrics::{IngestMetrics, IngestStats, QueryStats, QueryTrace};
use crate::store::{DocId, DocInfo, IngestReport, NodeStore};
use netmark_docformats::upmark;
use netmark_model::{Document, Node};
use netmark_relstore::{Database, DbOptions, MvccStats, WalStats};
use netmark_textindex::{CompactionPolicy, Compactor, IndexStats, InvertedIndex, SegmentedIndex};
use netmark_xdb::{ResultSet, XdbQuery};
use netmark_xslt::Stylesheet;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Tuning knobs for [`NetMark::open_with`].
#[derive(Debug, Clone)]
pub struct NetMarkOptions {
    /// Storage-engine options.
    pub db: DbOptions,
    /// Persist the full-text index on every [`NetMark::flush`].
    pub persist_text_index: bool,
    /// Read-path (query engine) options: worker pool, result cache,
    /// context memo.
    pub query: QueryEngineOptions,
    /// Compaction policy for the segmented text index (run-merge and
    /// tombstone-purge thresholds).
    pub index_compaction: CompactionPolicy,
    /// Run the background index-compaction thread. Disable for
    /// deterministic single-threaded runs (compaction can still be driven
    /// manually via the index handle).
    pub background_compaction: bool,
}

impl Default for NetMarkOptions {
    fn default() -> Self {
        NetMarkOptions {
            db: DbOptions::default(),
            persist_text_index: true,
            query: QueryEngineOptions::default(),
            index_compaction: CompactionPolicy::default(),
            background_compaction: true,
        }
    }
}

/// What a URL query returned: raw results, or a stylesheet-composed
/// document (when the URL named an `xslt=`).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// The raw result set.
    Results(ResultSet),
    /// The composed document produced by the named stylesheet.
    Composed(Node),
}

impl QueryOutput {
    /// The result set, if this output is raw results.
    pub fn results(self) -> Option<ResultSet> {
        match self {
            QueryOutput::Results(r) => Some(r),
            QueryOutput::Composed(_) => None,
        }
    }

    /// The composed node, if a stylesheet ran.
    pub fn composed(self) -> Option<Node> {
        match self {
            QueryOutput::Composed(n) => Some(n),
            QueryOutput::Results(_) => None,
        }
    }
}

/// Aggregate statistics (for benches and ops).
#[derive(Debug, Clone)]
pub struct NetMarkStats {
    /// Stored documents.
    pub documents: usize,
    /// Stored `XML` rows.
    pub nodes: usize,
    /// Distinct indexed terms.
    pub terms: usize,
    /// Compressed text-index bytes.
    pub index_bytes: usize,
    /// Cumulative ingest counters (per-stage wall time, batch sizes,
    /// queue high-water mark) for this instance's lifetime.
    pub ingest: IngestStats,
    /// WAL commit/fsync counters (group-commit instrumentation).
    pub wal: WalStats,
    /// Read-path counters (cache hit rate, per-stage wall times).
    pub query: QueryStats,
    /// Segmented text-index gauges and counters (segments, tombstones,
    /// compaction and incremental-save activity).
    pub index: IndexStats,
    /// Storage-engine MVCC gauges and counters (current version, pinned
    /// read views, copy-on-write overlay size, checkpoint evictions).
    pub mvcc: MvccStats,
}

/// An open NETMARK instance: schema-less store + text index + stylesheets.
pub struct NetMark {
    store: Arc<NodeStore>,
    index: Arc<SegmentedIndex>,
    engine: QueryEngine,
    stylesheets: RwLock<HashMap<String, Stylesheet>>,
    /// Directory holding the segmented index (MANIFEST + `seg-*.seg`).
    index_dir: PathBuf,
    /// Pre-segmentation single-file index path (`NMTXIDX1`) — read for
    /// migration on open, deleted after the first segmented save.
    legacy_index_path: PathBuf,
    /// Background compaction thread; stopped and joined on drop.
    _compactor: Option<Compactor>,
    options: NetMarkOptions,
    metrics: IngestMetrics,
    /// Serializes mutations (ingest, removal) and [`NetMark::flush`] with
    /// each other — NOT with queries — so the store generation, the
    /// in-memory index, and the persisted stamp can never be observed torn
    /// by a flush racing an in-flight ingest. Writers were already
    /// serialized by the store's write lock, so this adds no contention on
    /// the ingest path.
    ingest_lock: Mutex<()>,
}

/// Sidecar path holding the store generation the saved text index
/// reflects.
fn stamp_path(index_path: &Path) -> PathBuf {
    let mut p = index_path.as_os_str().to_owned();
    p.push(".gen");
    PathBuf::from(p)
}

impl NetMark {
    /// Opens (or creates) a NETMARK instance in `dir`.
    pub fn open(dir: &Path) -> Result<NetMark> {
        NetMark::open_with(dir, NetMarkOptions::default())
    }

    /// Opens with explicit options.
    pub fn open_with(dir: &Path, options: NetMarkOptions) -> Result<NetMark> {
        let db = Database::open_with(dir, options.db.clone())?;
        let store = NodeStore::open(db)?;
        let index_dir = dir.join("text.idx.d");
        let legacy_index_path = dir.join("text.idx");
        // Load the persisted index only if its generation stamp matches the
        // store's: every committed ingest batch and removal bumps the META
        // generation, so equality proves the saved index reflects exactly
        // this store state. The stamp file name predates segmentation, so
        // one stamp covers both layouts. Load order: segmented directory,
        // then the legacy single-file format (migrated in memory), then a
        // rebuild from the store (missing/corrupt index, stamp mismatch —
        // e.g. a crash after commit but before flush).
        let stamped_gen: Option<i64> = std::fs::read_to_string(stamp_path(&legacy_index_path))
            .ok()
            .and_then(|s| s.trim().parse().ok());
        let persisted = if stamped_gen == Some(store.generation()) {
            SegmentedIndex::load_with(&index_dir, options.index_compaction.clone()).or_else(|| {
                InvertedIndex::load(&legacy_index_path).map(|ix| {
                    SegmentedIndex::from_legacy_with(ix, options.index_compaction.clone())
                })
            })
        } else {
            None
        };
        let index = match persisted {
            Some(ix) => ix,
            None => {
                let ix = SegmentedIndex::with_policy(options.index_compaction.clone());
                for (id, text) in store.all_text_entries()? {
                    ix.add(id, &text);
                }
                ix.commit();
                ix
            }
        };
        let store = Arc::new(store);
        let index = Arc::new(index);
        let compactor = options
            .background_compaction
            .then(|| index.start_compactor());
        let engine = QueryEngine::new(
            Arc::clone(&store),
            Arc::clone(&index),
            options.query.clone(),
        );
        Ok(NetMark {
            store,
            index,
            engine,
            stylesheets: RwLock::new(HashMap::new()),
            index_dir,
            legacy_index_path,
            _compactor: compactor,
            options,
            metrics: IngestMetrics::default(),
            ingest_lock: Mutex::new(()),
        })
    }

    /// The segmented text index (exposed for benches and stats probes).
    pub fn text_index(&self) -> &Arc<SegmentedIndex> {
        &self.index
    }

    /// The underlying node store (exposed for benches and ablations).
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// Cumulative ingest instrumentation for this instance.
    pub fn metrics(&self) -> &IngestMetrics {
        &self.metrics
    }

    /// WAL commit/fsync counters (group-commit instrumentation).
    pub fn wal_stats(&self) -> WalStats {
        self.store.database().wal_stats()
    }

    /// Ingests an already-upmarked document.
    pub fn insert_document(&self, doc: &Document) -> Result<IngestReport> {
        let _ingest = self.ingest_lock.lock();
        let t0 = Instant::now();
        let report = self.store.ingest(doc)?;
        self.metrics
            .record_store(1, report.node_count as u64, t0.elapsed());
        let t1 = Instant::now();
        for (id, text) in &report.index_entries {
            self.index.add(*id, text);
        }
        // One commit per ingest: the memtable seals into one run segment
        // and a fresh snapshot publishes. Readers never block on this.
        self.index.commit();
        self.engine.invalidate();
        self.metrics.record_index(t1.elapsed());
        Ok(report)
    }

    /// Ingests a batch of upmarked documents in one store transaction —
    /// one WAL commit (and at most one fsync) covers the whole batch, and
    /// the text index seals the whole batch into a single run segment.
    /// Query results are identical to calling
    /// [`NetMark::insert_document`] sequentially.
    pub fn ingest_batch(&self, docs: &[Document]) -> Result<Vec<IngestReport>> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let _ingest = self.ingest_lock.lock();
        let t0 = Instant::now();
        let reports = self.store.ingest_batch(docs)?;
        let nodes: u64 = reports.iter().map(|r| r.node_count as u64).sum();
        self.metrics
            .record_store(reports.len() as u64, nodes, t0.elapsed());
        let t1 = Instant::now();
        for report in &reports {
            for (id, text) in &report.index_entries {
                self.index.add(*id, text);
            }
        }
        self.index.commit();
        self.engine.invalidate();
        self.metrics.record_index(t1.elapsed());
        Ok(reports)
    }

    /// Ingests a raw file: format detection + upmarking + storage — the
    /// paper's drop-a-file-in-the-folder pathway.
    pub fn insert_file(&self, name: &str, content: &str) -> Result<IngestReport> {
        let t0 = Instant::now();
        let doc = upmark(name, content);
        self.metrics.record_upmark(t0.elapsed());
        self.insert_document(&doc)
    }

    /// Deletes a document by id.
    pub fn remove_document(&self, doc_id: DocId) -> Result<()> {
        let _ingest = self.ingest_lock.lock();
        let node_ids = self.store.remove_document(doc_id)?;
        for id in node_ids {
            self.index.remove(id);
        }
        self.index.commit();
        self.engine.invalidate();
        Ok(())
    }

    /// Stored document list.
    pub fn list_documents(&self) -> Result<Vec<DocInfo>> {
        self.store.list_docs()
    }

    /// Document metadata by name.
    pub fn document_by_name(&self, name: &str) -> Result<Option<DocInfo>> {
        self.store.doc_by_name(name)
    }

    /// Reconstructs a full stored document.
    pub fn reconstruct_document(&self, doc_id: DocId) -> Result<Document> {
        self.store.reconstruct_document(doc_id)
    }

    /// Runs a parsed XDB query through the engine (cached, parallel).
    pub fn query(&self, q: &XdbQuery) -> Result<ResultSet> {
        self.engine.execute(q)
    }

    /// True when at least one context row carries exactly this label.
    /// This is the coordinator-side probe behind sharded context queries:
    /// the exact→phrase fallback in `Context=` execution is a global
    /// decision, so a sharded store asks every shard this question first
    /// and pins the outcome into `XdbQuery::exact_contexts`.
    pub fn has_exact_context(&self, label: &str) -> Result<bool> {
        Ok(!self.store.contexts_labeled(label)?.is_empty())
    }

    /// Runs a parsed XDB query and returns the per-stage trace.
    pub fn query_traced(&self, q: &XdbQuery) -> Result<(ResultSet, QueryTrace)> {
        self.engine.execute_traced(q)
    }

    /// The long-lived query engine (exposed for benches, stats, and
    /// uncached baseline execution).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Cumulative read-path counters for this instance.
    pub fn query_stats(&self) -> QueryStats {
        self.engine.stats()
    }

    /// Runs a parsed XDB query and composes the result when the query
    /// names an `xslt=` stylesheet. One code path for every server: the
    /// WebDAV handler and the federation local fall-through both land
    /// here.
    pub fn run(&self, q: &XdbQuery) -> Result<QueryOutput> {
        let results = self.query(q)?;
        match &q.xslt {
            None => Ok(QueryOutput::Results(results)),
            Some(name) => Ok(QueryOutput::Composed(self.compose(&results, name)?)),
        }
    }

    /// Runs an XDB URL — "simple HTTP requests … an extremely simple yet
    /// powerful mechanism" (paper §2.1.2). When the URL names `xslt=`, the
    /// registered stylesheet composes the result.
    pub fn query_url(&self, url: &str) -> Result<QueryOutput> {
        let q = XdbQuery::from_url(url)?;
        self.run(&q)
    }

    /// Evaluates an XPath-lite expression over one stored document — the
    /// paper's "or even full-fledged XML querying, over any information
    /// repository" capability. Returns the matched subtrees (cloned).
    pub fn select_xpath(&self, doc_name: &str, path: &str) -> Result<Vec<Node>> {
        let info = self
            .document_by_name(doc_name)?
            .ok_or_else(|| NetmarkError::NoSuchDocument(doc_name.to_string()))?;
        let doc = self.reconstruct_document(info.doc_id)?;
        let value = netmark_xslt::select(path, &doc.root)
            .map_err(|e| NetmarkError::Xslt(netmark_xslt::XsltError::BadExpr(e)))?;
        Ok(match value {
            netmark_xslt::XPathValue::Nodes(ns) => ns.into_iter().cloned().collect(),
            netmark_xslt::XPathValue::Strings(ss) => {
                ss.into_iter().map(|s| Node::text(&s)).collect()
            }
        })
    }

    /// Registers (or replaces) a named stylesheet.
    pub fn register_stylesheet(&self, name: &str, source: &str) -> Result<()> {
        let ss = Stylesheet::parse(source)?;
        self.stylesheets.write().insert(name.to_string(), ss);
        Ok(())
    }

    /// Names of registered stylesheets.
    pub fn stylesheet_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.stylesheets.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Composes `results` with the named stylesheet (Fig 7's search → XSLT
    /// transformation pipeline).
    pub fn compose(&self, results: &ResultSet, stylesheet: &str) -> Result<Node> {
        let guard = self.stylesheets.read();
        let ss = guard
            .get(stylesheet)
            .ok_or_else(|| NetmarkError::NoSuchStylesheet(stylesheet.to_string()))?;
        Ok(ss.apply(&results.to_node())?)
    }

    /// Persists the text index (with its generation stamp) and checkpoints
    /// the store. The save is incremental: only segments sealed since the
    /// last flush are written; segments already on disk are untouched.
    pub fn flush(&self) -> Result<()> {
        // Excluding in-flight ingests guarantees the stamped generation
        // matches the saved index contents exactly.
        let _ingest = self.ingest_lock.lock();
        if self.options.persist_text_index {
            self.index
                .save(&self.index_dir)
                .map_err(netmark_relstore::StoreError::Io)?;
            std::fs::write(
                stamp_path(&self.legacy_index_path),
                self.store.generation().to_string(),
            )
            .map_err(netmark_relstore::StoreError::Io)?;
            // The segmented directory supersedes the single-file format;
            // drop the stale copy once the new layout is durable.
            let _ = std::fs::remove_file(&self.legacy_index_path);
        }
        self.store.database().checkpoint()?;
        Ok(())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> Result<NetMarkStats> {
        let ix = self.index.stats();
        Ok(NetMarkStats {
            documents: self.store.list_docs()?.len(),
            nodes: self.store.node_count()?,
            terms: ix.terms as usize,
            index_bytes: ix.bytes as usize,
            ingest: self.metrics.snapshot(),
            wal: self.wal_stats(),
            query: self.engine.stats(),
            index: ix,
            mvcc: self.store.database().mvcc_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (NetMark, PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-nm-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = NetMark::open(&dir).unwrap();
        (nm, dir)
    }

    fn load_samples(nm: &NetMark) {
        nm.insert_file(
            "plan-a.wdoc",
            "<<Title>> Plan A\n<<Heading1>> Budget\n<<Normal>> two million dollars\n<<Heading1>> Technology Gap\n<<Normal>> the gap is shrinking\n",
        )
        .unwrap();
        nm.insert_file(
            "plan-b.txt",
            "# Budget\none million dollars\n# Technology Gap\nthe gap is growing\n",
        )
        .unwrap();
        nm.insert_file(
            "ll-0424.html",
            "<html><body><h1>Summary</h1><p>The shuttle engine faulted.</p></body></html>",
        )
        .unwrap();
    }

    #[test]
    fn context_search_returns_sections_across_documents() {
        let (nm, dir) = setup("ctx");
        load_samples(&nm);
        let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.len(), 2);
        let texts: Vec<String> = rs.hits.iter().map(|h| h.content_text()).collect();
        assert!(texts.iter().any(|t| t.contains("two million")));
        assert!(texts.iter().any(|t| t.contains("one million")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_search_paper_example() {
        let (nm, dir) = setup("content");
        load_samples(&nm);
        // Content=Shuttle returns documents containing 'Shuttle' anywhere.
        let rs = nm.query(&XdbQuery::content("Shuttle")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "ll-0424.html");
        assert_eq!(rs.hits[0].context, "Summary");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn combined_context_content_paper_example() {
        let (nm, dir) = setup("combined");
        load_samples(&nm);
        // Context=Technology Gap & Content=Shrinking: only plan-a matches.
        let rs = nm
            .query(&XdbQuery::context_content("Technology Gap", "Shrinking"))
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "plan-a.wdoc");
        assert!(rs.hits[0].content_text().contains("shrinking"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn url_query_with_xslt_composition() {
        let (nm, dir) = setup("url");
        load_samples(&nm);
        nm.register_stylesheet(
            "report",
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <report>
                     <xsl:for-each select="hit">
                       <section doc="{@doc}"><xsl:value-of select="Content"/></section>
                     </xsl:for-each>
                   </report>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = nm
            .query_url("Context=Budget&xslt=report")
            .unwrap()
            .composed()
            .unwrap();
        assert_eq!(out.name, "report");
        assert_eq!(out.find_all("section").len(), 2);
        // Raw results when no stylesheet is named.
        let raw = nm.query_url("Context=Budget").unwrap().results().unwrap();
        assert_eq!(raw.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_stylesheet_errors() {
        let (nm, dir) = setup("noss");
        load_samples(&nm);
        assert!(matches!(
            nm.query_url("Context=Budget&xslt=missing"),
            Err(NetmarkError::NoSuchStylesheet(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_document_hides_hits() {
        let (nm, dir) = setup("rm");
        load_samples(&nm);
        let info = nm.document_by_name("plan-a.wdoc").unwrap().unwrap();
        nm.remove_document(info.doc_id).unwrap();
        let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(nm.query(&XdbQuery::content("shrinking")).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_and_reopen_with_persisted_index() {
        let dir = std::env::temp_dir().join(format!("netmark-nm-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let nm = NetMark::open(&dir).unwrap();
            load_samples(&nm);
            nm.flush().unwrap();
        }
        let nm = NetMark::open(&dir).unwrap();
        let rs = nm.query(&XdbQuery::content("shuttle")).unwrap();
        assert_eq!(rs.len(), 1);
        // Segmented index directory exists on disk (manifest + segments).
        assert!(dir.join("text.idx.d").join("MANIFEST").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_without_index_file_rebuilds() {
        let dir = std::env::temp_dir().join(format!("netmark-nm-rebuild-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let nm = NetMark::open(&dir).unwrap();
            load_samples(&nm);
            nm.flush().unwrap();
        }
        std::fs::remove_dir_all(dir.join("text.idx.d")).unwrap();
        let nm = NetMark::open(&dir).unwrap();
        assert_eq!(nm.query(&XdbQuery::content("shuttle")).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_single_file_index_migrates_on_open() {
        let dir = std::env::temp_dir().join(format!("netmark-nm-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let nm = NetMark::open(&dir).unwrap();
            load_samples(&nm);
            // Simulate a pre-segmentation install: write the NMTXIDX1
            // single file + stamp, with no segmented directory.
            let mut legacy = netmark_textindex::InvertedIndex::new();
            for (id, text) in nm.store().all_text_entries().unwrap() {
                legacy.add(id, &text);
            }
            legacy.save(&dir.join("text.idx")).unwrap();
            std::fs::write(
                dir.join("text.idx.gen"),
                nm.store().generation().to_string(),
            )
            .unwrap();
        }
        assert!(!dir.join("text.idx.d").exists());
        let nm = NetMark::open(&dir).unwrap();
        assert_eq!(nm.query(&XdbQuery::content("shuttle")).unwrap().len(), 1);
        assert_eq!(nm.query(&XdbQuery::context("Budget")).unwrap().len(), 2);
        // The next flush moves the on-disk layout over to segments and
        // retires the single file.
        nm.flush().unwrap();
        assert!(dir.join("text.idx.d").join("MANIFEST").exists());
        assert!(!dir.join("text.idx").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_is_incremental_per_segment() {
        let dir = std::env::temp_dir().join(format!("netmark-nm-incr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Background compaction off so segment counts are deterministic.
        let opts = NetMarkOptions {
            background_compaction: false,
            ..NetMarkOptions::default()
        };
        let nm = NetMark::open_with(&dir, opts).unwrap();
        load_samples(&nm);
        nm.flush().unwrap();
        let s1 = nm.stats().unwrap().index;
        assert_eq!(s1.segments_written, 3, "one run per ingest flushed");
        // A flush with nothing new sealed writes no segment files.
        nm.flush().unwrap();
        let s2 = nm.stats().unwrap().index;
        assert_eq!(s2.segments_written, s1.segments_written);
        // One more ingest → exactly one additional run is flushed.
        nm.insert_file("late.txt", "# Apollo\nsaturn rocket notes\n")
            .unwrap();
        nm.flush().unwrap();
        let s3 = nm.stats().unwrap().index;
        assert_eq!(
            s3.segments_written,
            s2.segments_written + 1,
            "flush cost tracks newly sealed segments"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_persisted_index_is_rebuilt_on_open() {
        let dir = std::env::temp_dir().join(format!("netmark-nm-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let nm = NetMark::open(&dir).unwrap();
            load_samples(&nm);
            nm.flush().unwrap();
        }
        {
            // Mutate the store without flushing: the saved index file is
            // now stale (its stamp names an older generation).
            let nm = NetMark::open(&dir).unwrap();
            nm.insert_file("late.txt", "# Apollo\nsaturn rocket notes\n")
                .unwrap();
            let info = nm.document_by_name("ll-0424.html").unwrap().unwrap();
            nm.remove_document(info.doc_id).unwrap();
        }
        let nm = NetMark::open(&dir).unwrap();
        assert_eq!(
            nm.query(&XdbQuery::content("saturn")).unwrap().len(),
            1,
            "content ingested after the flush is searchable"
        );
        assert_eq!(
            nm.query(&XdbQuery::content("shuttle")).unwrap().len(),
            0,
            "content removed after the flush is gone"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_ingest_via_facade_and_stats() {
        let (nm, dir) = setup("batchfacade");
        let docs = vec![
            netmark_docformats::upmark("a.txt", "# Budget\ntwo million\n"),
            netmark_docformats::upmark("b.txt", "# Schedule\nthree years\n"),
        ];
        let wal0 = nm.wal_stats();
        let reports = nm.ingest_batch(&docs).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(nm.query(&XdbQuery::context("Budget")).unwrap().len(), 1);
        assert_eq!(nm.query(&XdbQuery::context("Schedule")).unwrap().len(), 1);
        let st = nm.stats().unwrap();
        assert_eq!(st.ingest.documents, 2);
        assert_eq!(st.ingest.batches, 1, "one transaction for the batch");
        assert!(st.ingest.nodes > 0);
        assert!(st.ingest.store_time > std::time::Duration::ZERO);
        assert_eq!(
            st.wal.commits - wal0.commits,
            1,
            "one WAL commit for the batch"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn doc_filter_and_limit() {
        let (nm, dir) = setup("filter");
        load_samples(&nm);
        let mut q = XdbQuery::context("Budget");
        q.doc = Some("plan-b.txt".to_string());
        let rs = nm.query(&q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "plan-b.txt");

        let q = XdbQuery::context("Budget").with_limit(1);
        let rs = nm.query(&q).unwrap();
        assert_eq!(rs.len(), 1);
        assert!(rs.truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unconstrained_query_lists_all_sections() {
        let (nm, dir) = setup("all");
        load_samples(&nm);
        let rs = nm.query(&XdbQuery::default()).unwrap();
        assert!(
            rs.len() >= 5,
            "every section of every doc, got {}",
            rs.len()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_reflect_content() {
        let (nm, dir) = setup("stats");
        load_samples(&nm);
        let st = nm.stats().unwrap();
        assert_eq!(st.documents, 3);
        assert!(st.nodes > 20);
        assert!(st.terms > 10);
        assert!(st.index_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn phrase_match_mode() {
        let (nm, dir) = setup("phrase");
        load_samples(&nm);
        let rs = nm
            .query(&XdbQuery::content("gap is shrinking").with_phrase_match())
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "plan-a.wdoc");
        // Keywords mode matches both plans ("gap is" + either verb).
        let rs = nm.query(&XdbQuery::content("the gap is")).unwrap();
        assert_eq!(rs.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod xpath_tests {
    use super::*;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (NetMark, PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-xp-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (NetMark::open(&dir).unwrap(), dir)
    }

    #[test]
    fn xpath_over_stored_document() {
        let (nm, dir) = setup("sel");
        nm.insert_file(
            "sheet.csv",
            "Task,Center,Amount\nT-1,ames,100\nT-2,johnson,200\n",
        )
        .unwrap();
        // Structured query over a spreadsheet, no schema declared anywhere.
        let rows = nm.select_xpath("sheet.csv", "//row").unwrap();
        assert_eq!(rows.len(), 2);
        let amounts = nm
            .select_xpath("sheet.csv", "//row[Center='johnson']/Amount")
            .unwrap();
        assert_eq!(amounts.len(), 1);
        assert_eq!(amounts[0].text_content(), "200");
        // Attribute steps return text nodes.
        let names = nm.select_xpath("sheet.csv", "//table/@sheet").unwrap();
        assert_eq!(names[0].text_content(), "sheet");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn xpath_errors() {
        let (nm, dir) = setup("err");
        nm.insert_file("a.txt", "# S\nx\n").unwrap();
        assert!(matches!(
            nm.select_xpath("missing.txt", "//p"),
            Err(NetmarkError::NoSuchDocument(_))
        ));
        assert!(nm.select_xpath("a.txt", "a[").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod union_context_tests {
    use super::*;

    #[test]
    fn union_context_labels() {
        let dir = std::env::temp_dir().join(format!("netmark-union-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = NetMark::open(&dir).unwrap();
        // The §4 example: one source says "Budget", another "Cost Details".
        nm.insert_file("a.txt", "# Budget\ntwo million\n").unwrap();
        nm.insert_file("b.txt", "# Cost Details\nitemized spend\n")
            .unwrap();
        let rs = nm.query(&XdbQuery::context("Budget|Cost Details")).unwrap();
        assert_eq!(rs.len(), 2);
        let labels: Vec<&str> = rs.hits.iter().map(|h| h.context.as_str()).collect();
        assert!(labels.contains(&"Budget"));
        assert!(labels.contains(&"Cost Details"));
        // Union composes with content filtering.
        let rs = nm
            .query(&XdbQuery::context_content(
                "Budget|Cost Details",
                "itemized",
            ))
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].context, "Cost Details");
        // Stray separators are harmless.
        let rs = nm.query(&XdbQuery::context("|Budget|")).unwrap();
        assert_eq!(rs.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod fallback_tests {
    use super::*;

    #[test]
    fn context_label_phrase_fallback() {
        // No heading is exactly "Budget", but one contains the phrase; the
        // searcher falls back to a phrase match over indexed labels.
        let dir = std::env::temp_dir().join(format!("netmark-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = NetMark::open(&dir).unwrap();
        nm.insert_file("a.txt", "# Budget Overview FY05\nthe money\n")
            .unwrap();
        nm.insert_file("b.txt", "# Schedule\nthe dates\n").unwrap();
        let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].context, "Budget Overview FY05");
        // Exact matches still win over the fallback when both exist.
        nm.insert_file("c.txt", "# Budget\nexact money\n").unwrap();
        let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.len(), 1, "exact label match suppresses the fallback");
        assert_eq!(rs.hits[0].doc, "c.txt");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_hits_in_headings_count() {
        // Content=X matches terms appearing only in a heading, because
        // context labels are indexed too.
        let dir = std::env::temp_dir().join(format!("netmark-fb2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = NetMark::open(&dir).unwrap();
        nm.insert_file("a.txt", "# Shuttle Readiness\nall systems go\n")
            .unwrap();
        let rs = nm.query(&XdbQuery::content("shuttle")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].context, "Shuttle Readiness");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
