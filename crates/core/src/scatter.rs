//! The shared bounded scatter-gather executor.
//!
//! The federation `Router` (PR 2/PR 4) and the shard-per-core store run
//! the same execution shape: fan a query out over N independent units of
//! work through a bounded worker pool, collect the answers into
//! index-tagged slots, and reassemble them in declaration order. This
//! module is that shape, extracted so local shards and remote sources are
//! one code path with two transports — the paper's "thin router" tenet
//! (§2.1.5) applied inward.
//!
//! The pool is bounded: at most `max_workers` scoped threads pull item
//! indices from a shared counter, so scattering over hundreds of items
//! costs a fixed number of threads, not one per item. With one item (or a
//! cap of one) the scatter degenerates to a plain serial loop on the
//! caller's thread — no threads spawned, no locks taken.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(i, &items[i])` for every item, at most `max_workers`
/// concurrently, and returns the results in item order.
///
/// `f` runs on scoped worker threads (or the caller's thread in the serial
/// degenerate case), so it must be `Sync` and may borrow from the caller's
/// stack. A panicking `f` propagates: the scope unwinds to the caller.
pub fn scatter<T, R, F>(items: &[T], max_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = max_workers.max(1).min(n);
    if n <= 1 || workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                collected
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((i, r));
            });
        }
    });
    let mut slots = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    slots.sort_unstable_by_key(|(i, _)| *i);
    slots.into_iter().map(|(_, r)| r).collect()
}

/// The shared ranked-merge policy for scatter-gather answers: sorts
/// `(ordinal, hit)` pairs by score descending, breaking ties on the
/// caller-supplied ordinal ascending — the global ingest sequence for the
/// sharded store, the databank registration order for the federation
/// router. The sort is stable, so pairs equal on both keys keep their
/// concatenation order. A hit without a score (an unranked source's answer
/// that was not augmented) sorts as 0.0, i.e. after every scored hit.
///
/// Both coordinators sharing this one function is what makes a ranked
/// 4-shard answer and a ranked federated answer order their hits by the
/// same rule — and what the mixed-capability merge tests pin.
pub fn merge_scored(keyed: &mut [(u64, netmark_xdb::Hit)]) {
    keyed.sort_by(|(oa, a), (ob, b)| {
        let sa = a.score.unwrap_or(0.0);
        let sb = b.score.unwrap_or(0.0);
        sb.partial_cmp(&sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(oa.cmp(ob))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = scatter(&items, 4, |i, &x| {
            // Stagger so completion order differs from submission order.
            std::thread::sleep(Duration::from_micros(((64 - i) % 7) as u64 * 50));
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn concurrency_is_bounded() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..32).collect();
        scatter(&items, 3, |_, _| {
            let cur = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(cur, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn serial_degenerate_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let threads: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items = vec![1, 2, 3];
        let out = scatter(&items, 1, |_, &x| {
            threads.lock().unwrap().insert(std::thread::current().id());
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
        let seen = threads.into_inner().unwrap();
        assert_eq!(seen.len(), 1);
        assert!(seen.contains(&caller));
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u8> = Vec::new();
        assert!(scatter(&none, 8, |_, &x| x).is_empty());
        assert_eq!(scatter(&[7u8], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn merge_scored_orders_by_score_then_ordinal() {
        let hit = |doc: &str, score: Option<f64>| netmark_xdb::Hit {
            source: String::new(),
            doc: doc.to_string(),
            context: String::new(),
            content: netmark_model::Node::element("Content"),
            context_node: 0,
            score,
        };
        let mut keyed = vec![
            (3, hit("unscored", None)),
            (2, hit("low", Some(0.5))),
            (9, hit("tied-late", Some(2.0))),
            (1, hit("tied-early", Some(2.0))),
            (5, hit("top", Some(7.25))),
            (4, hit("zero", Some(0.0))),
        ];
        merge_scored(&mut keyed);
        let docs: Vec<&str> = keyed.iter().map(|(_, h)| h.doc.as_str()).collect();
        // Score descending; the 2.0 tie breaks on ordinal; None and 0.0
        // are the same rank and fall back to ordinal order.
        assert_eq!(
            docs,
            vec!["top", "tied-early", "tied-late", "low", "unscored", "zero"]
        );
    }
}
