//! [`XdbBackend`]: the store contract behind every server and tool.
//!
//! The WebDAV server, the federation server's local arm, the drop-folder
//! daemon, and the CLI all speak to "a store" through this trait, so a
//! single [`NetMark`] instance and an N-way sharded store (`netmark-shard`)
//! are interchangeable deployments: same routes, same ingest pipeline,
//! same stats document — the only difference is what `stats_children`
//! chooses to render.
//!
//! Document identity at this boundary is the *name*, not the row id:
//! `DocId`s are local to one store (and, under sharding, to one shard), so
//! the trait's lookup/removal surface is name-keyed. `DocInfo.doc_id`
//! remains visible for diagnostics but is only meaningful store-locally.

use crate::error::Result;
use crate::metrics::{IngestMetrics, QueryStats};
use crate::netmark::{NetMark, QueryOutput};
use crate::store::{DocInfo, IngestReport};
use netmark_docformats::upmark;
use netmark_model::{Document, Node};
use netmark_relstore::WalStats;
use netmark_xdb::{Capabilities, XdbQuery};

/// A queryable, ingestable XDB store. See the module docs.
pub trait XdbBackend: Send + Sync {
    /// What this backend evaluates natively — served verbatim at
    /// `GET /xdb/capabilities` (wire v2 negotiation, paper §2.1.5). Local
    /// stores are full peers, ranked search included; adapters fronting
    /// lesser remotes override this with what the remote advertised.
    fn capabilities(&self) -> Capabilities {
        Capabilities::FULL
    }

    /// Runs a parsed XDB query, composing with the named stylesheet when
    /// the query carries `xslt=`.
    fn run(&self, q: &XdbQuery) -> Result<QueryOutput>;

    /// Ingests one upmarked document.
    fn insert_document(&self, doc: &Document) -> Result<IngestReport>;

    /// Ingests a batch of upmarked documents. Results are identical to
    /// inserting them sequentially in order.
    fn ingest_batch(&self, docs: &[Document]) -> Result<Vec<IngestReport>>;

    /// Upmarks and ingests a raw file (the drop-a-file pathway).
    fn insert_file(&self, name: &str, content: &str) -> Result<IngestReport> {
        self.insert_document(&upmark(name, content))
    }

    /// Stored document list, in ingest order.
    fn list_documents(&self) -> Result<Vec<DocInfo>>;

    /// Document metadata by name.
    fn document_by_name(&self, name: &str) -> Result<Option<DocInfo>>;

    /// Reconstructs a stored document by name (`None` if absent).
    fn reconstruct_named(&self, name: &str) -> Result<Option<Document>>;

    /// Removes a document by name. Returns `false` if no such document.
    fn remove_named(&self, name: &str) -> Result<bool>;

    /// Registers (or replaces) a named stylesheet for `xslt=` composition.
    fn register_stylesheet(&self, name: &str, source: &str) -> Result<()>;

    /// Cumulative read-path counters (aggregated across shards when the
    /// backend is sharded — see `QueryStats::merge` for the rules).
    fn query_stats(&self) -> QueryStats;

    /// The child elements of the `GET /xdb/stats` document: `<query/>`,
    /// `<index/>`, `<mvcc/>`, and — for sharded backends — `<shards/>`.
    fn stats_children(&self) -> Vec<Node>;

    /// Cumulative ingest instrumentation (upmark timings, batch sizes,
    /// queue depths) shared by the pipeline and the HTTP PUT path.
    fn ingest_metrics(&self) -> &IngestMetrics;

    /// WAL commit/fsync counters (summed across shards when sharded).
    fn wal_stats(&self) -> WalStats;

    /// Forces any buffered WAL bytes to disk.
    fn sync_wal(&self) -> Result<()>;

    /// Persists indexes and checkpoints the store(s).
    fn flush(&self) -> Result<()>;
}

impl XdbBackend for NetMark {
    fn run(&self, q: &XdbQuery) -> Result<QueryOutput> {
        NetMark::run(self, q)
    }

    fn insert_document(&self, doc: &Document) -> Result<IngestReport> {
        NetMark::insert_document(self, doc)
    }

    fn ingest_batch(&self, docs: &[Document]) -> Result<Vec<IngestReport>> {
        NetMark::ingest_batch(self, docs)
    }

    fn insert_file(&self, name: &str, content: &str) -> Result<IngestReport> {
        NetMark::insert_file(self, name, content)
    }

    fn list_documents(&self) -> Result<Vec<DocInfo>> {
        NetMark::list_documents(self)
    }

    fn document_by_name(&self, name: &str) -> Result<Option<DocInfo>> {
        NetMark::document_by_name(self, name)
    }

    fn reconstruct_named(&self, name: &str) -> Result<Option<Document>> {
        match NetMark::document_by_name(self, name)? {
            Some(info) => Ok(Some(NetMark::reconstruct_document(self, info.doc_id)?)),
            None => Ok(None),
        }
    }

    fn remove_named(&self, name: &str) -> Result<bool> {
        match NetMark::document_by_name(self, name)? {
            Some(info) => {
                NetMark::remove_document(self, info.doc_id)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn register_stylesheet(&self, name: &str, source: &str) -> Result<()> {
        NetMark::register_stylesheet(self, name, source)
    }

    fn query_stats(&self) -> QueryStats {
        NetMark::query_stats(self)
    }

    fn stats_children(&self) -> Vec<Node> {
        vec![
            self.query_stats().to_node(),
            crate::metrics::index_stats_node(&self.text_index().stats()),
            crate::metrics::mvcc_stats_node(&self.store().database().mvcc_stats()),
        ]
    }

    fn ingest_metrics(&self) -> &IngestMetrics {
        self.metrics()
    }

    fn wal_stats(&self) -> WalStats {
        NetMark::wal_stats(self)
    }

    fn sync_wal(&self) -> Result<()> {
        self.store().database().sync_wal()?;
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        NetMark::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmark_implements_the_backend_contract() {
        let dir = std::env::temp_dir().join(format!("netmark-backend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = NetMark::open(&dir).unwrap();
        let be: &dyn XdbBackend = &nm;
        be.insert_file("a.txt", "# Budget\ntwo million\n").unwrap();
        assert_eq!(be.list_documents().unwrap().len(), 1);
        assert!(be.document_by_name("a.txt").unwrap().is_some());
        let doc = be.reconstruct_named("a.txt").unwrap().unwrap();
        assert_eq!(doc.name, "a.txt");
        let out = be.run(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(out.results().unwrap().len(), 1);
        let children = be.stats_children();
        let names: Vec<&str> = children.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["query", "index", "mvcc"]);
        assert!(be.remove_named("a.txt").unwrap());
        assert!(!be.remove_named("a.txt").unwrap());
        assert!(be.reconstruct_named("ghost.txt").unwrap().is_none());
        be.flush().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
