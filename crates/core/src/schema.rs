//! The NETMARK generated schema (paper Fig 5).
//!
//! Two tables hold *every* document of *every* type — that is the
//! "schema-less" design: "The NETMARK storage scheme however uses the same
//! relational tables to represent and store any XML document type."
//!
//! `XML` is the node table (one row per tree node, with physical-rowid
//! pointers for traversal); `DOC` is the document table. `META` holds the
//! engine's id counters. Beyond Fig 5 we add `CTXKEY` (the lowercased
//! context label, denormalized for indexed context search) and `CHILDROWID`
//! (first child, so the downward walk is rowid-chasing too).

use netmark_relstore::{ColumnType, RowId, Schema};

/// Name of the node table.
pub const XML_TABLE: &str = "XML";
/// Name of the document table.
pub const DOC_TABLE: &str = "DOC";
/// Name of the counters table.
pub const META_TABLE: &str = "META";

/// Sentinel rowid meaning "no pointer" (kept fixed-size so pointer fix-ups
/// update rows in place and never relocate them).
pub const NONE_ROWID: RowId = RowId {
    page: u32::MAX,
    slot: u16::MAX,
};

/// Column positions in the `XML` table.
pub mod xml {
    /// Node id (unique, monotonically assigned).
    pub const NODEID: usize = 0;
    /// Owning document id.
    pub const DOC_ID: usize = 1;
    /// NETMARK node type id (Fig 5's NODETYPE).
    pub const NODETYPE: usize = 2;
    /// Element name (or `#text`).
    pub const NODENAME: usize = 3;
    /// Character data / denormalized context label.
    pub const NODEDATA: usize = 4;
    /// Lowercased context label ("" for non-contexts).
    pub const CTXKEY: usize = 5;
    /// Physical rowid of the parent.
    pub const PARENTROWID: usize = 6;
    /// Node id of the parent (-1 for the root).
    pub const PARENTNODEID: usize = 7;
    /// Physical rowid of the next sibling.
    pub const SIBLINGID: usize = 8;
    /// Physical rowid of the first child.
    pub const CHILDROWID: usize = 9;
    /// Serialized attributes.
    pub const ATTRS: usize = 10;
    /// Total column count.
    pub const ARITY: usize = 11;
}

/// Column positions in the `META` table.
pub mod meta {
    /// Next node id to assign.
    pub const NEXT_NODEID: usize = 0;
    /// Next document id to assign.
    pub const NEXT_DOCID: usize = 1;
    /// Store generation: bumped by every ingest batch and document
    /// removal. Persisted beside the text index so staleness is an exact
    /// equality check, not a row-count heuristic.
    pub const GENERATION: usize = 2;
    /// Total column count.
    pub const ARITY: usize = 3;
}

/// Column positions in the `DOC` table.
pub mod doc {
    /// Document id.
    pub const DOC_ID: usize = 0;
    /// File name.
    pub const FILE_NAME: usize = 1;
    /// Ingest timestamp (unix seconds).
    pub const FILE_DATE: usize = 2;
    /// Original size in bytes.
    pub const FILE_SIZE: usize = 3;
    /// Source format tag.
    pub const FORMAT: usize = 4;
    /// Node id of the document root.
    pub const ROOT_NODEID: usize = 5;
    /// Total column count.
    pub const ARITY: usize = 6;
}

/// Schema of the `XML` table.
pub fn xml_schema() -> Schema {
    Schema::new(&[
        ("NODEID", ColumnType::Int),
        ("DOC_ID", ColumnType::Int),
        ("NODETYPE", ColumnType::Int),
        ("NODENAME", ColumnType::Text),
        ("NODEDATA", ColumnType::Text),
        ("CTXKEY", ColumnType::Text),
        ("PARENTROWID", ColumnType::Rowid),
        ("PARENTNODEID", ColumnType::Int),
        ("SIBLINGID", ColumnType::Rowid),
        ("CHILDROWID", ColumnType::Rowid),
        ("ATTRS", ColumnType::Text),
    ])
}

/// Schema of the `DOC` table.
pub fn doc_schema() -> Schema {
    Schema::new(&[
        ("DOC_ID", ColumnType::Int),
        ("FILE_NAME", ColumnType::Text),
        ("FILE_DATE", ColumnType::Int),
        ("FILE_SIZE", ColumnType::Int),
        ("FORMAT", ColumnType::Text),
        ("ROOT_NODEID", ColumnType::Int),
    ])
}

/// Schema of the `META` table (single row of counters).
pub fn meta_schema() -> Schema {
    Schema::new(&[
        ("NEXT_NODEID", ColumnType::Int),
        ("NEXT_DOCID", ColumnType::Int),
        ("GENERATION", ColumnType::Int),
    ])
}

/// Attribute list codec: `k1\u{1e}v1\u{1f}k2\u{1e}v2…` (unit/record
/// separators never appear in document text after XML unescaping).
pub fn encode_attrs(attrs: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push('\u{1f}');
        }
        out.push_str(k);
        out.push('\u{1e}');
        out.push_str(v);
    }
    out
}

/// Inverse of [`encode_attrs`].
pub fn decode_attrs(s: &str) -> Vec<(String, String)> {
    if s.is_empty() {
        return Vec::new();
    }
    s.split('\u{1f}')
        .filter_map(|pair| {
            pair.split_once('\u{1e}')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_match_column_constants() {
        let x = xml_schema();
        assert_eq!(x.arity(), xml::ARITY);
        assert_eq!(x.position("NODEID"), Some(xml::NODEID));
        assert_eq!(x.position("CTXKEY"), Some(xml::CTXKEY));
        assert_eq!(x.position("SIBLINGID"), Some(xml::SIBLINGID));
        let d = doc_schema();
        assert_eq!(d.arity(), doc::ARITY);
        assert_eq!(d.position("ROOT_NODEID"), Some(doc::ROOT_NODEID));
    }

    #[test]
    fn attrs_round_trip() {
        let attrs = vec![
            ("level".to_string(), "2".to_string()),
            ("name".to_string(), "has spaces & symbols <>".to_string()),
        ];
        assert_eq!(decode_attrs(&encode_attrs(&attrs)), attrs);
        assert!(decode_attrs("").is_empty());
        assert_eq!(encode_attrs(&[]), "");
    }
}
