//! The NETMARK XML Store: documents flattened into the Fig-5 tables.
//!
//! Ingestion decomposes an upmarked [`Document`] into one `XML`-table row
//! per node, in pre-order (so node ids ascend in document order), wiring
//! `PARENTROWID` / `SIBLINGID` / `CHILDROWID` physical pointers. The
//! pointer columns are written as fixed-size sentinel rowids first and
//! fixed up in place, so rows never relocate and every pointer stays a
//! one-hop chase — the property behind the paper's "very fast traversal
//! between nodes that are related".

use crate::error::{NetmarkError, Result};
use crate::schema::{
    decode_attrs, doc, doc_schema, encode_attrs, meta_schema, xml, xml_schema, DOC_TABLE,
    META_TABLE, NONE_ROWID, XML_TABLE,
};
use netmark_model::{Document, Node, NodeType};
use netmark_relstore::{Database, ReadView, Row, RowId, Table, Txn, Value, ViewTable};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Document identifier.
pub type DocId = i64;
/// Node identifier (ascending in ingest order).
pub type NodeId = u64;

/// One decoded `XML`-table row.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// Node id.
    pub node_id: NodeId,
    /// Owning document.
    pub doc_id: DocId,
    /// NETMARK node type.
    pub ntype: NodeType,
    /// Element name / `#text`.
    pub name: String,
    /// Text data (text nodes) or denormalized context label.
    pub data: String,
    /// Parent pointer.
    pub parent: Option<RowId>,
    /// Parent node id.
    pub parent_node: Option<NodeId>,
    /// Next-sibling pointer.
    pub next_sibling: Option<RowId>,
    /// First-child pointer.
    pub first_child: Option<RowId>,
    /// Attributes.
    pub attrs: Vec<(String, String)>,
}

/// Document metadata from the `DOC` table.
#[derive(Debug, Clone, PartialEq)]
pub struct DocInfo {
    /// Document id.
    pub doc_id: DocId,
    /// File name.
    pub file_name: String,
    /// Ingest timestamp (unix seconds).
    pub file_date: i64,
    /// Original size in bytes.
    pub file_size: i64,
    /// Source format tag.
    pub format: String,
    /// Root node id.
    pub root_node: NodeId,
}

/// What an ingest did — including the `(node id, text)` entries the caller
/// must feed to the full-text index.
#[derive(Debug)]
pub struct IngestReport {
    /// Assigned document id.
    pub doc_id: DocId,
    /// Root node id.
    pub root_node: NodeId,
    /// Number of `XML` rows written.
    pub node_count: usize,
    /// Text-index entries, ascending by node id.
    pub index_entries: Vec<(NodeId, String)>,
}

/// The two-table store plus id counters.
pub struct NodeStore {
    db: Database,
    xml: Table,
    doc: Table,
    meta: Table,
    meta_rowid: RowId,
    next_node: AtomicU64,
    next_doc: AtomicI64,
    generation: AtomicI64,
}

/// One pre-order-flattened node, with tree links as vector indices.
struct Flat<'a> {
    node: &'a Node,
    parent: Option<usize>,
    next_sibling: Option<usize>,
    first_child: Option<usize>,
}

fn flatten<'a>(node: &'a Node, parent: Option<usize>, out: &mut Vec<Flat<'a>>) -> usize {
    let idx = out.len();
    out.push(Flat {
        node,
        parent,
        next_sibling: None,
        first_child: None,
    });
    let mut prev: Option<usize> = None;
    for child in &node.children {
        let cidx = flatten(child, Some(idx), out);
        match prev {
            Some(p) => out[p].next_sibling = Some(cidx),
            None => out[idx].first_child = Some(cidx),
        }
        prev = Some(cidx);
    }
    idx
}

fn opt_rowid(v: &Value) -> Option<RowId> {
    match v.as_rowid() {
        Some(r) if r != NONE_ROWID => Some(r),
        _ => None,
    }
}

fn rowid_value(r: Option<RowId>) -> Value {
    Value::Rowid(r.unwrap_or(NONE_ROWID))
}

fn now_unix() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

impl NodeStore {
    /// Opens (creating tables and indexes if needed) the store inside `db`.
    pub fn open(db: Database) -> Result<NodeStore> {
        if !db.has_table(XML_TABLE) {
            db.create_table(XML_TABLE, xml_schema())?;
            db.create_index(XML_TABLE, "xml_by_nodeid", &["NODEID"], true)?;
            db.create_index(XML_TABLE, "xml_by_doc", &["DOC_ID"], false)?;
            db.create_index(XML_TABLE, "xml_by_ctxkey", &["CTXKEY"], false)?;
            db.create_index(XML_TABLE, "xml_by_parent", &["PARENTNODEID"], false)?;
        }
        if !db.has_table(DOC_TABLE) {
            db.create_table(DOC_TABLE, doc_schema())?;
            db.create_index(DOC_TABLE, "doc_by_id", &["DOC_ID"], true)?;
            db.create_index(DOC_TABLE, "doc_by_name", &["FILE_NAME"], false)?;
        }
        if !db.has_table(META_TABLE) {
            db.create_table(META_TABLE, meta_schema())?;
        }
        let xml_t = db.table(XML_TABLE)?;
        let doc_t = db.table(DOC_TABLE)?;
        let meta_t = db.table(META_TABLE)?;
        let meta_rows = meta_t.scan()?;
        let (meta_rowid, next_node, next_doc, generation) = match meta_rows.first() {
            Some((rid, row)) => (
                *rid,
                row.first().and_then(Value::as_int).unwrap_or(1) as u64,
                row.get(1).and_then(Value::as_int).unwrap_or(1),
                row.get(2).and_then(Value::as_int).unwrap_or(0),
            ),
            None => {
                let rid = meta_t.insert(&vec![Value::Int(1), Value::Int(1), Value::Int(0)])?;
                (rid, 1, 1, 0)
            }
        };
        Ok(NodeStore {
            db,
            xml: xml_t,
            doc: doc_t,
            meta: meta_t,
            meta_rowid,
            next_node: AtomicU64::new(next_node),
            next_doc: AtomicI64::new(next_doc),
            generation: AtomicI64::new(generation),
        })
    }

    /// The underlying database (for checkpoints and stats).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Handle to the `XML` table (used by benches/ablations).
    pub fn xml_table(&self) -> &Table {
        &self.xml
    }

    /// Ingests one upmarked document atomically (a batch of one).
    pub fn ingest(&self, document: &Document) -> Result<IngestReport> {
        let mut reports = self.ingest_batch(std::slice::from_ref(document))?;
        Ok(reports.pop().expect("batch of one yields one report"))
    }

    /// Ingests `documents` in ONE transaction: a single WAL commit (and,
    /// with `sync_commits`, at most one fsync) covers the whole batch, the
    /// ingest timestamp is taken once, and the `META` counter row is
    /// updated once instead of per document. The final state is identical
    /// to ingesting each document sequentially; atomicity widens to the
    /// batch (all documents land or none do).
    pub fn ingest_batch(&self, documents: &[Document]) -> Result<Vec<IngestReport>> {
        if documents.is_empty() {
            return Ok(Vec::new());
        }
        let now = now_unix();
        let mut reports = Vec::with_capacity(documents.len());
        let mut tx = self.db.begin();
        for document in documents {
            reports.push(self.ingest_in_tx(&mut tx, document, now)?);
        }
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        tx.update(
            &self.meta,
            self.meta_rowid,
            &vec![
                Value::Int(self.next_node.load(Ordering::Relaxed) as i64),
                Value::Int(self.next_doc.load(Ordering::Relaxed)),
                Value::Int(generation),
            ],
        )?;
        tx.commit()?;
        Ok(reports)
    }

    /// Writes one document's DOC + XML rows inside `tx`.
    fn ingest_in_tx(
        &self,
        tx: &mut Txn<'_>,
        document: &Document,
        now: i64,
    ) -> Result<IngestReport> {
        let mut flats: Vec<Flat<'_>> = Vec::with_capacity(document.root.size());
        flatten(&document.root, None, &mut flats);

        let n = flats.len();
        let base = self.next_node.fetch_add(n as u64, Ordering::Relaxed);
        let doc_id = self.next_doc.fetch_add(1, Ordering::Relaxed);
        let node_id_of = |idx: usize| base + idx as u64;

        let mut index_entries: Vec<(NodeId, String)> = Vec::new();
        // DOC row first: concurrent readers (single-writer, read-uncommitted
        // visibility) must never find an XML row whose document is missing.
        // Node and doc ids are freshly allocated from monotonic counters, so
        // the unchecked inserts cannot violate the unique id indexes.
        tx.insert_unchecked(
            &self.doc,
            &vec![
                Value::Int(doc_id),
                Value::Text(document.name.clone()),
                Value::Int(now),
                Value::Int(document.source_size as i64),
                Value::Text(document.format.clone()),
                Value::Int(base as i64),
            ],
        )?;
        let mut rowids: Vec<RowId> = Vec::with_capacity(n);
        let mut tokens: Vec<usize> = Vec::with_capacity(n);
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(n);
        for (idx, f) in flats.iter().enumerate() {
            let node = f.node;
            let (data, ctxkey) = match node.ntype {
                NodeType::Text => (node.text.clone(), String::new()),
                NodeType::Context => {
                    let label = node.text_content();
                    let key = label.to_lowercase();
                    (label, key)
                }
                _ => (String::new(), String::new()),
            };
            match node.ntype {
                NodeType::Text if !node.text.trim().is_empty() => {
                    index_entries.push((node_id_of(idx), node.text.clone()));
                }
                NodeType::Context if !data.is_empty() => {
                    index_entries.push((node_id_of(idx), data.clone()));
                }
                _ => {}
            }
            let row = vec![
                Value::Int(node_id_of(idx) as i64),
                Value::Int(doc_id),
                Value::Int(node.ntype.id()),
                Value::Text(node.name.clone()),
                Value::Text(data),
                Value::Text(ctxkey),
                rowid_value(f.parent.map(|p| rowids[p])),
                Value::Int(f.parent.map(|p| node_id_of(p) as i64).unwrap_or(-1)),
                rowid_value(None), // fixed up below
                rowid_value(None), // fixed up below
                Value::Text(encode_attrs(&node.attrs)),
            ];
            let (rid, token) = tx.insert_unchecked_deferred(&self.xml, &row)?;
            rowids.push(rid);
            tokens.push(token);
            rows.push(row);
        }
        // Pointer fix-up: the inserts above deferred their WAL records, so
        // the sibling/child rowids (fixed-width `Value::Rowid`, same-size
        // re-encode) are patched into the placed cells and the queued WAL
        // images in one pass — no second heap update or WAL record per
        // node. `flush_deferred` then logs the final bytes.
        for (idx, f) in flats.iter().enumerate() {
            if f.next_sibling.is_none() && f.first_child.is_none() {
                continue;
            }
            let row = &mut rows[idx];
            row[xml::SIBLINGID] = rowid_value(f.next_sibling.map(|s| rowids[s]));
            row[xml::CHILDROWID] = rowid_value(f.first_child.map(|c| rowids[c]));
            tx.patch_deferred(&self.xml, tokens[idx], row)?;
        }
        tx.flush_deferred()?;
        Ok(IngestReport {
            doc_id,
            root_node: base,
            node_count: n,
            index_entries,
        })
    }

    /// Pins a repeatable-read [`StoreView`] of the store: an MVCC snapshot
    /// that observes exactly the committed state as of this call and never
    /// takes a page latch, no matter how many ingest batches commit
    /// afterwards. Cheap (no I/O beyond catalog metadata); drop to unpin.
    pub fn begin_read(&self) -> Result<StoreView> {
        let view = self.db.begin_read();
        let xml = view.table(XML_TABLE)?;
        let doc = view.table(DOC_TABLE)?;
        // The generation must come from the snapshot, not the live counter:
        // it identifies the committed store state this view observes.
        let generation = view
            .table(META_TABLE)?
            .scan()?
            .first()
            .and_then(|(_, row)| row.get(2).and_then(Value::as_int))
            .unwrap_or(0);
        Ok(StoreView {
            view,
            xml,
            doc,
            generation,
        })
    }

    /// Fetches one node row by physical rowid.
    pub fn node(&self, rid: RowId) -> Result<NodeRow> {
        RowAccess::node(self, rid)
    }

    /// Resolves a node id to its physical row (index lookup).
    pub fn node_by_id(&self, id: NodeId) -> Result<Option<(RowId, NodeRow)>> {
        RowAccess::node_by_id(self, id)
    }

    /// All context-node rows whose (lowercased) label equals `label`.
    pub fn contexts_labeled(&self, label: &str) -> Result<Vec<(RowId, NodeRow)>> {
        RowAccess::contexts_labeled(self, label)
    }

    /// Walks up from `rid` to the governing context: the nearest enclosing
    /// CONTEXT ancestor or preceding-sibling CONTEXT at any ancestor level
    /// (paper §2.1.4 — "traversing up the tree structure via its parent or
    /// sibling node until the first context is found").
    pub fn governing_context(&self, rid: RowId) -> Result<Option<(RowId, NodeRow)>> {
        RowAccess::governing_context(self, rid)
    }

    /// Reconstructs the subtree rooted at `rid` as a [`Node`].
    pub fn reconstruct(&self, rid: RowId) -> Result<Node> {
        RowAccess::reconstruct(self, rid)
    }

    /// Collects the content governed by the context at `ctx_rid`: the
    /// following siblings up to the next CONTEXT, reconstructed and wrapped
    /// in a `<Content>` element ("traversing back down the tree structure
    /// via the sibling node retrieves the corresponding content text").
    pub fn section_content(&self, ctx_rid: RowId) -> Result<Node> {
        RowAccess::section_content(self, ctx_rid)
    }

    /// Document metadata by id.
    pub fn doc_info(&self, id: DocId) -> Result<DocInfo> {
        RowAccess::doc_info(self, id)
    }

    /// Document metadata by file name (first match).
    pub fn doc_by_name(&self, name: &str) -> Result<Option<DocInfo>> {
        RowAccess::doc_by_name(self, name)
    }

    /// Every stored document, by id.
    pub fn list_docs(&self) -> Result<Vec<DocInfo>> {
        RowAccess::list_docs(self)
    }

    /// Rebuilds the full [`Document`] for `doc_id` from the store.
    pub fn reconstruct_document(&self, doc_id: DocId) -> Result<Document> {
        let info = self.doc_info(doc_id)?;
        let (root_rid, _) = self
            .node_by_id(info.root_node)?
            .ok_or_else(|| NetmarkError::Corrupt(format!("missing root node for doc {doc_id}")))?;
        let root = self.reconstruct(root_rid)?;
        Ok(Document::new(&info.file_name, &info.format, root)
            .with_source_size(info.file_size as u64))
    }

    /// Deletes a document and all its nodes. Returns the removed node ids
    /// (for text-index tombstoning).
    pub fn remove_document(&self, doc_id: DocId) -> Result<Vec<NodeId>> {
        let doc_rids = self.doc.index_lookup("doc_by_id", &[Value::Int(doc_id)])?;
        let doc_rid = *doc_rids
            .first()
            .ok_or_else(|| NetmarkError::NoSuchDocument(format!("doc #{doc_id}")))?;
        let node_rids = self.xml.index_lookup("xml_by_doc", &[Value::Int(doc_id)])?;
        let mut node_ids = Vec::with_capacity(node_rids.len());
        let mut tx = self.db.begin();
        for rid in node_rids {
            let row = self.xml.get(rid)?;
            node_ids.push(row[xml::NODEID].as_int().unwrap_or(0) as u64);
            tx.delete(&self.xml, rid)?;
        }
        tx.delete(&self.doc, doc_rid)?;
        // Removal changes indexed content, so it bumps the generation too —
        // otherwise a persisted text index could go stale undetected.
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        tx.update(
            &self.meta,
            self.meta_rowid,
            &vec![
                Value::Int(self.next_node.load(Ordering::Relaxed) as i64),
                Value::Int(self.next_doc.load(Ordering::Relaxed)),
                Value::Int(generation),
            ],
        )?;
        tx.commit()?;
        Ok(node_ids)
    }

    /// The store generation: bumped by every committed ingest batch and
    /// document removal. Persisted in `META`, so it survives reopen and
    /// identifies exactly which store state a saved text index reflects.
    pub fn generation(&self) -> i64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// `(node id, text)` for every indexed-text node in the store,
    /// ascending by node id — used to rebuild the full-text index.
    pub fn all_text_entries(&self) -> Result<Vec<(NodeId, String)>> {
        let mut out = Vec::new();
        for (_, row) in self.xml.scan()? {
            let node = decode_node(&row)?;
            match node.ntype {
                NodeType::Text if !node.data.trim().is_empty() => {
                    out.push((node.node_id, node.data));
                }
                NodeType::Context if !node.data.is_empty() => {
                    out.push((node.node_id, node.data));
                }
                _ => {}
            }
        }
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Number of stored nodes (scans).
    pub fn node_count(&self) -> Result<usize> {
        Ok(self.xml.count()?)
    }

    /// Children of `parent_node` found via the secondary index instead of
    /// rowid chasing — the baseline side of the ROWID-traversal ablation.
    pub fn children_via_index(&self, parent_node: NodeId) -> Result<Vec<(RowId, NodeRow)>> {
        let rids = self
            .xml
            .index_lookup("xml_by_parent", &[Value::Int(parent_node as i64)])?;
        let mut rows: Vec<(RowId, NodeRow)> = rids
            .into_iter()
            .map(|rid| Ok((rid, self.node(rid)?)))
            .collect::<Result<_>>()?;
        rows.sort_by_key(|(_, r)| r.node_id);
        Ok(rows)
    }

    /// Subtree reconstruction via index lookups only (ablation baseline).
    pub fn reconstruct_via_index(&self, node_id: NodeId) -> Result<Node> {
        let (_, row) = self
            .node_by_id(node_id)?
            .ok_or_else(|| NetmarkError::Corrupt(format!("missing node {node_id}")))?;
        let mut node = if row.ntype == NodeType::Text {
            Node::text(&row.data)
        } else {
            Node {
                ntype: row.ntype,
                name: row.name.clone(),
                text: String::new(),
                attrs: row.attrs.clone(),
                children: Vec::new(),
            }
        };
        for (_, child) in self.children_via_index(row.node_id)? {
            node.children
                .push(self.reconstruct_via_index(child.node_id)?);
        }
        Ok(node)
    }
}

fn decode_node(row: &[Value]) -> Result<NodeRow> {
    if row.len() != xml::ARITY {
        return Err(NetmarkError::Corrupt(format!(
            "XML row arity {} (expected {})",
            row.len(),
            xml::ARITY
        )));
    }
    let ntype_id = row[xml::NODETYPE]
        .as_int()
        .ok_or_else(|| NetmarkError::Corrupt("NODETYPE not an int".into()))?;
    Ok(NodeRow {
        node_id: row[xml::NODEID].as_int().unwrap_or(0) as u64,
        doc_id: row[xml::DOC_ID].as_int().unwrap_or(0),
        ntype: NodeType::from_id(ntype_id)
            .ok_or_else(|| NetmarkError::Corrupt(format!("bad NODETYPE {ntype_id}")))?,
        name: row[xml::NODENAME].as_text().unwrap_or("").to_string(),
        data: row[xml::NODEDATA].as_text().unwrap_or("").to_string(),
        parent: opt_rowid(&row[xml::PARENTROWID]),
        parent_node: match row[xml::PARENTNODEID].as_int() {
            Some(v) if v >= 0 => Some(v as u64),
            _ => None,
        },
        next_sibling: opt_rowid(&row[xml::SIBLINGID]),
        first_child: opt_rowid(&row[xml::CHILDROWID]),
        attrs: decode_attrs(row[xml::ATTRS].as_text().unwrap_or("")),
    })
}

/// Row-level access to the `XML` and `DOC` tables, implemented by both
/// [`NodeStore`] (latest-committed reads through the live tables) and
/// [`StoreView`] (reads through one pinned MVCC snapshot). Every tree walk
/// — decode, governing-context climb, subtree reconstruction, section
/// collection — is written once against these primitives, so the two read
/// paths cannot drift apart.
pub(crate) trait RowAccess {
    /// Fetches one raw `XML` row.
    fn xml_get(&self, rid: RowId) -> Result<Row>;
    /// Equality lookup on an `XML`-table index.
    fn xml_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>>;
    /// Fetches one raw `DOC` row.
    fn doc_get(&self, rid: RowId) -> Result<Row>;
    /// Equality lookup on a `DOC`-table index.
    fn doc_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>>;
    /// Full `DOC`-table scan.
    fn doc_scan(&self) -> Result<Vec<(RowId, Row)>>;

    /// Fetches one decoded node row by physical rowid.
    fn node(&self, rid: RowId) -> Result<NodeRow> {
        decode_node(&self.xml_get(rid)?)
    }

    /// Resolves a node id to its physical row (index lookup).
    fn node_by_id(&self, id: NodeId) -> Result<Option<(RowId, NodeRow)>> {
        let rids = self.xml_lookup("xml_by_nodeid", &[Value::Int(id as i64)])?;
        match rids.first() {
            Some(&rid) => Ok(Some((rid, self.node(rid)?))),
            None => Ok(None),
        }
    }

    /// All context-node rows whose (lowercased) label equals `label`.
    fn contexts_labeled(&self, label: &str) -> Result<Vec<(RowId, NodeRow)>> {
        let key = label.to_lowercase();
        let rids = self.xml_lookup("xml_by_ctxkey", &[Value::Text(key)])?;
        let mut out = Vec::with_capacity(rids.len());
        for rid in rids {
            let row = self.node(rid)?;
            if row.ntype == NodeType::Context {
                out.push((rid, row));
            }
        }
        Ok(out)
    }

    /// Walks up from `rid` to the governing context (paper §2.1.4).
    fn governing_context(&self, rid: RowId) -> Result<Option<(RowId, NodeRow)>> {
        let mut cur_rid = rid;
        let mut cur = self.node(rid)?;
        if cur.ntype == NodeType::Context {
            return Ok(Some((cur_rid, cur)));
        }
        loop {
            let Some(parent_rid) = cur.parent else {
                return Ok(None);
            };
            let parent = self.node(parent_rid)?;
            if parent.ntype == NodeType::Context {
                return Ok(Some((parent_rid, parent)));
            }
            // Scan the parent's child chain up to the current node,
            // remembering the last CONTEXT seen.
            let mut last_ctx: Option<(RowId, NodeRow)> = None;
            let mut c = parent.first_child;
            while let Some(crid) = c {
                if crid == cur_rid {
                    break;
                }
                let crow = self.node(crid)?;
                let next = crow.next_sibling;
                if crow.ntype == NodeType::Context {
                    last_ctx = Some((crid, crow));
                }
                c = next;
            }
            if let Some(found) = last_ctx {
                return Ok(Some(found));
            }
            cur_rid = parent_rid;
            cur = parent;
        }
    }

    /// Reconstructs the subtree rooted at `rid` as a [`Node`].
    fn reconstruct(&self, rid: RowId) -> Result<Node> {
        let row = self.node(rid)?;
        self.reconstruct_row(&row)
    }

    /// Reconstructs the subtree below an already-decoded row.
    fn reconstruct_row(&self, row: &NodeRow) -> Result<Node> {
        let mut node = if row.ntype == NodeType::Text {
            Node::text(&row.data)
        } else {
            Node {
                ntype: row.ntype,
                name: row.name.clone(),
                text: String::new(),
                attrs: row.attrs.clone(),
                children: Vec::new(),
            }
        };
        let mut c = row.first_child;
        while let Some(crid) = c {
            let crow = self.node(crid)?;
            c = crow.next_sibling;
            node.children.push(self.reconstruct_row(&crow)?);
        }
        Ok(node)
    }

    /// Collects the content governed by the context at `ctx_rid` into a
    /// `<Content>` element.
    fn section_content(&self, ctx_rid: RowId) -> Result<Node> {
        let ctx = self.node(ctx_rid)?;
        let mut parts: Vec<Node> = Vec::new();
        let mut c = ctx.next_sibling;
        while let Some(rid) = c {
            let row = self.node(rid)?;
            if row.ntype == NodeType::Context {
                break;
            }
            c = row.next_sibling;
            parts.push(self.reconstruct_row(&row)?);
        }
        if parts.len() == 1 && parts[0].name == "Content" {
            return Ok(parts.into_iter().next().expect("len checked"));
        }
        let mut content = Node::element("Content");
        content.children = parts;
        Ok(content)
    }

    /// Document metadata by id.
    fn doc_info(&self, id: DocId) -> Result<DocInfo> {
        let rids = self.doc_lookup("doc_by_id", &[Value::Int(id)])?;
        let rid = rids
            .first()
            .ok_or_else(|| NetmarkError::NoSuchDocument(format!("doc #{id}")))?;
        let row = self.doc_get(*rid)?;
        decode_doc(&row)
    }

    /// Document metadata by file name (first match).
    fn doc_by_name(&self, name: &str) -> Result<Option<DocInfo>> {
        let rids = self.doc_lookup("doc_by_name", &[Value::Text(name.to_string())])?;
        match rids.first() {
            Some(rid) => Ok(Some(decode_doc(&self.doc_get(*rid)?)?)),
            None => Ok(None),
        }
    }

    /// Every stored document, by id.
    fn list_docs(&self) -> Result<Vec<DocInfo>> {
        let mut docs: Vec<DocInfo> = self
            .doc_scan()?
            .iter()
            .map(|(_, row)| decode_doc(row))
            .collect::<Result<_>>()?;
        docs.sort_by_key(|d| d.doc_id);
        Ok(docs)
    }
}

impl RowAccess for NodeStore {
    fn xml_get(&self, rid: RowId) -> Result<Row> {
        Ok(self.xml.get(rid)?)
    }

    fn xml_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>> {
        Ok(self.xml.index_lookup(index, key)?)
    }

    fn doc_get(&self, rid: RowId) -> Result<Row> {
        Ok(self.doc.get(rid)?)
    }

    fn doc_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>> {
        Ok(self.doc.index_lookup(index, key)?)
    }

    fn doc_scan(&self) -> Result<Vec<(RowId, Row)>> {
        Ok(self.doc.scan()?)
    }
}

/// A pinned, repeatable-read view of the node store.
///
/// Opened by [`NodeStore::begin_read`], a `StoreView` wraps one MVCC
/// [`ReadView`] of the underlying database: every read — node fetch, index
/// lookup, tree walk — observes exactly the committed state as of the pin,
/// lock-free, regardless of concurrent ingest batches. Clones share the
/// same pin (dropping the last clone unpins). A view held across
/// checkpoints for longer than the database's `max_view_lag` may be
/// evicted, after which its reads fail with a storage error.
#[derive(Clone)]
pub struct StoreView {
    view: ReadView,
    xml: ViewTable,
    doc: ViewTable,
    generation: i64,
}

impl StoreView {
    /// The store generation this view observes (bumped by every committed
    /// ingest batch and removal). This is the stamp that decides result-
    /// cache and context-memo validity for queries running over this view.
    pub fn generation(&self) -> i64 {
        self.generation
    }

    /// The storage-level commit version (LSN) this view is pinned at.
    pub fn version(&self) -> u64 {
        self.view.version()
    }

    /// True once a checkpoint evicted this view for exceeding the
    /// database's `max_view_lag`.
    pub fn is_evicted(&self) -> bool {
        self.view.is_evicted()
    }

    /// Fetches one node row by physical rowid.
    pub fn node(&self, rid: RowId) -> Result<NodeRow> {
        RowAccess::node(self, rid)
    }

    /// Resolves a node id to its physical row (index lookup).
    pub fn node_by_id(&self, id: NodeId) -> Result<Option<(RowId, NodeRow)>> {
        RowAccess::node_by_id(self, id)
    }

    /// All context-node rows whose (lowercased) label equals `label`.
    pub fn contexts_labeled(&self, label: &str) -> Result<Vec<(RowId, NodeRow)>> {
        RowAccess::contexts_labeled(self, label)
    }

    /// Walks up from `rid` to the governing context (paper §2.1.4).
    pub fn governing_context(&self, rid: RowId) -> Result<Option<(RowId, NodeRow)>> {
        RowAccess::governing_context(self, rid)
    }

    /// Reconstructs the subtree rooted at `rid` as a [`Node`].
    pub fn reconstruct(&self, rid: RowId) -> Result<Node> {
        RowAccess::reconstruct(self, rid)
    }

    /// Collects the content governed by the context at `ctx_rid`.
    pub fn section_content(&self, ctx_rid: RowId) -> Result<Node> {
        RowAccess::section_content(self, ctx_rid)
    }

    /// Document metadata by id.
    pub fn doc_info(&self, id: DocId) -> Result<DocInfo> {
        RowAccess::doc_info(self, id)
    }

    /// Document metadata by file name (first match).
    pub fn doc_by_name(&self, name: &str) -> Result<Option<DocInfo>> {
        RowAccess::doc_by_name(self, name)
    }

    /// Every stored document, by id.
    pub fn list_docs(&self) -> Result<Vec<DocInfo>> {
        RowAccess::list_docs(self)
    }
}

impl RowAccess for StoreView {
    fn xml_get(&self, rid: RowId) -> Result<Row> {
        Ok(self.xml.get(rid)?)
    }

    fn xml_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>> {
        Ok(self.xml.index_lookup(index, key)?)
    }

    fn doc_get(&self, rid: RowId) -> Result<Row> {
        Ok(self.doc.get(rid)?)
    }

    fn doc_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>> {
        Ok(self.doc.index_lookup(index, key)?)
    }

    fn doc_scan(&self) -> Result<Vec<(RowId, Row)>> {
        Ok(self.doc.scan()?)
    }
}

fn decode_doc(row: &[Value]) -> Result<DocInfo> {
    if row.len() != doc::ARITY {
        return Err(NetmarkError::Corrupt(format!(
            "DOC row arity {} (expected {})",
            row.len(),
            doc::ARITY
        )));
    }
    Ok(DocInfo {
        doc_id: row[doc::DOC_ID].as_int().unwrap_or(0),
        file_name: row[doc::FILE_NAME].as_text().unwrap_or("").to_string(),
        file_date: row[doc::FILE_DATE].as_int().unwrap_or(0),
        file_size: row[doc::FILE_SIZE].as_int().unwrap_or(0),
        format: row[doc::FORMAT].as_text().unwrap_or("").to_string(),
        root_node: row[doc::ROOT_NODEID].as_int().unwrap_or(0) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark_docformats::upmark;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (NodeStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(&dir).unwrap();
        (NodeStore::open(db).unwrap(), dir)
    }

    const WDOC: &str = "<<Title>> Plan A\n<<Heading1>> Budget\n<<Normal>> two **million** dollars\n<<Heading1>> Schedule\n<<Normal>> three years\n";

    #[test]
    fn ingest_and_reconstruct_round_trip() {
        let (s, dir) = setup("rt");
        let doc = upmark("plan-a.wdoc", WDOC);
        let rep = s.ingest(&doc).unwrap();
        assert_eq!(rep.node_count, doc.root.size());
        let back = s.reconstruct_document(rep.doc_id).unwrap();
        assert_eq!(back.root, doc.root, "lossless round trip");
        assert_eq!(back.name, "plan-a.wdoc");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn context_lookup_case_insensitive() {
        let (s, dir) = setup("ctx");
        s.ingest(&upmark("plan-a.wdoc", WDOC)).unwrap();
        let hits = s.contexts_labeled("budget").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.data, "Budget");
        let hits = s.contexts_labeled("BUDGET").unwrap();
        assert_eq!(hits.len(), 1);
        assert!(s.contexts_labeled("nonexistent").unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn governing_context_walk() {
        let (s, dir) = setup("walk");
        let rep = s.ingest(&upmark("plan-a.wdoc", WDOC)).unwrap();
        // Find the text node "three years" via entries and walk up.
        let (nid, _) = rep
            .index_entries
            .iter()
            .find(|(_, t)| t.contains("three years"))
            .unwrap();
        let (rid, _) = s.node_by_id(*nid).unwrap().unwrap();
        let (_, ctx) = s.governing_context(rid).unwrap().unwrap();
        assert_eq!(ctx.data, "Schedule");
        // The bold text governs back to Budget.
        let (nid, _) = rep
            .index_entries
            .iter()
            .find(|(_, t)| t.contains("million"))
            .unwrap();
        let (rid, _) = s.node_by_id(*nid).unwrap().unwrap();
        let (_, ctx) = s.governing_context(rid).unwrap().unwrap();
        assert_eq!(ctx.data, "Budget");
        // A context label's text node governs to its own context.
        let (nid, _) = rep
            .index_entries
            .iter()
            .find(|(_, t)| t == "Budget")
            .unwrap();
        let (rid, row) = s.node_by_id(*nid).unwrap().unwrap();
        let (_, ctx) = s.governing_context(rid).unwrap().unwrap();
        assert_eq!(ctx.data, "Budget");
        assert_eq!(row.ntype, NodeType::Context);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn section_content_collects_until_next_context() {
        let (s, dir) = setup("section");
        s.ingest(&upmark("plan-a.wdoc", WDOC)).unwrap();
        let (rid, _) = s.contexts_labeled("Budget").unwrap().remove(0);
        let content = s.section_content(rid).unwrap();
        assert_eq!(content.name, "Content");
        let txt = content.text_content();
        assert!(txt.contains("two"));
        assert!(txt.contains("dollars"));
        assert!(!txt.contains("three years"), "stops at the next context");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiple_documents_isolated() {
        let (s, dir) = setup("multi");
        let a = s.ingest(&upmark("a.wdoc", WDOC)).unwrap();
        let b = s
            .ingest(&upmark("b.txt", "# Budget\nother money\n"))
            .unwrap();
        assert_ne!(a.doc_id, b.doc_id);
        let hits = s.contexts_labeled("Budget").unwrap();
        assert_eq!(hits.len(), 2, "both documents have a Budget context");
        let docs = s.list_docs().unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].file_name, "a.wdoc");
        assert_eq!(s.doc_by_name("b.txt").unwrap().unwrap().doc_id, b.doc_id);
        assert!(s.doc_by_name("zzz").unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_document_erases_nodes() {
        let (s, dir) = setup("rm");
        let a = s.ingest(&upmark("a.wdoc", WDOC)).unwrap();
        let b = s.ingest(&upmark("b.wdoc", WDOC)).unwrap();
        let removed = s.remove_document(a.doc_id).unwrap();
        assert_eq!(removed.len(), a.node_count);
        assert_eq!(s.contexts_labeled("Budget").unwrap().len(), 1);
        assert!(s.doc_info(a.doc_id).is_err());
        assert!(s.doc_info(b.doc_id).is_ok());
        assert!(s.remove_document(a.doc_id).is_err(), "double remove errors");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ids_persist_across_reopen() {
        let dir = std::env::temp_dir().join(format!("netmark-store-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first_ids;
        {
            let db = Database::open(&dir).unwrap();
            let s = NodeStore::open(db).unwrap();
            let rep = s.ingest(&upmark("a.wdoc", WDOC)).unwrap();
            first_ids = (rep.doc_id, rep.root_node + rep.node_count as u64);
            s.database().checkpoint().unwrap();
        }
        let db = Database::open(&dir).unwrap();
        let s = NodeStore::open(db).unwrap();
        let rep = s.ingest(&upmark("b.wdoc", WDOC)).unwrap();
        assert!(rep.doc_id > first_ids.0, "doc ids keep ascending");
        assert!(rep.root_node >= first_ids.1, "node ids keep ascending");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_entries_ascend_and_cover_text() {
        let (s, dir) = setup("entries");
        let rep = s.ingest(&upmark("a.wdoc", WDOC)).unwrap();
        let ids: Vec<NodeId> = rep.index_entries.iter().map(|(i, _)| *i).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "entries ascend (text index contract)");
        let texts: Vec<&str> = rep.index_entries.iter().map(|(_, t)| t.as_str()).collect();
        assert!(texts.contains(&"Budget"), "context labels are indexed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebuild_entries_match_ingest_entries() {
        let (s, dir) = setup("rebuild");
        let rep = s.ingest(&upmark("a.wdoc", WDOC)).unwrap();
        let all = s.all_text_entries().unwrap();
        assert_eq!(all, rep.index_entries);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_batch_matches_sequential_ingest() {
        let (batch, bdir) = setup("batch");
        let (seq, sdir) = setup("seq");
        let docs = vec![
            upmark("a.wdoc", WDOC),
            upmark("b.txt", "# Budget\nother money\n"),
            upmark("c.html", "<html><body><h1>S</h1><p>text</p></body></html>"),
        ];
        let breps = batch.ingest_batch(&docs).unwrap();
        let sreps: Vec<_> = docs.iter().map(|d| seq.ingest(d).unwrap()).collect();
        assert_eq!(breps.len(), sreps.len());
        for (b, s) in breps.iter().zip(&sreps) {
            assert_eq!(b.doc_id, s.doc_id);
            assert_eq!(b.root_node, s.root_node);
            assert_eq!(b.node_count, s.node_count);
            assert_eq!(b.index_entries, s.index_entries);
        }
        assert_eq!(
            batch.all_text_entries().unwrap(),
            seq.all_text_entries().unwrap()
        );
        for rep in &breps {
            assert_eq!(
                batch.reconstruct_document(rep.doc_id).unwrap().root,
                seq.reconstruct_document(rep.doc_id).unwrap().root
            );
        }
        assert!(batch.ingest_batch(&[]).unwrap().is_empty());
        std::fs::remove_dir_all(&bdir).unwrap();
        std::fs::remove_dir_all(&sdir).unwrap();
    }

    #[test]
    fn generation_bumps_on_ingest_and_remove_and_persists() {
        let dir = std::env::temp_dir().join(format!("netmark-store-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gen_after;
        {
            let db = Database::open(&dir).unwrap();
            let s = NodeStore::open(db).unwrap();
            assert_eq!(s.generation(), 0);
            let rep = s.ingest(&upmark("a.wdoc", WDOC)).unwrap();
            assert_eq!(s.generation(), 1);
            s.ingest_batch(&[upmark("b.wdoc", WDOC), upmark("c.wdoc", WDOC)])
                .unwrap();
            assert_eq!(s.generation(), 2, "one bump per batch");
            s.remove_document(rep.doc_id).unwrap();
            assert_eq!(s.generation(), 3, "removal bumps too");
            gen_after = s.generation();
            s.database().checkpoint().unwrap();
        }
        let db = Database::open(&dir).unwrap();
        let s = NodeStore::open(db).unwrap();
        assert_eq!(s.generation(), gen_after);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_traversal_matches_rowid_traversal() {
        let (s, dir) = setup("ablation");
        let rep = s.ingest(&upmark("a.wdoc", WDOC)).unwrap();
        let (root_rid, _) = s.node_by_id(rep.root_node).unwrap().unwrap();
        let via_rowid = s.reconstruct(root_rid).unwrap();
        let via_index = s.reconstruct_via_index(rep.root_node).unwrap();
        assert_eq!(via_rowid, via_index);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
