//! The long-lived query read path (paper §2.1.4, "Processing Queries
//! Internally").
//!
//! "The keyword-based context and content search is performed by first
//! querying the text index for the search key. Each node returned from the
//! index search is then processed based on its designated unique ROWID.
//! The processing of the node involves traversing up the tree structure via
//! its parent or sibling node until the first context is found."
//!
//! A [`QueryEngine`] is owned by [`crate::NetMark`] and shared by every
//! caller — the WebDAV server, the federation router's local adapter, the
//! CLI. Each execution pins one MVCC [`StoreView`] and one text-index
//! snapshot, so every stage reads a single committed state without taking
//! a page lock. On top of the paper's pipeline it adds the three things a
//! long-lived handle can do that a per-call one cannot:
//!
//! 1. **Result caching** — a small LRU keyed on the normalized query
//!    string, stamped with the store generation (the same stamp that
//!    validates the persisted text index) plus an in-memory index epoch.
//!    Every committed ingest batch and removal bumps the generation; the
//!    epoch bump lands after the in-memory index write completes, so a
//!    query racing an ingest can never cache a result the next reader
//!    would wrongly reuse.
//! 2. **Parallel term execution** — multi-term keyword queries fan the
//!    per-term postings fetch + rowid→context mapping out across a small
//!    worker pool and intersect on the way back.
//! 3. **Context-walk memoization** — the hot rowid→governing-context walk
//!    is cached per store generation (rowids are only reusable after a
//!    removal, which bumps the generation).
//!
//! Every execution records per-stage wall times into
//! [`crate::metrics::QueryMetrics`], surfaced via `NetMark::stats()` and
//! `GET /xdb/stats`.

use crate::error::{NetmarkError, Result};
use crate::metrics::{QueryMetrics, QueryStats, QueryTrace};
use crate::store::{DocId, NodeStore, StoreView};
use netmark_model::NodeType;
use netmark_relstore::RowId;
use netmark_textindex::{IndexSnapshot, SegmentedIndex, TextIndexReader, TextQuery};
use netmark_xdb::{Hit, MatchMode, ResultSet, XdbQuery};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct QueryEngineOptions {
    /// Worker threads for parallel term execution. `0` executes every
    /// query serially on the calling thread (the pre-engine behavior).
    pub workers: usize,
    /// Result-cache entries. `0` disables result caching.
    pub cache_capacity: usize,
    /// Context-memo entries. `0` disables the rowid→context memo.
    pub memo_capacity: usize,
    /// Bounded top-k collection for limited queries. When set, a query
    /// carrying `limit=k` keeps a k-entry heap of the best candidates and
    /// materializes section content only for the survivors, instead of
    /// building and sorting every hit first. Results are identical either
    /// way; `false` restores the collect-everything-then-truncate path
    /// (the exhaustive baseline benchmarks compare against).
    pub topk_pruning: bool,
}

impl Default for QueryEngineOptions {
    fn default() -> Self {
        QueryEngineOptions {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            cache_capacity: 256,
            memo_capacity: 1 << 16,
            topk_pruning: true,
        }
    }
}

// ---------------------------------------------------------------------
// Context memo

/// Memo of rowid → governing-context walks, valid for one store
/// generation. Rowids can be reused after a removal, and removals bump the
/// generation, so a generation match proves every memoized walk still
/// describes the live tree.
pub(crate) struct CtxMemo {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inner: Mutex<MemoInner>,
}

struct MemoInner {
    gen: i64,
    map: HashMap<RowId, Option<RowId>>,
}

impl CtxMemo {
    fn new(capacity: usize) -> CtxMemo {
        CtxMemo {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inner: Mutex::new(MemoInner {
                gen: -1,
                map: HashMap::new(),
            }),
        }
    }

    /// `Some(walk result)` on a hit for this generation; `None` on a miss.
    fn get(&self, gen: i64, rid: RowId) -> Option<Option<RowId>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        if inner.gen != gen {
            inner.map.clear();
            inner.gen = gen;
        }
        match inner.map.get(&rid).copied() {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, gen: i64, rid: RowId, ctx: Option<RowId>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.gen != gen {
            inner.map.clear();
            inner.gen = gen;
        }
        if inner.map.len() >= self.capacity {
            inner.map.clear(); // wholesale reset beats tracking recency here
        }
        inner.map.insert(rid, ctx);
    }
}

// ---------------------------------------------------------------------
// Result cache

struct CacheEntry {
    gen: i64,
    epoch: u64,
    last_used: u64,
    results: Arc<ResultSet>,
}

/// LRU result cache keyed on the normalized query string. Entries carry
/// the (generation, epoch) pair they were computed under and are only
/// served while both still match — ingest invalidates by bumping, never by
/// scanning.
struct ResultCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, CacheEntry>,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &str, gen: i64, epoch: u64) -> Option<Arc<ResultSet>> {
        let stale = match self.map.get_mut(key) {
            None => return None,
            Some(e) if e.gen == gen && e.epoch == epoch => {
                self.tick += 1;
                e.last_used = self.tick;
                return Some(Arc::clone(&e.results));
            }
            Some(_) => true,
        };
        if stale {
            self.map.remove(key);
        }
        None
    }

    fn insert(&mut self, key: String, gen: i64, epoch: u64, results: Arc<ResultSet>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict the least-recently-used entry (capacity is small, a
            // scan is cheaper than an ordered index).
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.tick += 1;
        self.map.insert(
            key,
            CacheEntry {
                gen,
                epoch,
                last_used: self.tick,
                results,
            },
        );
    }
}

/// The cache key: the query's execution-relevant fields only. `xslt=` and
/// `databank=` never reach the engine's execution (composition and routing
/// happen above it), so queries differing only there share an entry.
fn cache_key(q: &XdbQuery) -> String {
    let mut key = XdbQuery {
        xslt: None,
        databank: None,
        ..q.clone()
    }
    .to_query_string();
    // `exact_contexts` changes execution (it pins the context fallback
    // decision) but is deliberately absent from the wire format, so it is
    // appended to the key by hand.
    for label in &q.exact_contexts {
        key.push_str("&!exact=");
        key.push_str(&netmark_xdb::url_encode(label));
    }
    key
}

// ---------------------------------------------------------------------
// Worker pool

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
}

/// A small long-lived thread pool for per-term fan-out. Queries submit
/// closures and collect results over an mpsc channel; the pool never
/// blocks a query that could make progress on the calling thread.
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(size: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let workers = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("netmark-query-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut q = shared.queue.lock();
                            loop {
                                if let Some(job) = q.pop_front() {
                                    break job;
                                }
                                if shared.stop.load(Ordering::Acquire) {
                                    return;
                                }
                                shared.available.wait(&mut q);
                            }
                        };
                        // A panicking job must not kill the worker: the
                        // submitting query sees the dropped channel sender
                        // and reports an error instead.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    })
                    .expect("spawn query worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    fn submit(&self, job: Job) {
        self.shared.queue.lock().push_back(job);
        self.shared.available.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---------------------------------------------------------------------
// The engine

/// Long-lived, shareable query executor over a store + text index pair.
/// Each execution pins one MVCC store view and takes one lock-free index
/// snapshot up front, then runs every stage (including the parallel
/// per-term fan-out) against that pair — so a query observes exactly one
/// committed store state and one committed index state, and never blocks
/// on — or is blocked by — concurrent ingest.
pub struct QueryEngine {
    store: Arc<NodeStore>,
    index: Arc<SegmentedIndex>,
    memo: Arc<CtxMemo>,
    cache: Mutex<ResultCache>,
    /// Bumped by `NetMark` after every completed in-memory index mutation.
    /// The store generation alone is not enough for cache validity: it is
    /// bumped at store-commit time, *before* the index write lands, so a
    /// query overlapping that window could otherwise cache (and later
    /// serve) a pre-index-update result under a current-looking stamp.
    epoch: AtomicU64,
    pool: Option<WorkerPool>,
    topk_pruning: bool,
    metrics: QueryMetrics,
}

impl QueryEngine {
    /// Builds an engine over shared store/index handles.
    pub fn new(
        store: Arc<NodeStore>,
        index: Arc<SegmentedIndex>,
        options: QueryEngineOptions,
    ) -> QueryEngine {
        QueryEngine {
            store,
            index,
            memo: Arc::new(CtxMemo::new(options.memo_capacity)),
            cache: Mutex::new(ResultCache::new(options.cache_capacity)),
            epoch: AtomicU64::new(0),
            pool: (options.workers > 0).then(|| WorkerPool::new(options.workers)),
            topk_pruning: options.topk_pruning,
            metrics: QueryMetrics::default(),
        }
    }

    /// Invalidates cached results. Called by `NetMark` after each index
    /// mutation completes; callers mutating the store directly (benches,
    /// ablations) should call it too.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Executes `q`, serving from the result cache when possible.
    pub fn execute(&self, q: &XdbQuery) -> Result<ResultSet> {
        self.execute_traced(q).map(|(rs, _)| rs)
    }

    /// Executes `q` and returns the per-stage trace alongside the results.
    pub fn execute_traced(&self, q: &XdbQuery) -> Result<(ResultSet, QueryTrace)> {
        let t0 = Instant::now();
        // Pin one MVCC store view per query: the generation read through it
        // names exactly the committed state every stage will observe.
        let view = self.store.begin_read()?;
        let gen = view.generation();
        let epoch = self.epoch.load(Ordering::Acquire);
        let key = cache_key(q);
        if let Some(hit) = self.cache.lock().get(&key, gen, epoch) {
            let trace = QueryTrace {
                cache_hit: true,
                total: t0.elapsed(),
                ..Default::default()
            };
            self.metrics.record(&trace);
            return Ok(((*hit).clone(), trace));
        }
        let mut trace = QueryTrace::default();
        let rs = self.execute_cold(q, &view, &mut trace)?;
        trace.total = t0.elapsed();
        self.metrics.record(&trace);
        // The store view guarantees the result is exactly the gen-stamped
        // state, but the index snapshot can lag or lead the store commit —
        // only cache when the stamp pair is still current at completion.
        if self.store.generation() == gen && self.epoch.load(Ordering::Acquire) == epoch {
            self.cache
                .lock()
                .insert(key, gen, epoch, Arc::new(rs.clone()));
        }
        Ok((rs, trace))
    }

    /// Executes `q` bypassing the result cache (the memo still applies).
    /// This is the "fresh" side of cache-correctness checks and the cold
    /// side of benchmarks.
    pub fn execute_uncached(&self, q: &XdbQuery) -> Result<ResultSet> {
        let t0 = Instant::now();
        let view = self.store.begin_read()?;
        let mut trace = QueryTrace::default();
        let rs = self.execute_cold(q, &view, &mut trace)?;
        trace.total = t0.elapsed();
        self.metrics.record(&trace);
        Ok(rs)
    }

    /// Cumulative read-path counters, including the storage engine's MVCC
    /// gauges (current version, live pinned views, checkpoint evictions).
    pub fn stats(&self) -> QueryStats {
        let mut s = self.metrics.snapshot();
        s.memo_hits = self.memo.hits.load(Ordering::Relaxed);
        s.memo_misses = self.memo.misses.load(Ordering::Relaxed);
        let m = self.store.database().mvcc_stats();
        s.store_version = m.version;
        s.live_views = m.live_views;
        s.views_evicted = m.views_evicted;
        s
    }

    fn execute_cold(
        &self,
        q: &XdbQuery,
        view: &StoreView,
        trace: &mut QueryTrace,
    ) -> Result<ResultSet> {
        // One snapshot per execution: a single atomic load, after which the
        // whole query — every stage, every pool worker — sees one immutable
        // index state regardless of concurrent commits or compaction. The
        // store side is pinned the same way by `view`.
        let snap = self.index.snapshot();
        let gen = view.generation();
        // Bounded top-k fast path for a ranked single-keyword content
        // query: the match set IS the score map's key set. Both are "the
        // governing contexts of the live nodes containing the term" — the
        // match walk resolves exactly the node ids the scoring pass walks,
        // through the same memoized governing-context lookup — so running
        // the scoring pass alone halves the per-match store work. Scores
        // are bit-identical by construction (same `context_scores` body),
        // and the bounded collector is insensitive to candidate order, so
        // the answer is byte-identical to the general path.
        if self.topk_pruning
            && q.limit.is_some()
            && q.ranked()
            && q.context.is_none()
            && q.match_mode == MatchMode::Keywords
        {
            if let Some(terms) = &q.content {
                if netmark_textindex::query_terms(terms).len() == 1 {
                    let t = Instant::now();
                    let (scores, candidates) =
                        context_scores_counted(view, &*snap, Some((&self.memo, gen)), terms)?;
                    trace.index_lookup += t.elapsed();
                    trace.candidates = candidates;
                    let ctx_rowids: Vec<RowId> = scores.keys().copied().collect();
                    return collect_hits(view, q, ctx_rowids, Some(&scores), true, trace);
                }
            }
        }
        let ctx_rowids: Vec<RowId> = match (&q.context, &q.content) {
            (None, None) => {
                // Unconstrained: every context in the store (bounded below
                // by the limit). Used by federation when augmenting a
                // source that answered a broader query.
                let t = Instant::now();
                let mut out = Vec::new();
                for info in view.list_docs()? {
                    if let Some((root_rid, _)) = view.node_by_id(info.root_node)? {
                        collect_contexts(view, root_rid, &mut out)?;
                    }
                }
                trace.context_walk += t.elapsed();
                out
            }
            (Some(label), None) => context_rowids(view, &*snap, label, &q.exact_contexts, trace)?,
            (None, Some(terms)) => {
                let (ctxs, cand) =
                    self.content_contexts(view, &snap, terms, q.match_mode, gen, trace)?;
                trace.candidates = cand;
                ctxs
            }
            (Some(label), Some(terms)) => {
                let labelled = context_rowids(view, &*snap, label, &q.exact_contexts, trace)?;
                let (with_content, cand) =
                    self.content_contexts(view, &snap, terms, q.match_mode, gen, trace)?;
                trace.candidates = cand;
                let t = Instant::now();
                let set: HashSet<RowId> = with_content.into_iter().collect();
                let out = labelled.into_iter().filter(|r| set.contains(r)).collect();
                trace.intersection += t.elapsed();
                out
            }
        };
        // BM25 scores are attached at collect time, not during matching:
        // the match set is exactly what `rank=none` would produce, ranking
        // only reorders it. Scoring reuses the same pinned snapshot + view
        // pair, so scores and matches describe one committed state.
        let scores = match (&q.content, q.ranked()) {
            (Some(terms), true) => Some(context_scores(
                view,
                &*snap,
                Some((&self.memo, gen)),
                terms,
            )?),
            _ => None,
        };
        collect_hits(
            view,
            q,
            ctx_rowids,
            scores.as_ref(),
            self.topk_pruning,
            trace,
        )
    }

    /// Context rowids whose sections contain the content terms. Multi-term
    /// keyword queries AND at the *section* level — every term must occur
    /// somewhere under the same context — and fan out across the pool.
    fn content_contexts(
        &self,
        view: &StoreView,
        snap: &Arc<IndexSnapshot>,
        terms: &str,
        mode: MatchMode,
        gen: i64,
        trace: &mut QueryTrace,
    ) -> Result<(Vec<RowId>, usize)> {
        let term_list = netmark_textindex::query_terms(terms);
        match &self.pool {
            Some(pool) if mode == MatchMode::Keywords && term_list.len() >= 2 => {
                self.parallel_term_contexts(pool, view, snap, &term_list, gen, trace)
            }
            _ => content_contexts_serial(
                view,
                &**snap,
                Some((&self.memo, gen)),
                terms,
                &term_list,
                mode,
                trace,
            ),
        }
    }

    fn parallel_term_contexts(
        &self,
        pool: &WorkerPool,
        view: &StoreView,
        snap: &Arc<IndexSnapshot>,
        term_list: &[String],
        gen: i64,
        trace: &mut QueryTrace,
    ) -> Result<(Vec<RowId>, usize)> {
        trace.fanout = term_list.len();
        type TermOut = (usize, usize, Duration, Duration, Result<Vec<RowId>>);
        let (tx, rx) = std::sync::mpsc::channel::<TermOut>();
        for (slot, term) in term_list.iter().enumerate() {
            let view = view.clone();
            let snap = Arc::clone(snap);
            let memo = Arc::clone(&self.memo);
            let term = term.clone();
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                let t = Instant::now();
                // Workers share the caller's snapshot Arc and store-view
                // pin: no lock reacquisition per term, and every term is
                // evaluated against the same committed index + store state.
                let ids = snap.execute(&TextQuery::Term(term));
                let index_t = t.elapsed();
                let t = Instant::now();
                let ctxs = map_to_contexts(&view, Some((&memo, gen)), &ids);
                let _ = tx.send((slot, ids.len(), index_t, t.elapsed(), ctxs));
            }));
        }
        drop(tx);
        let mut slots: Vec<Option<Vec<RowId>>> = vec![None; term_list.len()];
        let mut candidates = 0usize;
        for _ in 0..term_list.len() {
            let (slot, cand, index_t, walk_t, ctxs) = rx.recv().map_err(|_| {
                NetmarkError::Corrupt("query worker died before answering".to_string())
            })?;
            candidates += cand;
            trace.index_lookup += index_t;
            trace.context_walk += walk_t;
            slots[slot] = Some(ctxs?);
        }
        // Intersect in term order, preserving the first term's ordering —
        // identical semantics to the serial path.
        let t = Instant::now();
        let mut it = slots.into_iter().map(|s| s.expect("all slots answered"));
        let mut acc = it.next().unwrap_or_default();
        for ctxs in it {
            if acc.is_empty() {
                break;
            }
            let set: HashSet<RowId> = ctxs.into_iter().collect();
            acc.retain(|r| set.contains(r));
        }
        trace.intersection += t.elapsed();
        Ok((acc, candidates))
    }
}

// ---------------------------------------------------------------------
// Shared stage functions (used by the engine's serial and parallel paths)

/// Serial per-term execution: postings fetch, context mapping, running
/// intersection with early exit. Generic over the index shape so engine
/// executions (snapshots) and direct-index tests share one body; the store
/// side always reads through the caller's pinned view.
pub(crate) fn content_contexts_serial<I: TextIndexReader + ?Sized>(
    view: &StoreView,
    index: &I,
    memo: Option<(&CtxMemo, i64)>,
    terms: &str,
    term_list: &[String],
    mode: MatchMode,
    trace: &mut QueryTrace,
) -> Result<(Vec<RowId>, usize)> {
    if term_list.is_empty() {
        return Ok((Vec::new(), 0));
    }
    if mode == MatchMode::Phrase {
        let t = Instant::now();
        let ids = index.execute(&TextQuery::phrase(terms));
        trace.index_lookup += t.elapsed();
        let candidates = ids.len();
        let t = Instant::now();
        let ctxs = map_to_contexts(view, memo, &ids)?;
        trace.context_walk += t.elapsed();
        return Ok((ctxs, candidates));
    }
    let mut acc: Option<Vec<RowId>> = None;
    let mut candidates = 0usize;
    for term in term_list {
        let t = Instant::now();
        let ids = index.execute(&TextQuery::Term(term.clone()));
        trace.index_lookup += t.elapsed();
        candidates += ids.len();
        let t = Instant::now();
        let ctxs = map_to_contexts(view, memo, &ids)?;
        trace.context_walk += t.elapsed();
        let t = Instant::now();
        acc = Some(match acc {
            None => ctxs,
            Some(prev) => {
                let set: HashSet<RowId> = ctxs.into_iter().collect();
                prev.into_iter().filter(|r| set.contains(r)).collect()
            }
        });
        trace.intersection += t.elapsed();
        if acc.as_ref().map(|a| a.is_empty()).unwrap_or(false) {
            break;
        }
    }
    Ok((acc.unwrap_or_default(), candidates))
}

/// Maps text-hit node ids to their governing context rowids (deduped, in
/// first-encounter order), consulting the memo when one is given.
pub(crate) fn map_to_contexts(
    view: &StoreView,
    memo: Option<(&CtxMemo, i64)>,
    node_ids: &[u64],
) -> Result<Vec<RowId>> {
    let mut seen: HashSet<RowId> = HashSet::new();
    let mut out: Vec<RowId> = Vec::new();
    for &nid in node_ids {
        let Some((rid, _)) = view.node_by_id(nid)? else {
            continue; // tombstoned in index but not in this store view
        };
        let ctx = match memo.and_then(|(m, gen)| m.get(gen, rid)) {
            Some(cached) => cached,
            None => {
                let walked = view.governing_context(rid)?.map(|(c, _)| c);
                if let Some((m, gen)) = memo {
                    m.put(gen, rid, walked);
                }
                walked
            }
        };
        if let Some(c) = ctx {
            if seen.insert(c) {
                out.push(c);
            }
        }
    }
    Ok(out)
}

/// Context rowids matching a `Context=` specification. A `|`-separated
/// label list unions ("in NETMARK we have to specify two Context queries
/// (one for 'Budget' and one for 'Cost Details')" — §4; the union form
/// issues them as one client-side query, still with zero mapping
/// artifacts).
pub(crate) fn context_rowids<I: TextIndexReader + ?Sized>(
    view: &StoreView,
    index: &I,
    spec: &str,
    exact_only: &[String],
    trace: &mut QueryTrace,
) -> Result<Vec<RowId>> {
    if spec.contains('|') {
        let mut out: Vec<RowId> = Vec::new();
        for label in spec.split('|').map(str::trim).filter(|l| !l.is_empty()) {
            for rid in context_rowids(view, index, label, exact_only, trace)? {
                if !out.contains(&rid) {
                    out.push(rid);
                }
            }
        }
        return Ok(out);
    }
    let label = spec;
    let t = Instant::now();
    let exact = view.contexts_labeled(label)?;
    trace.index_lookup += t.elapsed();
    if !exact.is_empty() {
        return Ok(exact.into_iter().map(|(rid, _)| rid).collect());
    }
    // Exact→phrase fallback is a *global* decision: if a sharded/federated
    // coordinator saw an exact occurrence of this label anywhere, a member
    // store whose local slice happens to lack it must return nothing here
    // rather than fall back and invent phrase matches the single-store
    // execution would never produce.
    if exact_only.iter().any(|l| l == label) {
        return Ok(Vec::new());
    }
    // Fallback: phrase match over indexed labels (catches e.g.
    // Context=Budget against a "Budget Overview" heading).
    let t = Instant::now();
    let ids = index.execute(&TextQuery::phrase(label));
    trace.index_lookup += t.elapsed();
    let t = Instant::now();
    let mut out = Vec::new();
    for nid in ids {
        if let Some((rid, row)) = view.node_by_id(nid)? {
            if row.ntype == NodeType::Context && !out.contains(&rid) {
                out.push(rid);
            }
        }
    }
    trace.context_walk += t.elapsed();
    Ok(out)
}

/// Node-level BM25 scores rolled up to governing-context rowids: each
/// matching node's score is attributed to the context that would own its
/// hit, summing when a section contains several scoring nodes. Uses the
/// same memoized governing-context walk as the match path, so score
/// attribution can never disagree with hit attribution.
pub(crate) fn context_scores<I: TextIndexReader + ?Sized>(
    view: &StoreView,
    index: &I,
    memo: Option<(&CtxMemo, i64)>,
    terms: &str,
) -> Result<HashMap<RowId, f64>> {
    Ok(context_scores_counted(view, index, memo, terms)?.0)
}

/// [`context_scores`] plus the scored-node count — for the single-term
/// fast path, which reports it as the candidate count the match walk
/// would have reported (one scored node per term posting, both paths
/// filtered by the same index tombstones).
pub(crate) fn context_scores_counted<I: TextIndexReader + ?Sized>(
    view: &StoreView,
    index: &I,
    memo: Option<(&CtxMemo, i64)>,
    terms: &str,
) -> Result<(HashMap<RowId, f64>, usize)> {
    let mut out: HashMap<RowId, f64> = HashMap::new();
    let scored = index.search_bm25(terms);
    let candidates = scored.len();
    for (nid, score) in scored {
        let Some((rid, _)) = view.node_by_id(nid)? else {
            continue; // tombstoned in index but not in this store view
        };
        let ctx = match memo.and_then(|(m, gen)| m.get(gen, rid)) {
            Some(cached) => cached,
            None => {
                let walked = view.governing_context(rid)?.map(|(c, _)| c);
                if let Some((m, gen)) = memo {
                    m.put(gen, rid, walked);
                }
                walked
            }
        };
        if let Some(c) = ctx {
            *out.entry(c).or_default() += score;
        }
    }
    Ok((out, candidates))
}

/// A kept candidate in the bounded collection heap, ordered so the heap
/// root (the max) is always the *weakest* entry — the one the next
/// stronger candidate evicts. Stronger means higher score, ties broken by
/// smaller `(doc_id, node_id)` key, exactly the order the exhaustive
/// stable-sort-then-truncate path produces.
struct Weakest {
    score: f64,
    key: (DocId, u64),
    rid: RowId,
    doc: String,
}

impl Ord for Weakest {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Greater = weaker: lower score first, then larger key. Scores are
        // finite BM25 sums (or 0.0), so total_cmp agrees with partial_cmp.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for Weakest {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Weakest {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Weakest {}

/// Materializes the result set for the surviving context rowids: resolve
/// document names (once per doc), apply the `doc=` filter, walk each
/// section's content, order, rank (when `rank=bm25`), truncate.
///
/// With `topk_pruning` and a `limit`, collection is bounded: candidates
/// stream through a `limit`-entry heap keyed on (score, doc, node) and
/// only the survivors are materialized — section content is never walked
/// and `Hit`s are never built for rows the truncation would drop. Unranked
/// queries take the same path with every score 0.0, which reduces the
/// order to the plain (doc, node) document order. Hit-for-hit identical
/// to the exhaustive path in content, order, and `truncated`.
pub(crate) fn collect_hits(
    view: &StoreView,
    query: &XdbQuery,
    ctx_rowids: Vec<RowId>,
    scores: Option<&HashMap<RowId, f64>>,
    topk_pruning: bool,
    trace: &mut QueryTrace,
) -> Result<ResultSet> {
    let t = Instant::now();
    let ranked = query.ranked();
    // The score floor is defined over ranked scores only; on an unranked
    // query there is nothing to compare, so a stray `min_score=` is inert.
    let floor = if ranked { query.min_score } else { None };
    if topk_pruning {
        if let Some(limit) = query.limit {
            let rs = collect_hits_bounded(view, query, ctx_rowids, scores, limit, floor, trace)?;
            trace.collection += t.elapsed();
            return Ok(rs);
        }
    }
    // Resolve document names once per doc. A missing DOC row means the
    // index snapshot led this store view (the document landed after the
    // pin) — skip such hits rather than failing the query.
    let mut doc_names: HashMap<DocId, Option<String>> = HashMap::new();
    let mut ordered: BTreeMap<(DocId, u64), Hit> = BTreeMap::new();
    for rid in ctx_rowids {
        let Ok(row) = view.node(rid) else {
            continue;
        };
        let doc_name = match doc_names.get(&row.doc_id) {
            Some(cached) => cached.clone(),
            None => {
                let n = view.doc_info(row.doc_id).ok().map(|i| i.file_name);
                doc_names.insert(row.doc_id, n.clone());
                n
            }
        };
        let Some(doc_name) = doc_name else { continue };
        if let Some(wanted) = &query.doc {
            if &doc_name != wanted {
                continue;
            }
        }
        let content = view.section_content(rid)?;
        ordered.insert(
            (row.doc_id, row.node_id),
            Hit {
                source: String::new(),
                doc: doc_name,
                context: row.data.clone(),
                content,
                context_node: row.node_id,
                // Ranked queries score every hit (0.0 when the section
                // matched without any scoring node, e.g. a pure Context=
                // match); unranked hits carry no score at all, keeping the
                // wire bytes identical to pre-ranking output.
                score: ranked.then(|| scores.and_then(|m| m.get(&rid)).copied().unwrap_or(0.0)),
            },
        );
    }
    let mut hits: Vec<Hit> = ordered.into_values().collect();
    if ranked {
        // Stable sort over the (doc_id, node_id)-ordered vec: equal scores
        // keep ingest order — the same tie-break rule the sharded and
        // federated merges apply via `merge_scored`.
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    if let Some(floor) = floor {
        // The floor cuts before the limit: a coordinator pushing
        // `limit=k&min_score=θ` wants the best k hits *above* θ, not the
        // above-θ remainder of an unfiltered top k.
        hits.retain(|h| h.score.map(|s| s > floor).unwrap_or(false));
    }
    let mut truncated = false;
    if let Some(limit) = query.limit {
        if hits.len() > limit {
            hits.truncate(limit);
            truncated = true;
        }
    }
    trace.collection += t.elapsed();
    Ok(ResultSet {
        hits,
        candidates: trace.candidates,
        truncated,
        ranked,
    })
}

/// The bounded collection path: one pass over the candidates resolving
/// only row + document name (no content walk, no `Hit` allocation), a
/// `limit`-entry [`Weakest`]-rooted heap tracking the current top k, then
/// materialization of the survivors alone.
fn collect_hits_bounded(
    view: &StoreView,
    query: &XdbQuery,
    ctx_rowids: Vec<RowId>,
    scores: Option<&HashMap<RowId, f64>>,
    limit: usize,
    floor: Option<f64>,
    trace: &mut QueryTrace,
) -> Result<ResultSet> {
    let ranked = query.ranked();
    let mut doc_names: HashMap<DocId, Option<String>> = HashMap::new();
    let mut seen: HashSet<(DocId, u64)> = HashSet::new();
    let mut heap: std::collections::BinaryHeap<Weakest> = std::collections::BinaryHeap::new();
    let mut qualifying = 0usize;
    for rid in ctx_rowids {
        let Ok(row) = view.node(rid) else {
            continue;
        };
        let doc_name = match doc_names.get(&row.doc_id) {
            Some(cached) => cached.clone(),
            None => {
                let n = view.doc_info(row.doc_id).ok().map(|i| i.file_name);
                doc_names.insert(row.doc_id, n.clone());
                n
            }
        };
        let Some(doc_name) = doc_name else { continue };
        if let Some(wanted) = &query.doc {
            if &doc_name != wanted {
                continue;
            }
        }
        let score = if ranked {
            scores.and_then(|m| m.get(&rid)).copied().unwrap_or(0.0)
        } else {
            0.0
        };
        if let Some(floor) = floor {
            if score <= floor {
                continue;
            }
        }
        let key = (row.doc_id, row.node_id);
        if !seen.insert(key) {
            continue;
        }
        qualifying += 1;
        let cand = Weakest {
            score,
            key,
            rid,
            doc: doc_name,
        };
        if heap.len() < limit {
            heap.push(cand);
        } else if heap.peek().map(|weakest| cand < *weakest).unwrap_or(false) {
            // `cand < weakest` in Weakest order means strictly stronger:
            // higher score, or the same score with a smaller key — the
            // exact condition under which the exhaustive sort would have
            // placed it inside the truncation boundary.
            heap.pop();
            heap.push(cand);
            trace.topk.heap_evictions += 1;
        }
    }
    let mut winners = heap.into_vec();
    winners.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.key.cmp(&b.key)));
    let mut hits = Vec::with_capacity(winners.len());
    for w in winners {
        let row = view.node(w.rid)?;
        let content = view.section_content(w.rid)?;
        hits.push(Hit {
            source: String::new(),
            doc: w.doc,
            context: row.data.clone(),
            content,
            context_node: row.node_id,
            score: ranked.then_some(w.score),
        });
    }
    Ok(ResultSet {
        truncated: qualifying > hits.len(),
        hits,
        candidates: trace.candidates,
        ranked,
    })
}

/// Depth-first collection of every CONTEXT node under `rid`.
pub(crate) fn collect_contexts(view: &StoreView, rid: RowId, out: &mut Vec<RowId>) -> Result<()> {
    let row = view.node(rid)?;
    if row.ntype == NodeType::Context {
        out.push(rid);
    }
    let mut c = row.first_child;
    while let Some(crid) = c {
        collect_contexts(view, crid, out)?;
        c = view.node(crid)?.next_sibling;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (Arc<NodeStore>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-eng-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = netmark_relstore::Database::open(&dir).unwrap();
        (Arc::new(NodeStore::open(db).unwrap()), dir)
    }

    fn ingest(store: &NodeStore, index: &SegmentedIndex, name: &str, text: &str) {
        let doc = netmark_docformats::upmark(name, text);
        let report = store.ingest(&doc).unwrap();
        for (id, t) in &report.index_entries {
            index.add(*id, t);
        }
        index.commit();
    }

    fn engine_with(
        store: &Arc<NodeStore>,
        index: &Arc<SegmentedIndex>,
        opts: QueryEngineOptions,
    ) -> QueryEngine {
        QueryEngine::new(Arc::clone(store), Arc::clone(index), opts)
    }

    #[test]
    fn cache_hit_returns_same_results_and_counts() {
        let (store, dir) = temp_store("cache");
        let index = Arc::new(SegmentedIndex::new());
        ingest(&store, &index, "a.txt", "# Budget\ntwo million dollars\n");
        let eng = engine_with(&store, &index, QueryEngineOptions::default());
        let q = XdbQuery::content("million dollars");
        let (cold, t1) = eng.execute_traced(&q).unwrap();
        assert!(!t1.cache_hit);
        let (warm, t2) = eng.execute_traced(&q).unwrap();
        assert!(t2.cache_hit);
        assert_eq!(cold, warm);
        let s = eng.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_bump_invalidates_cache() {
        let (store, dir) = temp_store("inval");
        let index = Arc::new(SegmentedIndex::new());
        ingest(&store, &index, "a.txt", "# Budget\ntwo million\n");
        let eng = engine_with(&store, &index, QueryEngineOptions::default());
        let q = XdbQuery::context("Budget");
        assert_eq!(eng.execute(&q).unwrap().len(), 1);
        assert_eq!(eng.execute(&q).unwrap().len(), 1); // cached
        ingest(&store, &index, "b.txt", "# Budget\none million\n");
        eng.invalidate();
        assert_eq!(eng.execute(&q).unwrap().len(), 2, "new doc visible");
        assert_eq!(eng.stats().cache_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_bump_alone_invalidates_cache() {
        // Even with an unchanged store generation (e.g. a direct index
        // mutation), invalidate() must force re-execution.
        let (store, dir) = temp_store("epoch");
        let index = Arc::new(SegmentedIndex::new());
        ingest(&store, &index, "a.txt", "# Budget\ntwo million\n");
        let eng = engine_with(&store, &index, QueryEngineOptions::default());
        let q = XdbQuery::context("Budget");
        eng.execute(&q).unwrap();
        eng.invalidate();
        eng.execute(&q).unwrap();
        assert_eq!(eng.stats().cache_hits, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (store, dir) = temp_store("par");
        let index = Arc::new(SegmentedIndex::new());
        ingest(
            &store,
            &index,
            "a.txt",
            "# Budget\nthe gap is shrinking fast\n# Risks\nthe schedule gap\n",
        );
        ingest(
            &store,
            &index,
            "b.txt",
            "# Budget\nthe gap is growing\n# Schedule\nthree years\n",
        );
        let parallel = engine_with(
            &store,
            &index,
            QueryEngineOptions {
                workers: 3,
                cache_capacity: 0,
                memo_capacity: 0,
                topk_pruning: true,
            },
        );
        let serial = engine_with(
            &store,
            &index,
            QueryEngineOptions {
                workers: 0,
                cache_capacity: 0,
                memo_capacity: 0,
                topk_pruning: true,
            },
        );
        for q in [
            XdbQuery::content("the gap is"),
            XdbQuery::content("gap shrinking"),
            XdbQuery::content("gap is growing"),
            XdbQuery::context_content("Budget", "gap is"),
        ] {
            let p = parallel.execute(&q).unwrap();
            let s = serial.execute(&q).unwrap();
            assert_eq!(p.hits, s.hits, "query {q}");
        }
        assert!(parallel.stats().parallel_queries >= 3);
        assert_eq!(serial.stats().parallel_queries, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ranked_queries_score_sort_and_preserve_match_set() {
        let (store, dir) = temp_store("rank");
        let index = Arc::new(SegmentedIndex::new());
        // a: one mention diluted in a long section; b: dense mentions in a
        // short one — BM25 must put b first, ingest order puts a first.
        ingest(
            &store,
            &index,
            "a.txt",
            "# Notes\nthe engine review covered many unrelated topics and ran very long indeed\n",
        );
        ingest(
            &store,
            &index,
            "b.txt",
            "# Faults\nengine engine engine stall\n",
        );
        let eng = engine_with(&store, &index, QueryEngineOptions::default());
        let plain = XdbQuery::content("engine");
        let ranked_q = plain.clone().with_rank(netmark_xdb::RankMode::Bm25);
        let unranked = eng.execute(&plain).unwrap();
        let ranked = eng.execute(&ranked_q).unwrap();
        assert!(!unranked.ranked);
        assert!(ranked.ranked);
        assert!(unranked.hits.iter().all(|h| h.score.is_none()));
        assert!(ranked.hits.iter().all(|h| h.score.is_some()));
        let docs =
            |rs: &ResultSet| -> Vec<String> { rs.hits.iter().map(|h| h.doc.clone()).collect() };
        assert_eq!(docs(&unranked), vec!["a.txt", "b.txt"], "ingest order");
        assert_eq!(docs(&ranked), vec!["b.txt", "a.txt"], "score order");
        assert!(ranked.hits[0].score > ranked.hits[1].score);
        // rank= is part of the cache key: re-running the unranked form
        // after the ranked one must serve the unranked entry, not collide.
        assert_eq!(docs(&eng.execute(&plain).unwrap()), vec!["a.txt", "b.txt"]);
        assert_eq!(eng.stats().cache_hits, 1);
        // A ranked Context= query (nothing to score) still answers, every
        // hit scored 0.0.
        let ctx = eng
            .execute(&XdbQuery::context("Faults").with_rank(netmark_xdb::RankMode::Bm25))
            .unwrap();
        assert!(ctx.ranked);
        assert_eq!(ctx.hits.len(), 1);
        assert_eq!(ctx.hits[0].score, Some(0.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_collection_matches_exhaustive() {
        let (store, dir) = temp_store("topk");
        let index = Arc::new(SegmentedIndex::new());
        // Distinct densities so scores differ, plus equal-score ties (the
        // pure-Context hits all score 0.0) to exercise the key tie-break.
        for i in 0..8 {
            ingest(
                &store,
                &index,
                &format!("d{i}.txt"),
                &format!(
                    "# Part{i}\nengine {} filler words here\n# Empty{i}\nnothing relevant\n",
                    "engine ".repeat(i)
                ),
            );
        }
        let pruned = engine_with(
            &store,
            &index,
            QueryEngineOptions {
                topk_pruning: true,
                cache_capacity: 0,
                ..QueryEngineOptions::default()
            },
        );
        let exhaustive = engine_with(
            &store,
            &index,
            QueryEngineOptions {
                topk_pruning: false,
                cache_capacity: 0,
                ..QueryEngineOptions::default()
            },
        );
        for limit in [0, 1, 3, 8, 100] {
            for q in [
                XdbQuery::content("engine")
                    .with_rank(netmark_xdb::RankMode::Bm25)
                    .with_limit(limit),
                XdbQuery::content("engine").with_limit(limit),
                XdbQuery::context("Part3")
                    .with_rank(netmark_xdb::RankMode::Bm25)
                    .with_limit(limit),
            ] {
                let p = pruned.execute(&q).unwrap();
                let e = exhaustive.execute(&q).unwrap();
                assert_eq!(p, e, "query {q} limit {limit}");
            }
        }
        // Unlimited queries bypass the bounded path entirely — same object
        // either way.
        let q = XdbQuery::content("engine").with_rank(netmark_xdb::RankMode::Bm25);
        assert_eq!(pruned.execute(&q).unwrap(), exhaustive.execute(&q).unwrap());
        assert!(
            pruned.stats().topk.heap_evictions > 0,
            "k=1 over 8 docs evicts"
        );
        assert_eq!(exhaustive.stats().topk.heap_evictions, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn min_score_floor_filters_before_limit() {
        let (store, dir) = temp_store("floor");
        let index = Arc::new(SegmentedIndex::new());
        ingest(
            &store,
            &index,
            "hot.txt",
            "# Faults\nengine engine engine stall\n",
        );
        ingest(
            &store,
            &index,
            "cold.txt",
            "# Notes\nthe engine review covered many unrelated topics and ran very long indeed\n",
        );
        let eng = engine_with(&store, &index, QueryEngineOptions::default());
        let base = XdbQuery::content("engine").with_rank(netmark_xdb::RankMode::Bm25);
        let all = eng.execute(&base).unwrap();
        assert_eq!(all.hits.len(), 2);
        let (hi, lo) = (all.hits[0].score.unwrap(), all.hits[1].score.unwrap());
        assert!(hi > lo);
        // A floor between the two scores drops the weak hit — and with
        // limit=1 the strong hit still arrives (filter cuts before limit).
        let floored = eng
            .execute(&base.clone().with_limit(1).with_min_score((hi + lo) / 2.0))
            .unwrap();
        assert_eq!(floored.hits.len(), 1);
        assert_eq!(floored.hits[0].doc, "hot.txt");
        assert!(!floored.truncated, "the floor, not the limit, cut cold.txt");
        // A floor at or above every score yields nothing: the comparison
        // is strict, so a hit scoring exactly the floor is dropped.
        let none = eng.execute(&base.clone().with_min_score(hi)).unwrap();
        assert!(none.hits.is_empty());
        // Exhaustive collection applies the same floor.
        let exhaustive = engine_with(
            &store,
            &index,
            QueryEngineOptions {
                topk_pruning: false,
                cache_capacity: 0,
                ..QueryEngineOptions::default()
            },
        );
        let e = exhaustive
            .execute(&base.clone().with_limit(1).with_min_score((hi + lo) / 2.0))
            .unwrap();
        assert_eq!(e, floored);
        // min_score on an unranked query is inert: no scores to compare.
        let unranked = eng
            .execute(&XdbQuery::content("engine").with_min_score(1000.0))
            .unwrap();
        assert_eq!(unranked.hits.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_records_stage_times() {
        let (store, dir) = temp_store("trace");
        let index = Arc::new(SegmentedIndex::new());
        ingest(&store, &index, "a.txt", "# Budget\ntwo million dollars\n");
        let eng = engine_with(&store, &index, QueryEngineOptions::default());
        let (_, trace) = eng
            .execute_traced(&XdbQuery::content("million dollars"))
            .unwrap();
        assert!(!trace.cache_hit);
        assert_eq!(trace.fanout, 2);
        assert!(trace.total >= trace.collection);
        assert!(trace.candidates >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memo_counts_hits_across_queries() {
        let (store, dir) = temp_store("memo");
        let index = Arc::new(SegmentedIndex::new());
        ingest(&store, &index, "a.txt", "# Budget\ntwo million dollars\n");
        let eng = engine_with(
            &store,
            &index,
            QueryEngineOptions {
                workers: 0,
                cache_capacity: 0, // force re-execution
                memo_capacity: 1024,
                topk_pruning: true,
            },
        );
        let q = XdbQuery::content("million");
        eng.execute(&q).unwrap();
        eng.execute(&q).unwrap();
        let s = eng.stats();
        assert!(s.memo_misses >= 1);
        assert!(s.memo_hits >= 1, "second execution reuses the walk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_evicts_oldest_entry() {
        let mut cache = ResultCache::new(2);
        let rs = Arc::new(ResultSet::default());
        cache.insert("a".into(), 1, 0, Arc::clone(&rs));
        cache.insert("b".into(), 1, 0, Arc::clone(&rs));
        assert!(cache.get("a", 1, 0).is_some()); // refresh a
        cache.insert("c".into(), 1, 0, Arc::clone(&rs));
        assert!(cache.get("b", 1, 0).is_none(), "b was LRU");
        assert!(cache.get("a", 1, 0).is_some());
        assert!(cache.get("c", 1, 0).is_some());
        // Stale stamps are misses and drop the entry.
        assert!(cache.get("a", 2, 0).is_none());
        assert!(cache.get("a", 1, 0).is_none());
    }

    #[test]
    fn cache_key_ignores_routing_fields() {
        let q1 = XdbQuery::context("Budget").with_xslt("report");
        let q2 = XdbQuery::context("Budget").with_databank("apps");
        assert_eq!(cache_key(&q1), cache_key(&q2));
        assert_ne!(cache_key(&q1), cache_key(&XdbQuery::context("Schedule")));
        assert_ne!(
            cache_key(&XdbQuery::context("Budget")),
            cache_key(&XdbQuery::context("Budget").with_limit(1)),
            "limit changes execution, so it keys the cache"
        );
    }
}
