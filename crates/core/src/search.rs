//! Query execution (paper §2.1.4, "Processing Queries Internally").
//!
//! "The keyword-based context and content search is performed by first
//! querying the text index for the search key. Each node returned from the
//! index search is then processed based on its designated unique ROWID.
//! The processing of the node involves traversing up the tree structure via
//! its parent or sibling node until the first context is found."
//!
//! Execution pipeline:
//! 1. `Content=` terms → text index → node ids → rowids → walk up to the
//!    governing context (one context per hit section).
//! 2. `Context=` label → `CTXKEY` index (exact, case-insensitive); when
//!    nothing matches exactly, fall back to a phrase match over indexed
//!    context labels.
//! 3. Combined queries intersect (1) and (2) on the context rowid.
//! 4. Each surviving context walks back *down* the sibling chain to collect
//!    its content.

use crate::error::Result;
use crate::store::{DocId, NodeStore};
use netmark_model::NodeType;
use netmark_relstore::RowId;
use netmark_textindex::{InvertedIndex, TextQuery};
use netmark_xdb::{Hit, MatchMode, ResultSet, XdbQuery};
use std::collections::{BTreeMap, HashMap};

/// Executes XDB queries over a [`NodeStore`] + [`InvertedIndex`] pair.
pub struct Searcher<'a> {
    store: &'a NodeStore,
    index: &'a InvertedIndex,
}

impl<'a> Searcher<'a> {
    /// Borrows the store and index for one query.
    pub fn new(store: &'a NodeStore, index: &'a InvertedIndex) -> Searcher<'a> {
        Searcher { store, index }
    }

    /// Context rowids whose sections contain the content terms. Multi-term
    /// keyword queries AND at the *section* level: every term must occur
    /// somewhere under the same context. Returns `(ctx rowid → matched
    /// term count)` plus the candidate count for diagnostics.
    fn content_contexts(&self, terms: &str, mode: MatchMode) -> Result<(Vec<RowId>, usize)> {
        let term_list = netmark_textindex::query_terms(terms);
        if term_list.is_empty() {
            return Ok((Vec::new(), 0));
        }
        if mode == MatchMode::Phrase {
            let ids = self.index.execute(&TextQuery::phrase(terms));
            let candidates = ids.len();
            let ctxs = self.map_to_contexts(&ids)?;
            return Ok((ctxs, candidates));
        }
        // Keywords: per-term context sets, intersected.
        let mut acc: Option<Vec<RowId>> = None;
        let mut candidates = 0usize;
        for term in &term_list {
            let ids = self.index.execute(&TextQuery::Term(term.clone()));
            candidates += ids.len();
            let ctxs = self.map_to_contexts(&ids)?;
            acc = Some(match acc {
                None => ctxs,
                Some(prev) => prev.into_iter().filter(|r| ctxs.contains(r)).collect(),
            });
            if acc.as_ref().map(|a| a.is_empty()).unwrap_or(false) {
                break;
            }
        }
        Ok((acc.unwrap_or_default(), candidates))
    }

    /// Maps text-hit node ids to their governing context rowids (deduped,
    /// in first-encounter order).
    fn map_to_contexts(&self, node_ids: &[u64]) -> Result<Vec<RowId>> {
        let mut seen: Vec<RowId> = Vec::new();
        for &nid in node_ids {
            let Some((rid, _)) = self.store.node_by_id(nid)? else {
                continue; // tombstoned in index but already gone from store
            };
            if let Some((ctx_rid, _)) = self.store.governing_context(rid)? {
                if !seen.contains(&ctx_rid) {
                    seen.push(ctx_rid);
                }
            }
        }
        Ok(seen)
    }

    /// Context rowids matching a `Context=` specification. A `|`-separated
    /// label list unions ("in NETMARK we have to specify two Context
    /// queries (one for 'Budget' and one for 'Cost Details')" — §4; the
    /// union form issues them as one client-side query, still with zero
    /// mapping artifacts).
    fn context_rowids(&self, spec: &str) -> Result<Vec<RowId>> {
        if spec.contains('|') {
            let mut out: Vec<RowId> = Vec::new();
            for label in spec.split('|').map(str::trim).filter(|l| !l.is_empty()) {
                for rid in self.context_rowids(label)? {
                    if !out.contains(&rid) {
                        out.push(rid);
                    }
                }
            }
            return Ok(out);
        }
        let label = spec;
        let exact = self.store.contexts_labeled(label)?;
        if !exact.is_empty() {
            return Ok(exact.into_iter().map(|(rid, _)| rid).collect());
        }
        // Fallback: phrase match over indexed labels (catches e.g.
        // Context=Budget against a "Budget Overview" heading).
        let ids = self.index.execute(&TextQuery::phrase(label));
        let mut out = Vec::new();
        for nid in ids {
            if let Some((rid, row)) = self.store.node_by_id(nid)? {
                if row.ntype == NodeType::Context && !out.contains(&rid) {
                    out.push(rid);
                }
            }
        }
        Ok(out)
    }

    /// Runs `query` and materializes the result set.
    pub fn execute(&self, query: &XdbQuery) -> Result<ResultSet> {
        let mut candidates = 0usize;
        let ctx_rowids: Vec<RowId> = match (&query.context, &query.content) {
            (None, None) => {
                // Unconstrained: every context in the store (bounded below
                // by the limit). Used by federation when augmenting a
                // source that answered a broader query.
                let mut out = Vec::new();
                for info in self.store.list_docs()? {
                    if let Some((root_rid, _)) = self.store.node_by_id(info.root_node)? {
                        collect_contexts(self.store, root_rid, &mut out)?;
                    }
                }
                out
            }
            (Some(label), None) => self.context_rowids(label)?,
            (None, Some(terms)) => {
                let (ctxs, cand) = self.content_contexts(terms, query.match_mode)?;
                candidates = cand;
                ctxs
            }
            (Some(label), Some(terms)) => {
                let labelled = self.context_rowids(label)?;
                let (with_content, cand) = self.content_contexts(terms, query.match_mode)?;
                candidates = cand;
                labelled
                    .into_iter()
                    .filter(|r| with_content.contains(r))
                    .collect()
            }
        };

        // Resolve document names once per doc. A missing DOC row means the
        // document vanished (or is being removed) between the index lookup
        // and here — skip such hits rather than failing the query.
        let mut doc_names: HashMap<DocId, Option<String>> = HashMap::new();
        let mut ordered: BTreeMap<(DocId, u64), Hit> = BTreeMap::new();
        for rid in ctx_rowids {
            let Ok(row) = self.store.node(rid) else {
                continue;
            };
            let doc_name = match doc_names.get(&row.doc_id) {
                Some(cached) => cached.clone(),
                None => {
                    let n = self.store.doc_info(row.doc_id).ok().map(|i| i.file_name);
                    doc_names.insert(row.doc_id, n.clone());
                    n
                }
            };
            let Some(doc_name) = doc_name else { continue };
            if let Some(wanted) = &query.doc {
                if &doc_name != wanted {
                    continue;
                }
            }
            let content = self.store.section_content(rid)?;
            ordered.insert(
                (row.doc_id, row.node_id),
                Hit {
                    source: String::new(),
                    doc: doc_name,
                    context: row.data.clone(),
                    content,
                    context_node: row.node_id,
                },
            );
        }
        let mut hits: Vec<Hit> = ordered.into_values().collect();
        let mut truncated = false;
        if let Some(limit) = query.limit {
            if hits.len() > limit {
                hits.truncate(limit);
                truncated = true;
            }
        }
        Ok(ResultSet {
            hits,
            candidates,
            truncated,
        })
    }
}

/// Depth-first collection of every CONTEXT node under `rid`.
fn collect_contexts(store: &NodeStore, rid: RowId, out: &mut Vec<RowId>) -> Result<()> {
    let row = store.node(rid)?;
    if row.ntype == NodeType::Context {
        out.push(rid);
    }
    let mut c = row.first_child;
    while let Some(crid) = c {
        collect_contexts(store, crid, out)?;
        c = store.node(crid)?.next_sibling;
    }
    Ok(())
}
