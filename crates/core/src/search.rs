//! Deprecated per-call query executor.
//!
//! The read path lives in [`crate::engine`] now: `NetMark` owns a
//! long-lived [`crate::engine::QueryEngine`] with result caching, parallel
//! term execution, and per-stage tracing. `Searcher` remains for one
//! release as a thin shim over the engine's serial stage functions so
//! out-of-tree callers keep compiling; it gains none of the engine's
//! caching or parallelism.

use crate::error::Result;
use crate::store::NodeStore;
use netmark_textindex::InvertedIndex;
use netmark_xdb::{ResultSet, XdbQuery};

/// Executes XDB queries over a [`NodeStore`] + [`InvertedIndex`] pair.
#[deprecated(
    since = "0.2.0",
    note = "use NetMark::query / NetMark::engine(), which cache and parallelize; \
            Searcher executes serially with no cache"
)]
pub struct Searcher<'a> {
    store: &'a NodeStore,
    index: &'a InvertedIndex,
}

#[allow(deprecated)]
impl<'a> Searcher<'a> {
    /// Borrows the store and index for one query.
    pub fn new(store: &'a NodeStore, index: &'a InvertedIndex) -> Searcher<'a> {
        Searcher { store, index }
    }

    /// Runs `query` and materializes the result set.
    pub fn execute(&self, query: &XdbQuery) -> Result<ResultSet> {
        crate::engine::execute_serial(self.store, self.index, query)
    }
}
