//! Read-path integration tests: the result cache must be transparent.
//!
//! The QueryEngine caches whole result sets stamped with the store
//! generation and the engine epoch; every ingest bumps both. These tests
//! check the contract from the outside: a cached answer is always the
//! answer a cold execution would give *right now*, no matter how queries
//! and ingest batches interleave — including when they race from multiple
//! threads.

use netmark::{NetMark, NetMarkOptions, QueryEngineOptions, XdbQuery};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

static SCRATCH_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("netmark-qe-it-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Small vocabulary so generated batches keep hitting the same queries —
/// a stale cache entry would be observably wrong, not just unlucky.
const VOCAB: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
const HEADINGS: &[&str] = &["Budget", "Safety", "Schedule"];

/// The fixed query pool every case replays between batches: single-term,
/// multi-term (exercises the parallel fan-out), context, and combined.
fn query_pool() -> Vec<XdbQuery> {
    let mut pool: Vec<XdbQuery> = VOCAB.iter().map(|t| XdbQuery::content(t)).collect();
    pool.push(XdbQuery::content("alpha beta"));
    pool.push(XdbQuery::content("gamma delta epsilon"));
    pool.extend(HEADINGS.iter().map(|h| XdbQuery::context(h)));
    pool.push(XdbQuery::context_content("Budget", "alpha"));
    pool
}

/// One generated document: a heading pick and a bag of vocabulary terms.
fn doc_text(heading: usize, terms: &[usize]) -> String {
    let words: Vec<&str> = terms.iter().map(|&t| VOCAB[t % VOCAB.len()]).collect();
    format!(
        "# {}\n{}\n",
        HEADINGS[heading % HEADINGS.len()],
        words.join(" ")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Cached results equal fresh results across interleaved ingest
    /// batches: priming the cache before each batch forces the engine to
    /// either invalidate on the generation/epoch bump or serve a stale
    /// (and detectably wrong) result set afterwards.
    #[test]
    fn cached_results_equal_fresh_across_ingest(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (0usize..HEADINGS.len(), proptest::collection::vec(0usize..VOCAB.len(), 1..5)),
                1..4,
            ),
            1..5,
        ),
    ) {
        let dir = scratch("prop");
        let nm = NetMark::open(&dir).unwrap();
        let pool = query_pool();
        let mut doc_no = 0usize;
        for batch in &batches {
            // Prime the cache with pre-batch answers.
            for q in &pool {
                nm.query(q).unwrap();
            }
            for (heading, terms) in batch {
                nm.insert_file(&format!("d{doc_no}.txt"), &doc_text(*heading, terms))
                    .unwrap();
                doc_no += 1;
            }
            // Every cached answer must now match a cache-bypassing cold
            // execution of the same query.
            for q in &pool {
                let cached = nm.query(q).unwrap();
                let fresh = nm.engine().execute_uncached(q).unwrap();
                prop_assert!(
                    cached == fresh,
                    "stale cache after ingest for {}",
                    q.to_query_string()
                );
                // And twice in a row is stable (second read is the hit path).
                let again = nm.query(q).unwrap();
                prop_assert_eq!(&again, &fresh);
            }
        }
        // The workload re-ran every pool query after every batch; some of
        // those must have been served by the cache (the two reads between
        // mutations), and every batch must have invalidated it.
        let stats = nm.query_stats();
        prop_assert!(stats.cache_hits > 0, "cache never hit");
        prop_assert!(stats.cache_misses as usize >= pool.len(), "cache never missed");
        drop(nm);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Queries hammering the engine from several threads during ingest see
/// internally consistent results: no errors, and — since this workload
/// only adds documents — per-query hit counts that never go backwards.
#[test]
fn concurrent_queries_during_ingest_stay_consistent() {
    let dir = scratch("conc");
    let nm = Arc::new(
        NetMark::open_with(
            &dir,
            NetMarkOptions {
                query: QueryEngineOptions {
                    workers: 2,
                    ..QueryEngineOptions::default()
                },
                ..NetMarkOptions::default()
            },
        )
        .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let pool = Arc::new(query_pool());

    let readers: Vec<_> = (0..4)
        .map(|r| {
            let nm = Arc::clone(&nm);
            let stop = Arc::clone(&stop);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut floor = vec![0usize; pool.len()];
                let mut executed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for (i, q) in pool.iter().enumerate() {
                        let rs = nm.query(q).unwrap_or_else(|e| {
                            panic!("reader {r}: query {} failed: {e}", q.to_query_string())
                        });
                        assert!(
                            rs.hits.len() >= floor[i],
                            "reader {r}: hits went backwards for {} ({} -> {})",
                            q.to_query_string(),
                            floor[i],
                            rs.hits.len()
                        );
                        floor[i] = rs.hits.len();
                        executed += 1;
                    }
                }
                executed
            })
        })
        .collect();

    // 20 ingest batches while the readers run; each insert bumps the
    // store generation and the engine epoch.
    for batch in 0..20usize {
        for d in 0..3usize {
            let terms: Vec<usize> = (0..=(batch + d) % 4)
                .map(|k| (batch + k) % VOCAB.len())
                .collect();
            nm.insert_file(&format!("c{batch}-{d}.txt"), &doc_text(batch + d, &terms))
                .unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let executed: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(executed > 0, "readers never got a query in");

    // Quiesced: the cache must now agree with cold execution everywhere.
    for q in pool.iter() {
        let cached = nm.query(q).unwrap();
        let fresh = nm.engine().execute_uncached(q).unwrap();
        assert_eq!(cached, fresh, "stale cache after the dust settled");
        assert!(
            !cached.hits.is_empty() || fresh.hits.is_empty(),
            "cached and fresh agree on emptiness"
        );
    }
    let stats = nm.query_stats();
    assert_eq!(stats.queries, stats.cache_hits + stats.cache_misses);
    assert!(stats.queries >= executed, "engine under-counted queries");

    drop(nm);
    std::fs::remove_dir_all(&dir).unwrap();
}
