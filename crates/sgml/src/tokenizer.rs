//! Lenient SGML/XML/HTML tokenizer.
//!
//! Produces a flat token stream; tree building and node typing happen in
//! [`crate::parser`]. The tokenizer never fails: malformed markup degrades
//! to text, as the paper's parser must survive arbitrary enterprise HTML.

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<name a="v" ...>` (or `<name ... />` with `self_closing`).
    StartTag {
        /// Element name (case preserved; HTML parsing lowercases later).
        name: String,
        /// Attributes in order of appearance.
        attrs: Vec<(String, String)>,
        /// Ends with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag(String),
    /// Character data (entity references *not* yet resolved).
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<![CDATA[ ... ]]>`.
    CData(String),
    /// `<!DOCTYPE ...>` or other `<!...>` declaration.
    Decl(String),
    /// `<? ... ?>` processing instruction.
    Pi(String),
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')
}

/// Tokenizes `input` completely.
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut text_start = 0usize;

    macro_rules! flush_text {
        ($upto:expr) => {
            if text_start < $upto {
                out.push(Token::Text(input[text_start..$upto].to_string()));
            }
        };
    }

    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Peek at what follows '<'.
        let rest = &input[i..];
        if rest.starts_with("<!--") {
            flush_text!(i);
            let end = rest.find("-->").map(|e| i + e + 3).unwrap_or(input.len());
            let body_end = end.saturating_sub(3).max(i + 4);
            out.push(Token::Comment(input[i + 4..body_end].to_string()));
            i = end;
            text_start = i;
            continue;
        }
        if rest.starts_with("<![CDATA[") {
            flush_text!(i);
            let end = rest.find("]]>").map(|e| i + e + 3).unwrap_or(input.len());
            let body_end = end.saturating_sub(3).max(i + 9);
            out.push(Token::CData(input[i + 9..body_end].to_string()));
            i = end;
            text_start = i;
            continue;
        }
        if rest.starts_with("<!") {
            flush_text!(i);
            let end = rest.find('>').map(|e| i + e + 1).unwrap_or(input.len());
            out.push(Token::Decl(
                input[i + 2..end.saturating_sub(1).max(i + 2)].to_string(),
            ));
            i = end;
            text_start = i;
            continue;
        }
        if rest.starts_with("<?") {
            flush_text!(i);
            let end = rest.find("?>").map(|e| i + e + 2).unwrap_or(input.len());
            let body_end = end.saturating_sub(2).max(i + 2);
            out.push(Token::Pi(input[i + 2..body_end].to_string()));
            i = end;
            text_start = i;
            continue;
        }
        if rest.starts_with("</") {
            // End tag.
            let after = &input[i + 2..];
            let mut chars = after.char_indices();
            match chars.next() {
                Some((_, c)) if is_name_start(c) => {
                    let name_end = after
                        .char_indices()
                        .find(|(_, c)| !is_name_char(*c))
                        .map(|(j, _)| j)
                        .unwrap_or(after.len());
                    let name = after[..name_end].to_string();
                    let close = after[name_end..]
                        .find('>')
                        .map(|j| i + 2 + name_end + j + 1)
                        .unwrap_or(input.len());
                    flush_text!(i);
                    out.push(Token::EndTag(name));
                    i = close;
                    text_start = i;
                    continue;
                }
                _ => {
                    // "</ " — not a tag; treat '<' as text.
                    i += 1;
                    continue;
                }
            }
        }
        // Start tag?
        let after = &input[i + 1..];
        let starts_name = after.chars().next().map(is_name_start).unwrap_or(false);
        if !starts_name {
            // Bare '<' in text.
            i += 1;
            continue;
        }
        let name_end = after
            .char_indices()
            .find(|(_, c)| !is_name_char(*c))
            .map(|(j, _)| j)
            .unwrap_or(after.len());
        let name = after[..name_end].to_string();
        // Scan attributes up to '>' (respecting quotes).
        let mut j = i + 1 + name_end;
        let mut attrs = Vec::new();
        let mut self_closing = false;
        let mut closed = false;
        while j < bytes.len() {
            // Skip whitespace.
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if j >= bytes.len() {
                break;
            }
            match bytes[j] {
                b'>' => {
                    j += 1;
                    closed = true;
                    break;
                }
                b'/' => {
                    if j + 1 < bytes.len() && bytes[j + 1] == b'>' {
                        self_closing = true;
                        j += 2;
                        closed = true;
                        break;
                    }
                    j += 1;
                }
                _ => {
                    // Attribute name.
                    let astart = j;
                    while j < bytes.len()
                        && !matches!(bytes[j], b'=' | b'>' | b'/')
                        && !(bytes[j] as char).is_whitespace()
                    {
                        j += 1;
                    }
                    let aname = input[astart..j].to_string();
                    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                        j += 1;
                    }
                    let mut aval = String::new();
                    if j < bytes.len() && bytes[j] == b'=' {
                        j += 1;
                        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                            j += 1;
                        }
                        if j < bytes.len() && (bytes[j] == b'"' || bytes[j] == b'\'') {
                            let quote = bytes[j];
                            j += 1;
                            let vstart = j;
                            while j < bytes.len() && bytes[j] != quote {
                                j += 1;
                            }
                            aval = input[vstart..j].to_string();
                            if j < bytes.len() {
                                j += 1; // closing quote
                            }
                        } else {
                            let vstart = j;
                            while j < bytes.len()
                                && !matches!(bytes[j], b'>' | b'/')
                                && !(bytes[j] as char).is_whitespace()
                            {
                                j += 1;
                            }
                            aval = input[vstart..j].to_string();
                        }
                    }
                    if !aname.is_empty() {
                        attrs.push((aname, aval));
                    }
                }
            }
        }
        if !closed && j >= bytes.len() {
            // Unterminated tag at EOF: accept it anyway.
        }
        flush_text!(i);
        out.push(Token::StartTag {
            name,
            attrs,
            self_closing,
        });
        i = j;
        text_start = i;
    }
    if text_start < input.len() {
        out.push(Token::Text(input[text_start..].to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: vec![],
            self_closing: false,
        }
    }

    #[test]
    fn simple_element() {
        let t = tokenize("<a>hi</a>");
        assert_eq!(
            t,
            vec![
                start("a"),
                Token::Text("hi".into()),
                Token::EndTag("a".into())
            ]
        );
    }

    #[test]
    fn attributes_all_quote_styles() {
        let t = tokenize(r#"<a x="1" y='2' z=3 w>"#);
        let Token::StartTag { name, attrs, .. } = &t[0] else {
            panic!("expected start tag");
        };
        assert_eq!(name, "a");
        assert_eq!(
            attrs,
            &vec![
                ("x".to_string(), "1".to_string()),
                ("y".to_string(), "2".to_string()),
                ("z".to_string(), "3".to_string()),
                ("w".to_string(), "".to_string()),
            ]
        );
    }

    #[test]
    fn self_closing() {
        let t = tokenize("<br/><img src=x/>");
        assert!(matches!(
            &t[0],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(
            &t[1],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
    }

    #[test]
    fn comments_cdata_decl_pi() {
        let t = tokenize("<!-- c --><![CDATA[<raw>]]><!DOCTYPE html><?xml version=\"1.0\"?>");
        assert_eq!(t[0], Token::Comment(" c ".into()));
        assert_eq!(t[1], Token::CData("<raw>".into()));
        assert_eq!(t[2], Token::Decl("DOCTYPE html".into()));
        assert!(matches!(&t[3], Token::Pi(p) if p.starts_with("xml")));
    }

    #[test]
    fn bare_angle_brackets_are_text() {
        let t = tokenize("1 < 2 and 3 > 2");
        assert_eq!(t, vec![Token::Text("1 < 2 and 3 > 2".into())]);
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let t = tokenize("<a href=\"x");
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "a"));
    }

    #[test]
    fn quoted_gt_inside_attr() {
        let t = tokenize(r#"<a title="a > b">t</a>"#);
        let Token::StartTag { attrs, .. } = &t[0] else {
            panic!("expected start tag");
        };
        assert_eq!(attrs[0].1, "a > b");
        assert_eq!(t[1], Token::Text("t".into()));
    }

    #[test]
    fn unicode_text_survives() {
        let t = tokenize("<p>café — ✓</p>");
        assert_eq!(t[1], Token::Text("café — ✓".into()));
    }

    #[test]
    fn stray_end_tag_noise() {
        let t = tokenize("x </ y>");
        // "</ " is not a tag: the whole thing is text.
        assert_eq!(t, vec![Token::Text("x </ y>".into())]);
    }
}
