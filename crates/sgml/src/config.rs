//! Node-typing configuration.
//!
//! The paper: *"The SGML parser is governed by five different node data
//! types, which are specified in the HTML or XML configuration files passed
//! by the daemon."* A [`NodeTypeConfig`] is that configuration file: it maps
//! element names to `CONTEXT` / `INTENSE` / `SIMULATION`, everything else
//! defaulting to `ELEMENT`.
//!
//! File format (one directive per line, `#` comments):
//!
//! ```text
//! # which elements open a section
//! context h1 h2 h3 h4 h5 h6 title Context heading
//! intense b i em strong u
//! simulation generated
//! case-insensitive
//! ```

use netmark_model::NodeType;
use std::collections::HashMap;

/// Maps element names to NETMARK node types.
#[derive(Debug, Clone)]
pub struct NodeTypeConfig {
    map: HashMap<String, NodeType>,
    /// Lowercase names before lookup (HTML mode).
    pub case_insensitive: bool,
}

impl NodeTypeConfig {
    /// An empty config: every element is `ELEMENT`.
    pub fn empty() -> NodeTypeConfig {
        NodeTypeConfig {
            map: HashMap::new(),
            case_insensitive: false,
        }
    }

    /// The stock HTML configuration: `h1`–`h6`, `title`, `caption` open
    /// contexts; `b`/`i`/`em`/`strong`/`u` are intense.
    pub fn html_default() -> NodeTypeConfig {
        let mut c = NodeTypeConfig::empty();
        c.case_insensitive = true;
        for h in ["h1", "h2", "h3", "h4", "h5", "h6", "title", "caption"] {
            c.set(h, NodeType::Context);
        }
        for e in ["b", "i", "em", "strong", "u", "mark"] {
            c.set(e, NodeType::Intense);
        }
        c
    }

    /// The stock XML configuration for upmarked documents: `Context`
    /// elements (any case) plus common heading names open contexts.
    pub fn xml_default() -> NodeTypeConfig {
        let mut c = NodeTypeConfig::empty();
        for n in [
            "Context", "context", "CONTEXT", "heading", "Heading", "title", "Title",
        ] {
            c.set(n, NodeType::Context);
        }
        for n in ["Intense", "intense", "em", "b", "strong"] {
            c.set(n, NodeType::Intense);
        }
        for n in ["Simulation", "simulation", "generated"] {
            c.set(n, NodeType::Simulation);
        }
        c
    }

    /// Assigns `name` the given type.
    pub fn set(&mut self, name: &str, t: NodeType) {
        let key = if self.case_insensitive {
            name.to_ascii_lowercase()
        } else {
            name.to_string()
        };
        self.map.insert(key, t);
    }

    /// Classifies an element name.
    pub fn classify(&self, name: &str) -> NodeType {
        let key = if self.case_insensitive {
            name.to_ascii_lowercase()
        } else {
            name.to_string()
        };
        self.map.get(&key).copied().unwrap_or(NodeType::Element)
    }

    /// Element names currently classified as `CONTEXT`.
    pub fn context_names(&self) -> Vec<&str> {
        self.map
            .iter()
            .filter(|(_, t)| **t == NodeType::Context)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Parses the configuration-file format described in the module docs.
    pub fn parse(text: &str) -> NodeTypeConfig {
        let mut c = NodeTypeConfig::empty();
        // Two passes so `case-insensitive` applies regardless of position.
        if text
            .lines()
            .any(|l| l.trim().eq_ignore_ascii_case("case-insensitive"))
        {
            c.case_insensitive = true;
        }
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let t = match parts.next() {
                Some("context") => NodeType::Context,
                Some("intense") => NodeType::Intense,
                Some("simulation") => NodeType::Simulation,
                Some("element") => NodeType::Element,
                _ => continue, // including "case-insensitive"
            };
            for name in parts {
                c.set(name, t);
            }
        }
        c
    }

    /// Loads a configuration file from disk ("the HTML or XML
    /// configuration files passed by the daemon" — paper §2.1.1).
    pub fn load_file(path: &std::path::Path) -> std::io::Result<NodeTypeConfig> {
        Ok(NodeTypeConfig::parse(&std::fs::read_to_string(path)?))
    }

    /// Persists the configuration to disk.
    pub fn save_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_config_file())
    }

    /// Serializes back to the configuration-file format.
    pub fn to_config_file(&self) -> String {
        let mut out = String::from("# netmark node-type configuration\n");
        if self.case_insensitive {
            out.push_str("case-insensitive\n");
        }
        for t in [NodeType::Context, NodeType::Intense, NodeType::Simulation] {
            let mut names: Vec<&str> = self
                .map
                .iter()
                .filter(|(_, v)| **v == t)
                .map(|(n, _)| n.as_str())
                .collect();
            if names.is_empty() {
                continue;
            }
            names.sort_unstable();
            out.push_str(match t {
                NodeType::Context => "context",
                NodeType::Intense => "intense",
                _ => "simulation",
            });
            for n in names {
                out.push(' ');
                out.push_str(n);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn html_default_classification() {
        let c = NodeTypeConfig::html_default();
        assert_eq!(c.classify("h1"), NodeType::Context);
        assert_eq!(c.classify("H2"), NodeType::Context, "case-insensitive");
        assert_eq!(c.classify("B"), NodeType::Intense);
        assert_eq!(c.classify("div"), NodeType::Element);
    }

    #[test]
    fn xml_default_is_case_sensitive() {
        let c = NodeTypeConfig::xml_default();
        assert_eq!(c.classify("Context"), NodeType::Context);
        assert_eq!(c.classify("CoNtExT"), NodeType::Element);
    }

    #[test]
    fn parse_round_trip() {
        let src = "# comment\ncase-insensitive\ncontext h1 sect\nintense b\nsimulation gen\n";
        let c = NodeTypeConfig::parse(src);
        assert!(c.case_insensitive);
        assert_eq!(c.classify("SECT"), NodeType::Context);
        assert_eq!(c.classify("gen"), NodeType::Simulation);
        let reparsed = NodeTypeConfig::parse(&c.to_config_file());
        assert_eq!(reparsed.classify("h1"), NodeType::Context);
        assert_eq!(reparsed.classify("b"), NodeType::Intense);
        assert!(reparsed.case_insensitive);
    }

    #[test]
    fn case_insensitive_directive_applies_to_earlier_lines() {
        let c = NodeTypeConfig::parse("context H1\ncase-insensitive\n");
        assert_eq!(c.classify("h1"), NodeType::Context);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("netmark-cfg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("html.cfg");
        let mut c = NodeTypeConfig::html_default();
        c.set("aside", NodeType::Context);
        c.save_file(&path).unwrap();
        let back = NodeTypeConfig::load_file(&path).unwrap();
        assert_eq!(back.classify("ASIDE"), NodeType::Context);
        assert_eq!(back.classify("h1"), NodeType::Context);
        assert_eq!(back.classify("b"), NodeType::Intense);
        assert!(NodeTypeConfig::load_file(&dir.join("missing.cfg")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn context_names_lists() {
        let c = NodeTypeConfig::parse("context a b\nintense c\n");
        let mut names = c.context_names();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }
}
