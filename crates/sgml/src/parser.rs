//! Tree construction: strict XML and lenient HTML parsing.
//!
//! Both parsers classify each element through a [`NodeTypeConfig`] as they
//! build — the tree arrives already typed, ready to be decomposed into the
//! store's `XML` table.

use crate::config::NodeTypeConfig;
use crate::tokenizer::{tokenize, Token};
use netmark_model::{unescape, Node};
use std::fmt;

/// XML parse error with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

fn make_element(name: &str, attrs: Vec<(String, String)>, config: &NodeTypeConfig) -> Node {
    Node {
        ntype: config.classify(name),
        name: name.to_string(),
        text: String::new(),
        attrs: attrs.into_iter().map(|(k, v)| (k, unescape(&v))).collect(),
        children: Vec::new(),
    }
}

/// Parses a well-formed XML document into a typed tree.
///
/// Strictness: exactly one root element, every start tag matched by its end
/// tag, no non-whitespace text outside the root. Comments, processing
/// instructions and declarations are skipped; CDATA becomes text.
pub fn parse_xml(input: &str, config: &NodeTypeConfig) -> Result<Node, ParseError> {
    let tokens = tokenize(input);
    let mut stack: Vec<Node> = Vec::new();
    let mut root: Option<Node> = None;

    let attach =
        |stack: &mut Vec<Node>, root: &mut Option<Node>, node: Node| -> Result<(), ParseError> {
            if let Some(parent) = stack.last_mut() {
                parent.children.push(node);
                Ok(())
            } else if root.is_none() {
                *root = Some(node);
                Ok(())
            } else {
                Err(err("multiple root elements"))
            }
        };

    for tok in tokens {
        match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                let node = make_element(&name, attrs, config);
                if self_closing {
                    attach(&mut stack, &mut root, node)?;
                } else {
                    stack.push(node);
                }
            }
            Token::EndTag(name) => {
                let node = stack
                    .pop()
                    .ok_or_else(|| err(format!("unmatched end tag </{name}>")))?;
                if node.name != name {
                    return Err(err(format!(
                        "mismatched end tag: expected </{}>, found </{}>",
                        node.name, name
                    )));
                }
                attach(&mut stack, &mut root, node)?;
            }
            Token::Text(t) => {
                let resolved = unescape(&t);
                if stack.is_empty() {
                    if !resolved.trim().is_empty() {
                        return Err(err("text outside the root element"));
                    }
                } else if !resolved.trim().is_empty() {
                    stack
                        .last_mut()
                        .expect("non-empty stack")
                        .children
                        .push(Node::text(&resolved));
                }
            }
            Token::CData(t) => {
                if let Some(parent) = stack.last_mut() {
                    parent.children.push(Node::text(&t));
                } else if !t.trim().is_empty() {
                    return Err(err("CDATA outside the root element"));
                }
            }
            Token::Comment(_) | Token::Decl(_) | Token::Pi(_) => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(err(format!("unclosed element <{}>", open.name)));
    }
    root.ok_or_else(|| err("no root element"))
}

/// Elements that never have children in HTML.
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// `(incoming tag, tags it implicitly closes)` — the minimal HTML5-ish
/// auto-close table needed for real-world pages.
const AUTO_CLOSE: &[(&str, &[&str])] = &[
    ("p", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("h1", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("h2", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("h3", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("h4", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("h5", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("h6", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("div", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("table", &["p", "h1", "h2", "h3", "h4", "h5", "h6"]),
    ("li", &["li"]),
    ("dt", &["dt", "dd"]),
    ("dd", &["dt", "dd"]),
    ("tr", &["tr", "td", "th"]),
    ("td", &["td", "th"]),
    ("th", &["td", "th"]),
    ("option", &["option"]),
    ("thead", &["tr", "td", "th"]),
    ("tbody", &["tr", "td", "th", "thead"]),
];

/// Parses arbitrary HTML into a typed tree. Never fails: tags are
/// lowercased, void elements close themselves, unmatched end tags are
/// dropped, unclosed elements close at the end. If the markup does not have
/// a single `html` root, one is synthesized (a `SIMULATION` node).
pub fn parse_html(input: &str, config: &NodeTypeConfig) -> Node {
    let tokens = tokenize(input);
    // The bottom of the stack is a synthetic holder for top-level nodes.
    let mut holder = Node::simulation("#document");
    let mut stack: Vec<Node> = Vec::new();

    fn close_one(stack: &mut Vec<Node>, holder: &mut Node) {
        if let Some(done) = stack.pop() {
            match stack.last_mut() {
                Some(parent) => parent.children.push(done),
                None => holder.children.push(done),
            }
        }
    }

    for tok in tokens {
        match tok {
            Token::StartTag {
                name,
                attrs,
                mut self_closing,
            } => {
                let name = name.to_ascii_lowercase();
                if VOID_ELEMENTS.contains(&name.as_str()) {
                    self_closing = true;
                }
                // Implicit closes.
                if let Some((_, closes)) = AUTO_CLOSE.iter().find(|(tag, _)| *tag == name.as_str())
                {
                    while let Some(open) = stack.last() {
                        if closes.contains(&open.name.as_str()) {
                            close_one(&mut stack, &mut holder);
                        } else {
                            break;
                        }
                    }
                }
                let node = make_element(&name, attrs, config);
                if self_closing {
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => holder.children.push(node),
                    }
                } else {
                    stack.push(node);
                }
            }
            Token::EndTag(name) => {
                let name = name.to_ascii_lowercase();
                // Only act if the tag is actually open somewhere.
                if stack.iter().any(|n| n.name == name) {
                    while let Some(open) = stack.last() {
                        let found = open.name == name;
                        close_one(&mut stack, &mut holder);
                        if found {
                            break;
                        }
                    }
                }
            }
            Token::Text(t) => {
                let resolved = unescape(&t);
                if resolved.trim().is_empty() {
                    continue;
                }
                let node = Node::text(&resolved);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => holder.children.push(node),
                }
            }
            Token::CData(t) => {
                let node = Node::text(&t);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => holder.children.push(node),
                }
            }
            Token::Comment(_) | Token::Decl(_) | Token::Pi(_) => {}
        }
    }
    while !stack.is_empty() {
        close_one(&mut stack, &mut holder);
    }
    // Collapse to a natural root.
    if holder.children.len() == 1 && holder.children[0].name == "html" {
        holder.children.pop().expect("checked length")
    } else {
        holder.name = "html".to_string();
        holder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark_model::NodeType;

    fn xmlc() -> NodeTypeConfig {
        NodeTypeConfig::xml_default()
    }

    fn htmlc() -> NodeTypeConfig {
        NodeTypeConfig::html_default()
    }

    #[test]
    fn xml_basic_tree() {
        let n = parse_xml("<doc><a>1</a><b x=\"2\">t</b></doc>", &xmlc()).unwrap();
        assert_eq!(n.name, "doc");
        assert_eq!(n.children.len(), 2);
        assert_eq!(n.children[1].attr("x"), Some("2"));
        assert_eq!(n.children[1].text_content(), "t");
    }

    #[test]
    fn xml_classifies_context() {
        let n = parse_xml("<doc><Context>Abstract</Context><p>body</p></doc>", &xmlc()).unwrap();
        assert_eq!(n.children[0].ntype, NodeType::Context);
        assert_eq!(n.children[1].ntype, NodeType::Element);
    }

    #[test]
    fn xml_entities_resolved() {
        let n = parse_xml("<a t=\"&lt;x&gt;\">&amp;&#65;</a>", &xmlc()).unwrap();
        assert_eq!(n.attr("t"), Some("<x>"));
        assert_eq!(n.text_content(), "&A");
    }

    #[test]
    fn xml_cdata_is_raw_text() {
        let n = parse_xml("<a><![CDATA[1 < 2 & raw]]></a>", &xmlc()).unwrap();
        assert_eq!(n.children[0].text, "1 < 2 & raw");
    }

    #[test]
    fn xml_errors() {
        assert!(parse_xml("<a><b></a></b>", &xmlc()).is_err());
        assert!(parse_xml("<a>", &xmlc()).is_err());
        assert!(parse_xml("</a>", &xmlc()).is_err());
        assert!(parse_xml("<a/><b/>", &xmlc()).is_err());
        assert!(parse_xml("text only", &xmlc()).is_err());
        assert!(parse_xml("", &xmlc()).is_err());
    }

    #[test]
    fn xml_round_trip_through_serializer() {
        let src = "<doc><Context>Intro</Context><p a=\"1\">hello <b>world</b></p></doc>";
        let n = parse_xml(src, &xmlc()).unwrap();
        let n2 = parse_xml(&n.to_xml(), &xmlc()).unwrap();
        assert_eq!(n, n2);
    }

    #[test]
    fn html_messy_input_survives() {
        let n = parse_html(
            "<HTML><Body><H1>Title<p>para one<p>para two<br><li>item",
            &htmlc(),
        );
        assert_eq!(n.name, "html");
        let h1 = n.find("h1").unwrap();
        assert_eq!(h1.ntype, NodeType::Context);
        // The two <p>s are siblings (auto-closed), not nested.
        let body = n.find("body").unwrap();
        let ps = body.find_all("p");
        assert_eq!(ps.len(), 2);
        assert!(ps[0].find("p").is_none() || ps[0].find_all("p").len() == 1);
    }

    #[test]
    fn html_void_elements_do_not_nest() {
        let n = parse_html("<div><br><img src=\"x\"><span>s</span></div>", &htmlc());
        let div = n.find("div").unwrap();
        assert_eq!(div.children.len(), 3);
        assert_eq!(div.children[2].text_content(), "s");
    }

    #[test]
    fn html_unmatched_end_tags_dropped() {
        let n = parse_html("<div>a</span></div>b", &htmlc());
        assert_eq!(n.find("div").unwrap().text_content(), "a");
        assert!(n.text_content().contains('b'));
    }

    #[test]
    fn html_synthesizes_root_when_needed() {
        let n = parse_html("<p>one</p><p>two</p>", &htmlc());
        assert_eq!(n.name, "html");
        assert_eq!(n.ntype, NodeType::Simulation, "synthesized root");
        assert_eq!(n.find_all("p").len(), 2);
    }

    #[test]
    fn html_single_html_root_not_wrapped() {
        let n = parse_html("<html><body>x</body></html>", &htmlc());
        assert_eq!(n.name, "html");
        assert_eq!(n.ntype, NodeType::Element);
    }

    #[test]
    fn html_intense_classification() {
        let n = parse_html("<p><b>bold</b> and <em>em</em></p>", &htmlc());
        assert_eq!(n.find("b").unwrap().ntype, NodeType::Intense);
        assert_eq!(n.find("em").unwrap().ntype, NodeType::Intense);
    }

    #[test]
    fn html_table_auto_close() {
        let n = parse_html("<table><tr><td>a<td>b<tr><td>c</table>", &htmlc());
        let table = n.find("table").unwrap();
        assert_eq!(table.find_all("tr").len(), 2);
        assert_eq!(table.find_all("td").len(), 3);
    }

    #[test]
    fn html_empty_input() {
        let n = parse_html("", &htmlc());
        assert_eq!(n.name, "html");
        assert!(n.children.is_empty());
    }
}
