//! `netmark-sgml`: the NETMARK "SGML parser" (Fig 3).
//!
//! Decomposes XML and HTML documents into typed node trees. The parser is
//! "governed by five different node data types, which are specified in the
//! HTML or XML configuration files passed by the daemon" (paper §2.1.1):
//! a [`NodeTypeConfig`] names which elements are `CONTEXT` (headings),
//! `INTENSE` (emphasis) or `SIMULATION` (synthesized); everything else is
//! `ELEMENT`, and character data is `TEXT`.
//!
//! - [`parse_xml`] is strict (well-formedness errors are reported);
//! - [`parse_html`] is lenient and never fails — real-world enterprise HTML
//!   parses into *something* useful, as the paper requires.

#![warn(missing_docs)]

pub mod config;
pub mod parser;
pub mod tokenizer;

pub use config::NodeTypeConfig;
pub use parser::{parse_html, parse_xml, ParseError};
pub use tokenizer::{tokenize, Token};
