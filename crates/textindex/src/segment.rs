//! Immutable index segments and the in-memory memtable that seals into them.
//!
//! The segmented index is LSM-shaped: ingest accumulates postings in a
//! [`MemTable`], and each commit seals the memtable into an immutable
//! [`Segment`]. Because the store allocates node ids monotonically and
//! ingest is serialized, consecutive segments cover *disjoint, ascending*
//! id ranges. That invariant is what makes snapshot evaluation cheap: any
//! query result within a segment is a subset of that segment's id range, so
//! per-segment results concatenate in segment order into one globally
//! ascending id list — byte-identical to what the single-map
//! [`InvertedIndex`](crate::InvertedIndex) would return.

use crate::postings::{difference, intersect_adaptive, kway_union, PostingList};
use crate::tokenize::tokenize_text;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, HashSet};

/// The active in-memory run: postings for documents added since the last
/// commit. Sealing is a move — the memtable's maps become the segment's.
#[derive(Debug, Default)]
pub struct MemTable {
    terms: BTreeMap<String, PostingList>,
    ids: Vec<u64>,
    /// Token count per id, parallel to `ids` (BM25 length normalization).
    lengths: Vec<u32>,
    postings: usize,
}

impl MemTable {
    /// Empty memtable.
    pub fn new() -> MemTable {
        MemTable::default()
    }

    /// Indexes `text` under `id`. Ids must ascend within the memtable;
    /// violations are reported as `false` and skipped. (The owning
    /// [`SegmentedIndex`](crate::SegmentedIndex) additionally enforces
    /// ascent across sealed segments.)
    pub fn add(&mut self, id: u64, text: &str) -> bool {
        if let Some(&last) = self.ids.last() {
            if id <= last {
                return false;
            }
        }
        let mut per_term: HashMap<String, Vec<u32>> = HashMap::new();
        let mut tokens = 0u32;
        for tok in tokenize_text(text) {
            per_term.entry(tok.term).or_default().push(tok.position);
            tokens += 1;
        }
        self.ids.push(id);
        self.lengths.push(tokens);
        for (term, positions) in per_term {
            let pl = self.terms.entry(term).or_default();
            pl.push(id, &positions);
            self.postings += 1;
        }
        true
    }

    /// Number of documents buffered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when `id` is buffered in this memtable.
    pub fn contains(&self, id: u64) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Seals the memtable into an immutable segment with identity `seg_id`,
    /// leaving the memtable empty.
    pub fn seal(&mut self, seg_id: u64) -> Segment {
        let taken = std::mem::take(self);
        let length_total = taken.lengths.iter().map(|&l| l as u64).sum();
        Segment {
            id: seg_id,
            terms: taken.terms,
            ids: taken.ids,
            lengths: taken.lengths,
            length_total,
            postings: taken.postings,
        }
    }
}

/// One immutable sorted run of the index: a term → posting-list map plus
/// the ascending list of node ids it covers. Never mutated after sealing;
/// compaction replaces segments wholesale instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    id: u64,
    terms: BTreeMap<String, PostingList>,
    ids: Vec<u64>,
    /// Token count per id, parallel to `ids`. Stored segment metadata so
    /// ranked (BM25) search can length-normalize without rescanning
    /// postings per query.
    lengths: Vec<u32>,
    /// Sum of `lengths` (avgdl numerator, precomputed at seal time).
    length_total: u64,
    postings: usize,
}

impl Segment {
    /// Builds a segment directly from parts (legacy-index migration and
    /// compaction merges). Length statistics are recomputed from the
    /// postings: a doc's token count is exactly the sum of its position
    /// counts across terms, since every token lands as one position entry
    /// in exactly one term's posting.
    pub(crate) fn from_parts(
        id: u64,
        terms: BTreeMap<String, PostingList>,
        ids: Vec<u64>,
        postings: usize,
    ) -> Segment {
        let lengths = lengths_from_postings(&terms, &ids);
        let length_total = lengths.iter().map(|&l| l as u64).sum();
        Segment {
            id,
            terms,
            ids,
            lengths,
            length_total,
            postings,
        }
    }

    /// Segment identity (unique within one index lifetime; names the
    /// on-disk file).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Smallest node id covered, if any.
    pub fn min_id(&self) -> Option<u64> {
        self.ids.first().copied()
    }

    /// Largest node id covered, if any.
    pub fn max_id(&self) -> Option<u64> {
        self.ids.last().copied()
    }

    /// Number of documents in the segment (tombstones are tracked at the
    /// snapshot level, not here).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the segment covers no documents.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total postings stored.
    pub fn postings(&self) -> usize {
        self.postings
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Compressed bytes across posting lists.
    pub fn byte_size(&self) -> usize {
        self.terms.values().map(|p| p.byte_size()).sum()
    }

    /// Total skip blocks across posting lists (zero for a legacy v2/v1
    /// segment that has not been rewritten by compaction yet).
    pub fn blocks_total(&self) -> usize {
        self.terms.values().map(|p| p.blocks().len()).sum()
    }

    /// All node ids covered, ascending.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// True when `id` is covered by this segment.
    pub fn contains(&self, id: u64) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Token count of `id`, if this segment covers it.
    pub fn length_of(&self, id: u64) -> Option<u32> {
        self.ids.binary_search(&id).ok().map(|i| self.lengths[i])
    }

    /// Token counts per covered id, parallel to [`Segment::ids`].
    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    /// Total token count across covered ids (the avgdl numerator).
    pub fn length_total(&self) -> u64 {
        self.length_total
    }

    /// Iterates `(term, posting list)` pairs in term order (compaction and
    /// ranked search).
    pub fn terms(&self) -> impl Iterator<Item = (&str, &PostingList)> {
        self.terms.iter().map(|(t, pl)| (t.as_str(), pl))
    }

    /// Posting list for one term, if present.
    pub fn posting(&self, term: &str) -> Option<&PostingList> {
        self.terms.get(term)
    }

    /// Evaluates `query` against this segment only, returning matching ids
    /// ascending (tombstones not applied). Set operations distribute over
    /// the disjoint segment id ranges, so evaluating per segment and
    /// concatenating is equivalent to evaluating against one merged index.
    pub fn eval(&self, query: &crate::TextQuery) -> Cow<'_, [u64]> {
        match self.eval_inner(query) {
            Eval::Ids(v) => Cow::Owned(v),
            Eval::All => Cow::Borrowed(self.ids.as_slice()),
        }
    }

    fn term_ids(&self, term: &str) -> Vec<u64> {
        self.terms.get(term).map(|p| p.ids()).unwrap_or_default()
    }

    fn eval_inner(&self, query: &crate::TextQuery) -> Eval {
        use crate::TextQuery;
        match query {
            TextQuery::Term(t) => Eval::Ids(self.term_ids(t)),
            TextQuery::All => Eval::All,
            TextQuery::And(qs) => {
                // `All` is the identity for intersection — drop those
                // operands instead of materializing the universe. The rest
                // are intersected smallest-first (selectivity order) with an
                // adaptive galloping merge, so one rare term prunes the
                // whole conjunction cheaply.
                let mut lists: Vec<Vec<u64>> = Vec::with_capacity(qs.len());
                for q in qs {
                    match self.eval_inner(q) {
                        Eval::All => continue,
                        Eval::Ids(v) => {
                            if v.is_empty() {
                                return Eval::Ids(Vec::new());
                            }
                            lists.push(v);
                        }
                    }
                }
                match lists.len() {
                    0 => Eval::All,
                    1 => Eval::Ids(lists.pop().expect("len checked")),
                    _ => {
                        lists.sort_by_key(|l| l.len());
                        let mut it = lists.into_iter();
                        let mut acc = it.next().expect("len checked");
                        for l in it {
                            if acc.is_empty() {
                                break;
                            }
                            acc = intersect_adaptive(&acc, &l);
                        }
                        Eval::Ids(acc)
                    }
                }
            }
            TextQuery::Or(qs) => {
                let mut lists: Vec<Vec<u64>> = Vec::with_capacity(qs.len());
                for q in qs {
                    match self.eval_inner(q) {
                        // Union with the universe is the universe.
                        Eval::All => return Eval::All,
                        Eval::Ids(v) => lists.push(v),
                    }
                }
                Eval::Ids(kway_union(&lists))
            }
            TextQuery::Not(a, b) => {
                let b = match self.eval_inner(b) {
                    // Everything matches `b`: nothing survives (every eval
                    // result is a subset of the segment's universe).
                    Eval::All => return Eval::Ids(Vec::new()),
                    Eval::Ids(v) => v,
                };
                let out = match self.eval_inner(a) {
                    // Stream the difference off the stored id slice rather
                    // than cloning the universe first.
                    Eval::All => difference(&self.ids, &b),
                    Eval::Ids(a) => difference(&a, &b),
                };
                Eval::Ids(out)
            }
            TextQuery::Prefix(p) => {
                let lists: Vec<Vec<u64>> = self
                    .terms
                    .range::<str, _>((
                        std::ops::Bound::Included(p.as_str()),
                        std::ops::Bound::Unbounded,
                    ))
                    .take_while(|(t, _)| t.starts_with(p.as_str()))
                    .map(|(_, pl)| pl.ids())
                    .collect();
                Eval::Ids(kway_union(&lists))
            }
            TextQuery::Phrase(terms) => self.eval_phrase(terms),
        }
    }

    fn eval_phrase(&self, terms: &[String]) -> Eval {
        if terms.is_empty() {
            return Eval::All;
        }
        if terms.len() == 1 {
            return Eval::Ids(self.term_ids(&terms[0]));
        }
        let lists: Vec<&PostingList> = match terms
            .iter()
            .map(|t| self.terms.get(t))
            .collect::<Option<Vec<_>>>()
        {
            Some(l) => l,
            None => return Eval::Ids(Vec::new()),
        };
        let mut candidates = lists[0].ids();
        for l in &lists[1..] {
            candidates = intersect_adaptive(&candidates, &l.ids());
            if candidates.is_empty() {
                return Eval::Ids(candidates);
            }
        }
        let cand: HashSet<u64> = candidates.iter().copied().collect();
        let mut positions: HashMap<u64, Vec<Vec<u32>>> = cand
            .iter()
            .map(|&id| (id, vec![Vec::new(); terms.len()]))
            .collect();
        for (ti, l) in lists.iter().enumerate() {
            for p in l.iter() {
                if let Some(slot) = positions.get_mut(&p.id) {
                    slot[ti] = p.positions;
                }
            }
        }
        let mut out: Vec<u64> = positions
            .into_iter()
            .filter(|(_, per_term)| {
                let rest: Vec<&Vec<u32>> = per_term[1..].iter().collect();
                per_term[0].iter().any(|&p0| {
                    rest.iter()
                        .enumerate()
                        .all(|(i, ps)| ps.binary_search(&(p0 + i as u32 + 1)).is_ok())
                })
            })
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        Eval::Ids(out)
    }

    /// Accumulates term-frequency scores for `terms` into `scores`,
    /// skipping tombstoned ids (ranked search across a snapshot).
    pub(crate) fn score_terms(
        &self,
        terms: &[String],
        tombstones: &HashSet<u64>,
        scores: &mut HashMap<u64, u32>,
    ) {
        for t in terms {
            if let Some(pl) = self.terms.get(t) {
                for p in pl.iter() {
                    if !tombstones.contains(&p.id) {
                        *scores.entry(p.id).or_default() += p.positions.len() as u32;
                    }
                }
            }
        }
    }

    /// Serializes the segment (`NMTXSEG3`: the `NMTXSEG2` layout with each
    /// term's posting list carrying its skip-block metadata — block byte
    /// offsets, last ids, entry counts, and per-block max term frequency —
    /// so ranked search can bound and skip whole blocks without decoding).
    pub fn serialize(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.byte_size() + 1024);
        buf.extend_from_slice(b"NMTXSEG3");
        put(&mut buf, self.id);
        put(&mut buf, self.terms.len() as u64);
        for (term, pl) in &self.terms {
            put(&mut buf, term.len() as u64);
            buf.extend_from_slice(term.as_bytes());
            pl.serialize_with_blocks(&mut buf);
        }
        self.serialize_tail(&mut buf);
        buf
    }

    /// Serializes in the pre-block `NMTXSEG2` layout — kept callable so
    /// compatibility tests can fabricate the files older installs left
    /// behind.
    pub fn serialize_legacy(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.byte_size() + 1024);
        buf.extend_from_slice(b"NMTXSEG2");
        put(&mut buf, self.id);
        put(&mut buf, self.terms.len() as u64);
        for (term, pl) in &self.terms {
            put(&mut buf, term.len() as u64);
            buf.extend_from_slice(term.as_bytes());
            pl.serialize(&mut buf);
        }
        self.serialize_tail(&mut buf);
        buf
    }

    /// The id + length sections shared by every segment version.
    fn serialize_tail(&self, buf: &mut Vec<u8>) {
        put(buf, self.ids.len() as u64);
        let mut prev = 0u64;
        for (i, &id) in self.ids.iter().enumerate() {
            put(buf, if i == 0 { id } else { id - prev });
            prev = id;
        }
        for &l in &self.lengths {
            put(buf, l as u64);
        }
    }

    /// Inverse of [`Segment::serialize`]; `None` on corrupt input.
    ///
    /// Reads all three on-disk versions: `NMTXSEG3` carries skip blocks,
    /// `NMTXSEG2` lacks them (its lists load blockless and ranked search
    /// falls back to exhaustive scoring until compaction rewrites the
    /// segment), and a pre-ranking `NMTXSEG1` file additionally lacks the
    /// length section, which is recomputed from the postings on load (see
    /// [`Segment::from_parts`]) — an existing index upgrades in place
    /// without a rebuild.
    pub fn deserialize(buf: &[u8]) -> Option<Segment> {
        let (v2, v3) = match buf.get(..8)? {
            b"NMTXSEG3" => (true, true),
            b"NMTXSEG2" => (true, false),
            b"NMTXSEG1" => (false, false),
            _ => return None,
        };
        let mut pos = 8usize;
        let id = get(buf, &mut pos)?;
        let nterms = get(buf, &mut pos)? as usize;
        let mut terms = BTreeMap::new();
        let mut postings = 0usize;
        for _ in 0..nterms {
            let tlen = get(buf, &mut pos)? as usize;
            let end = pos.checked_add(tlen).filter(|&e| e <= buf.len())?;
            let term = std::str::from_utf8(&buf[pos..end]).ok()?.to_string();
            pos = end;
            let pl = if v3 {
                PostingList::deserialize_with_blocks(buf, &mut pos)?
            } else {
                PostingList::deserialize(buf, &mut pos)?
            };
            postings += pl.len();
            terms.insert(term, pl);
        }
        let nids = get(buf, &mut pos)? as usize;
        let mut ids = Vec::with_capacity(nids);
        let mut prev = 0u64;
        for i in 0..nids {
            let gap = get(buf, &mut pos)?;
            let idv = if i == 0 { gap } else { prev.checked_add(gap)? };
            ids.push(idv);
            prev = idv;
        }
        let lengths = if v2 {
            let mut lengths = Vec::with_capacity(nids);
            for _ in 0..nids {
                lengths.push(u32::try_from(get(buf, &mut pos)?).ok()?);
            }
            lengths
        } else {
            lengths_from_postings(&terms, &ids)
        };
        let length_total = lengths.iter().map(|&l| l as u64).sum();
        Some(Segment {
            id,
            terms,
            ids,
            lengths,
            length_total,
            postings,
        })
    }
}

/// Recovers per-id token counts from postings: every token of a doc is one
/// position entry in exactly one term's posting list, so the doc length is
/// the sum of its position counts across terms. Ids with no postings
/// (empty or all-stopword text) count 0.
pub(crate) fn lengths_from_postings(
    terms: &BTreeMap<String, PostingList>,
    ids: &[u64],
) -> Vec<u32> {
    let mut by_id: HashMap<u64, u32> = HashMap::with_capacity(ids.len());
    for pl in terms.values() {
        for p in pl.iter() {
            *by_id.entry(p.id).or_default() += p.positions.len() as u32;
        }
    }
    ids.iter()
        .map(|id| by_id.get(id).copied().unwrap_or(0))
        .collect()
}

/// Internal evaluation result: either a materialized ascending id list or
/// "every id in the segment" (left symbolic so `All` costs nothing as an
/// `And` operand and `Not` can stream off the stored slice).
enum Eval {
    Ids(Vec<u64>),
    All,
}

pub(crate) fn put(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

pub(crate) fn get(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TextQuery;

    fn sealed() -> Segment {
        let mut mt = MemTable::new();
        mt.add(1, "The space shuttle program");
        mt.add(2, "Shuttle engine anomaly report");
        mt.add(3, "Budget overview for the technology gap");
        mt.add(4, "The technology gap is shrinking fast");
        mt.seal(7)
    }

    #[test]
    fn memtable_seals_into_segment() {
        let mut mt = MemTable::new();
        assert!(mt.is_empty());
        assert!(mt.add(5, "alpha beta"));
        assert!(!mt.add(5, "dup"), "non-ascending add rejected");
        assert!(mt.add(9, "beta gamma"));
        assert_eq!(mt.len(), 2);
        let seg = mt.seal(1);
        assert!(mt.is_empty(), "seal drains the memtable");
        assert_eq!(seg.id(), 1);
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.min_id(), Some(5));
        assert_eq!(seg.max_id(), Some(9));
        assert!(seg.contains(9));
        assert!(!seg.contains(6));
        assert_eq!(seg.eval(&TextQuery::Term("beta".into())).as_ref(), &[5, 9]);
    }

    #[test]
    fn segment_eval_matches_inverted_index() {
        let seg = sealed();
        let mut ix = crate::InvertedIndex::new();
        ix.add(1, "The space shuttle program");
        ix.add(2, "Shuttle engine anomaly report");
        ix.add(3, "Budget overview for the technology gap");
        ix.add(4, "The technology gap is shrinking fast");
        let queries = vec![
            TextQuery::Term("shuttle".into()),
            TextQuery::Term("missing".into()),
            TextQuery::All,
            TextQuery::And(vec![]),
            TextQuery::And(vec![TextQuery::All, TextQuery::Term("the".into())]),
            TextQuery::keywords("technology gap"),
            TextQuery::Or(vec![
                TextQuery::Term("budget".into()),
                TextQuery::Term("engine".into()),
                TextQuery::All,
            ]),
            TextQuery::Not(
                Box::new(TextQuery::All),
                Box::new(TextQuery::Term("shuttle".into())),
            ),
            TextQuery::Not(
                Box::new(TextQuery::Term("the".into())),
                Box::new(TextQuery::All),
            ),
            TextQuery::phrase("technology gap"),
            TextQuery::phrase("gap technology"),
            TextQuery::Prefix("shut".into()),
            TextQuery::Prefix("t".into()),
            TextQuery::Prefix("zz".into()),
        ];
        for q in &queries {
            assert_eq!(seg.eval(q).as_ref(), ix.execute(q).as_slice(), "{q:?}");
        }
    }

    #[test]
    fn serialize_round_trip() {
        let seg = sealed();
        let buf = seg.serialize();
        assert_eq!(&buf[..8], b"NMTXSEG3");
        let back = Segment::deserialize(&buf).expect("round trip");
        assert_eq!(back, seg);
        for (term, pl) in &seg.terms {
            let loaded = back.posting(term).expect("term survives");
            assert_eq!(loaded.blocks(), pl.blocks(), "skip blocks survive {term}");
            assert!(loaded.has_blocks(), "v3 lists stay skippable: {term}");
        }
        assert!(Segment::deserialize(&buf[..buf.len() - 1]).is_none());
        assert!(Segment::deserialize(b"garbage").is_none());
    }

    #[test]
    fn legacy_seg2_files_load_blockless() {
        // A pre-block NMTXSEG2 file must load with identical postings and
        // lengths; its lists carry no skip metadata, which is what routes
        // ranked search to the exhaustive fallback until compaction
        // rewrites the segment as v3.
        let seg = sealed();
        let v2 = seg.serialize_legacy();
        assert_eq!(&v2[..8], b"NMTXSEG2");
        let back = Segment::deserialize(&v2).expect("v2 compat");
        assert_eq!(back, seg);
        assert_eq!(back.length_total(), seg.length_total());
        for term in seg.terms.keys() {
            let loaded = back.posting(term).expect("term survives");
            assert!(loaded.blocks().is_empty(), "v2 lists load blockless");
        }
    }

    #[test]
    fn length_stats_follow_token_counts() {
        let mut mt = MemTable::new();
        mt.add(5, "alpha beta");
        mt.add(9, "alpha alpha alpha beta gamma");
        let seg = mt.seal(1);
        assert_eq!(seg.length_of(5), Some(2));
        assert_eq!(seg.length_of(9), Some(5));
        assert_eq!(seg.length_of(6), None);
        assert_eq!(seg.lengths(), &[2, 5]);
        assert_eq!(seg.length_total(), 7);
    }

    #[test]
    fn from_parts_recomputes_lengths_from_postings() {
        // The compaction/migration path carries no length section; the
        // recomputed stats must match what sealing counted directly.
        let seg = sealed();
        let rebuilt =
            Segment::from_parts(seg.id(), seg.terms.clone(), seg.ids.clone(), seg.postings());
        assert_eq!(rebuilt, seg);
        assert_eq!(rebuilt.length_total(), seg.length_total());
    }

    #[test]
    fn legacy_seg1_files_load_with_recomputed_lengths() {
        // Strip the trailing length section and downgrade the magic: that
        // is exactly a pre-ranking NMTXSEG1 file. It must load, with the
        // lengths rebuilt from postings — no index rebuild on upgrade.
        let seg = sealed();
        let mut v1 = seg.serialize_legacy();
        assert!(
            seg.lengths().iter().all(|&l| l < 0x80),
            "test relies on single-byte length varints"
        );
        v1.truncate(v1.len() - seg.len());
        v1[..8].copy_from_slice(b"NMTXSEG1");
        let back = Segment::deserialize(&v1).expect("v1 compat");
        assert_eq!(back, seg);
    }
}
