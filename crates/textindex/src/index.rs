//! The inverted index.
//!
//! Node-granular: the unit of indexing is one *node* of the store (not a
//! whole document). This is what lets NETMARK's combined
//! `Context=X & Content=Y` search check "does Y occur *within* section X"
//! without rescanning document text (see the index-granularity ablation in
//! the bench crate).

use crate::postings::{difference, intersect, kway_union, union, PostingList};
use crate::tokenize::{query_terms, tokenize_text};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::Write;
use std::path::Path;

/// A boolean / phrase / prefix query over the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextQuery {
    /// Single term (tokenized form).
    Term(String),
    /// All sub-queries must match.
    And(Vec<TextQuery>),
    /// Any sub-query matches.
    Or(Vec<TextQuery>),
    /// Matches of the first minus matches of the second.
    Not(Box<TextQuery>, Box<TextQuery>),
    /// Terms must occur consecutively.
    Phrase(Vec<String>),
    /// Any term starting with the prefix.
    Prefix(String),
    /// Matches every indexed node (identity for `And`).
    All,
}

impl TextQuery {
    /// Parses free text into a query: multiple words become a phrase-or-AND
    /// query — the phrase match is preferred but NETMARK's keyword search
    /// ANDs terms (paper: `Content=Shuttle` returns docs *containing* the
    /// term).
    pub fn keywords(text: &str) -> TextQuery {
        let terms = query_terms(text);
        match terms.len() {
            0 => TextQuery::All,
            1 => TextQuery::Term(terms.into_iter().next().expect("len checked")),
            _ => TextQuery::And(terms.into_iter().map(TextQuery::Term).collect()),
        }
    }

    /// Parses free text into an exact phrase query.
    pub fn phrase(text: &str) -> TextQuery {
        let terms = query_terms(text);
        match terms.len() {
            0 => TextQuery::All,
            1 => TextQuery::Term(terms.into_iter().next().expect("len checked")),
            _ => TextQuery::Phrase(terms),
        }
    }
}

/// An inverted index over `(node id → text)` pairs.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    /// Ordered so prefix queries can range-scan.
    terms: BTreeMap<String, PostingList>,
    /// Ids whose postings must be ignored (lazy deletion).
    tombstones: HashSet<u64>,
    /// All indexed ids, ascending (for `All` and `Not`).
    ids: Vec<u64>,
    /// Token count per id, parallel to `ids` (BM25 length normalization).
    lengths: Vec<u32>,
    /// Total postings (stats).
    postings: usize,
}

impl InvertedIndex {
    /// Empty index.
    pub fn new() -> InvertedIndex {
        InvertedIndex::default()
    }

    /// Indexes `text` under `id`. Ids must be added in ascending order
    /// (the store's node-id allocator guarantees this); violations are
    /// reported as `false` and skipped.
    pub fn add(&mut self, id: u64, text: &str) -> bool {
        if let Some(&last) = self.ids.last() {
            if id <= last {
                return false;
            }
        }
        let mut per_term: HashMap<String, Vec<u32>> = HashMap::new();
        let mut tokens = 0u32;
        for tok in tokenize_text(text) {
            per_term.entry(tok.term).or_default().push(tok.position);
            tokens += 1;
        }
        self.ids.push(id);
        self.lengths.push(tokens);
        for (term, positions) in per_term {
            let pl = self.terms.entry(term).or_default();
            pl.push(id, &positions);
            self.postings += 1;
        }
        true
    }

    /// Tombstones `id`; its postings stop matching immediately. Ids that
    /// were never indexed (or are already tombstoned) are ignored and
    /// reported as `false` — blindly recording them would make
    /// [`InvertedIndex::len`] underflow.
    pub fn remove(&mut self, id: u64) -> bool {
        if self.ids.binary_search(&id).is_err() {
            return false;
        }
        self.tombstones.insert(id)
    }

    /// Number of live indexed nodes. `remove` only tombstones known ids,
    /// so every tombstone is backed by an entry in `ids`.
    pub fn len(&self) -> usize {
        self.ids.len().saturating_sub(self.tombstones.len())
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Total compressed bytes across posting lists.
    pub fn byte_size(&self) -> usize {
        self.terms.values().map(|p| p.byte_size()).sum()
    }

    fn live(&self, ids: Vec<u64>) -> Vec<u64> {
        if self.tombstones.is_empty() {
            return ids;
        }
        ids.into_iter()
            .filter(|id| !self.tombstones.contains(id))
            .collect()
    }

    fn term_ids(&self, term: &str) -> Vec<u64> {
        self.terms.get(term).map(|p| p.ids()).unwrap_or_default()
    }

    /// Evaluates `query`, returning live node ids ascending.
    pub fn execute(&self, query: &TextQuery) -> Vec<u64> {
        let raw = self.eval(query);
        self.live(raw)
    }

    fn eval(&self, query: &TextQuery) -> Vec<u64> {
        match query {
            TextQuery::Term(t) => self.term_ids(t),
            TextQuery::All => self.ids.clone(),
            TextQuery::And(qs) => {
                if qs.is_empty() {
                    return self.ids.clone();
                }
                let mut acc = self.eval(&qs[0]);
                for q in &qs[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc = intersect(&acc, &self.eval(q));
                }
                acc
            }
            TextQuery::Or(qs) => {
                let mut acc = Vec::new();
                for q in qs {
                    acc = union(&acc, &self.eval(q));
                }
                acc
            }
            TextQuery::Not(a, b) => difference(&self.eval(a), &self.eval(b)),
            TextQuery::Prefix(p) => {
                // One k-way merge over all matching posting lists instead of
                // repeated pairwise union (which is O(k²) in the number of
                // matching terms).
                let lists: Vec<Vec<u64>> = self
                    .terms
                    .range::<str, _>((
                        std::ops::Bound::Included(p.as_str()),
                        std::ops::Bound::Unbounded,
                    ))
                    .take_while(|(t, _)| t.starts_with(p.as_str()))
                    .map(|(_, pl)| pl.ids())
                    .collect();
                kway_union(&lists)
            }
            TextQuery::Phrase(terms) => self.eval_phrase(terms),
        }
    }

    fn eval_phrase(&self, terms: &[String]) -> Vec<u64> {
        if terms.is_empty() {
            return self.ids.clone();
        }
        if terms.len() == 1 {
            return self.term_ids(&terms[0]);
        }
        // Decode positions for candidate ids only.
        let lists: Vec<&PostingList> = match terms
            .iter()
            .map(|t| self.terms.get(t))
            .collect::<Option<Vec<_>>>()
        {
            Some(l) => l,
            None => return Vec::new(),
        };
        let mut candidates = lists[0].ids();
        for l in &lists[1..] {
            candidates = intersect(&candidates, &l.ids());
            if candidates.is_empty() {
                return candidates;
            }
        }
        let cand: HashSet<u64> = candidates.iter().copied().collect();
        // id → per-term position sets.
        let positions_init: HashMap<u64, Vec<Vec<u32>>> = cand
            .iter()
            .map(|&id| (id, vec![Vec::new(); terms.len()]))
            .collect();
        let mut positions = positions_init;
        for (ti, l) in lists.iter().enumerate() {
            for p in l.iter() {
                if let Some(slot) = positions.get_mut(&p.id) {
                    slot[ti] = p.positions;
                }
            }
        }
        let mut out: Vec<u64> = positions
            .into_iter()
            .filter(|(_, per_term)| {
                // A phrase match: p0 in term0 with p0+i in term_i for all i.
                let rest: Vec<&Vec<u32>> = per_term[1..].iter().collect();
                per_term[0].iter().any(|&p0| {
                    rest.iter()
                        .enumerate()
                        .all(|(i, ps)| ps.binary_search(&(p0 + i as u32 + 1)).is_ok())
                })
            })
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Ranked search: ids scored by total term frequency, descending.
    pub fn search_ranked(&self, text: &str) -> Vec<(u64, u32)> {
        let terms = query_terms(text);
        let mut scores: HashMap<u64, u32> = HashMap::new();
        for t in &terms {
            if let Some(pl) = self.terms.get(t) {
                for p in pl.iter() {
                    if !self.tombstones.contains(&p.id) {
                        *scores.entry(p.id).or_default() += p.positions.len() as u32;
                    }
                }
            }
        }
        let mut out: Vec<(u64, u32)> = scores.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// BM25-ranked search: live ids scored by Okapi BM25, descending
    /// (score ties break on ascending id). Same constants and corpus-stat
    /// definitions as
    /// [`IndexSnapshot::search_bm25`](crate::IndexSnapshot::search_bm25),
    /// computed from the same integer statistics — the two shapes return
    /// identical scores over the same documents.
    pub fn search_bm25(&self, text: &str) -> Vec<(u64, f64)> {
        const K1: f64 = 1.2;
        const B: f64 = 0.75;
        let terms = query_terms(text);
        let n_live = self.len();
        if terms.is_empty() || n_live == 0 {
            return Vec::new();
        }
        let mut total_len = 0u64;
        for (i, id) in self.ids.iter().enumerate() {
            if !self.tombstones.contains(id) {
                total_len += self.lengths[i] as u64;
            }
        }
        let avgdl = (total_len as f64 / n_live as f64).max(f64::MIN_POSITIVE);
        let mut scores: HashMap<u64, f64> = HashMap::new();
        for term in &terms {
            let Some(pl) = self.terms.get(term) else {
                continue;
            };
            let mut hits: Vec<(u64, u32, u32)> = Vec::new();
            for p in pl.iter() {
                if !self.tombstones.contains(&p.id) {
                    let dl = self
                        .ids
                        .binary_search(&p.id)
                        .map(|i| self.lengths[i])
                        .unwrap_or(0);
                    hits.push((p.id, p.positions.len() as u32, dl));
                }
            }
            if hits.is_empty() {
                continue;
            }
            let df = hits.len() as f64;
            let idf = (1.0 + (n_live as f64 - df + 0.5) / (df + 0.5)).ln();
            for (id, tf, dl) in hits {
                let tf = tf as f64;
                let norm = K1 * (1.0 - B + B * dl as f64 / avgdl);
                *scores.entry(id).or_default() += idf * tf * (K1 + 1.0) / (tf + norm);
            }
        }
        let mut out: Vec<(u64, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Decomposes the index into its raw parts
    /// `(terms, ids, tombstones, postings)` — used by the segmented index
    /// to migrate a legacy `NMTXIDX1` file into a sealed segment.
    pub(crate) fn into_parts(
        self,
    ) -> (BTreeMap<String, PostingList>, Vec<u64>, HashSet<u64>, usize) {
        (self.terms, self.ids, self.tombstones, self.postings)
    }

    /// Persists the index to `path` (binary, versioned).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(self.byte_size() + 1024);
        buf.extend_from_slice(b"NMTXIDX1");
        let put = |v: u64, buf: &mut Vec<u8>| {
            let mut v = v;
            loop {
                let b = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    buf.push(b);
                    return;
                }
                buf.push(b | 0x80);
            }
        };
        put(self.terms.len() as u64, &mut buf);
        for (term, pl) in &self.terms {
            put(term.len() as u64, &mut buf);
            buf.extend_from_slice(term.as_bytes());
            pl.serialize(&mut buf);
        }
        put(self.ids.len() as u64, &mut buf);
        let mut prev = 0u64;
        for (i, &id) in self.ids.iter().enumerate() {
            put(if i == 0 { id } else { id - prev }, &mut buf);
            prev = id;
        }
        put(self.tombstones.len() as u64, &mut buf);
        let mut tombs: Vec<u64> = self.tombstones.iter().copied().collect();
        tombs.sort_unstable();
        let mut prev = 0u64;
        for (i, &id) in tombs.iter().enumerate() {
            put(if i == 0 { id } else { id - prev }, &mut buf);
            prev = id;
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads an index previously written by [`InvertedIndex::save`].
    /// Returns `None` for missing or corrupt files (callers rebuild).
    pub fn load(path: &Path) -> Option<InvertedIndex> {
        let buf = std::fs::read(path).ok()?;
        if buf.len() < 8 || &buf[..8] != b"NMTXIDX1" {
            return None;
        }
        let mut pos = 8usize;
        let get = |buf: &[u8], pos: &mut usize| -> Option<u64> {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let b = *buf.get(*pos)?;
                *pos += 1;
                v |= ((b & 0x7f) as u64) << shift;
                if b & 0x80 == 0 {
                    return Some(v);
                }
                shift += 7;
                if shift >= 64 {
                    return None;
                }
            }
        };
        let nterms = get(&buf, &mut pos)? as usize;
        let mut terms = BTreeMap::new();
        let mut postings = 0usize;
        for _ in 0..nterms {
            let tlen = get(&buf, &mut pos)? as usize;
            let end = pos.checked_add(tlen).filter(|&e| e <= buf.len())?;
            let term = std::str::from_utf8(&buf[pos..end]).ok()?.to_string();
            pos = end;
            let pl = PostingList::deserialize(&buf, &mut pos)?;
            postings += pl.len();
            terms.insert(term, pl);
        }
        let nids = get(&buf, &mut pos)? as usize;
        let mut ids = Vec::with_capacity(nids);
        let mut prev = 0u64;
        for i in 0..nids {
            let gap = get(&buf, &mut pos)?;
            let id = if i == 0 { gap } else { prev + gap };
            ids.push(id);
            prev = id;
        }
        let ntombs = get(&buf, &mut pos)? as usize;
        let mut tombstones = HashSet::with_capacity(ntombs);
        let mut prev = 0u64;
        for i in 0..ntombs {
            let gap = get(&buf, &mut pos)?;
            let id = if i == 0 { gap } else { prev + gap };
            tombstones.insert(id);
            prev = id;
        }
        // NMTXIDX1 predates stored length stats; rebuild them from the
        // postings (a doc's token count is the sum of its position counts).
        let lengths = crate::segment::lengths_from_postings(&terms, &ids);
        Some(InvertedIndex {
            terms,
            tombstones,
            ids,
            lengths,
            postings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add(1, "The space shuttle program");
        ix.add(2, "Shuttle engine anomaly report");
        ix.add(3, "Budget overview for the technology gap");
        ix.add(4, "The technology gap is shrinking fast");
        ix
    }

    #[test]
    fn term_query() {
        let ix = sample();
        assert_eq!(ix.execute(&TextQuery::keywords("shuttle")), vec![1, 2]);
        assert_eq!(ix.execute(&TextQuery::keywords("SHUTTLE")), vec![1, 2]);
        assert!(ix.execute(&TextQuery::keywords("mars")).is_empty());
    }

    #[test]
    fn and_or_not() {
        let ix = sample();
        assert_eq!(
            ix.execute(&TextQuery::keywords("technology gap")),
            vec![3, 4]
        );
        let or = TextQuery::Or(vec![
            TextQuery::Term("budget".into()),
            TextQuery::Term("engine".into()),
        ]);
        assert_eq!(ix.execute(&or), vec![2, 3]);
        let not = TextQuery::Not(
            Box::new(TextQuery::Term("the".into())),
            Box::new(TextQuery::Term("shuttle".into())),
        );
        assert_eq!(ix.execute(&not), vec![3, 4]);
    }

    #[test]
    fn phrase_query() {
        let ix = sample();
        assert_eq!(ix.execute(&TextQuery::phrase("technology gap")), vec![3, 4]);
        assert!(
            ix.execute(&TextQuery::phrase("gap technology")).is_empty(),
            "order matters for phrases"
        );
        assert_eq!(
            ix.execute(&TextQuery::phrase("the technology gap is")),
            vec![4]
        );
    }

    #[test]
    fn prefix_query() {
        let ix = sample();
        assert_eq!(ix.execute(&TextQuery::Prefix("shut".into())), vec![1, 2]);
        assert_eq!(ix.execute(&TextQuery::Prefix("t".into())), vec![1, 3, 4]);
        assert!(ix.execute(&TextQuery::Prefix("zz".into())).is_empty());
    }

    #[test]
    fn all_and_empty_keywords() {
        let ix = sample();
        assert_eq!(ix.execute(&TextQuery::All), vec![1, 2, 3, 4]);
        assert_eq!(ix.execute(&TextQuery::keywords("")), vec![1, 2, 3, 4]);
    }

    #[test]
    fn tombstones_hide_results() {
        let mut ix = sample();
        ix.remove(2);
        assert_eq!(ix.execute(&TextQuery::keywords("shuttle")), vec![1]);
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn remove_of_unknown_id_does_not_underflow_len() {
        let mut ix = sample();
        assert_eq!(ix.len(), 4);
        // Never-indexed ids are rejected; len() used to wrap to huge values
        // (release) or panic (debug) after enough of these.
        for bogus in [0u64, 99, 100, 12345] {
            assert!(!ix.remove(bogus));
        }
        assert_eq!(ix.len(), 4);
        assert!(ix.remove(2));
        assert!(!ix.remove(2), "double remove is a no-op");
        assert_eq!(ix.len(), 3);
        assert!(!ix.is_empty());
    }

    #[test]
    fn prefix_kway_matches_many_terms() {
        // Many terms sharing a prefix, each matching overlapping doc sets —
        // exercises the k-way merge path (k > 2).
        let mut ix = InvertedIndex::new();
        for id in 1..=40u64 {
            let text = format!("prefab prefix{} prefetch preflight", id % 7);
            ix.add(id, &text);
        }
        let all: Vec<u64> = (1..=40).collect();
        assert_eq!(ix.execute(&TextQuery::Prefix("pref".into())), all);
        assert_eq!(
            ix.execute(&TextQuery::Prefix("prefix3".into())),
            vec![3, 10, 17, 24, 31, 38]
        );
    }

    #[test]
    fn out_of_order_add_rejected() {
        let mut ix = sample();
        assert!(!ix.add(2, "late"));
        assert!(ix.add(10, "fine"));
    }

    #[test]
    fn ranked_search_orders_by_tf() {
        let mut ix = InvertedIndex::new();
        ix.add(1, "budget");
        ix.add(2, "budget budget budget");
        let r = ix.search_ranked("budget");
        assert_eq!(r[0], (2, 3));
        assert_eq!(r[1], (1, 1));
    }

    #[test]
    fn bm25_normalizes_by_length_and_rarity() {
        let mut ix = InvertedIndex::new();
        ix.add(1, "budget");
        ix.add(
            2,
            "budget budget budget padding padding padding padding padding",
        );
        ix.add(3, "padding padding padding");
        ix.add(4, "padding");
        let r = ix.search_bm25("budget");
        // Only docs containing the term score; the short exact doc beats
        // the long high-tf one (tf saturation + length normalization —
        // plain TF ranking would invert this).
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 1);
        assert_eq!(r[1].0, 2);
        assert!(r[0].1 > r[1].1);
        assert!(r.iter().all(|(_, s)| *s > 0.0));
        // Rarity: the rarer term (df 2 of 4) outscores the common one
        // (df 3 of 4) at its best-matching doc.
        let common = ix.search_bm25("padding");
        let rare = ix.search_bm25("budget");
        assert_eq!(common.len(), 3);
        assert!(rare[0].1 > common[0].1);
        // Tombstoned docs neither score nor count toward N/avgdl.
        ix.remove(1);
        let r = ix.search_bm25("budget");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, 2);
        assert!(ix.search_bm25("").is_empty());
        assert!(ix.search_bm25("missing").is_empty());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("netmark-tix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut ix = sample();
        ix.remove(3);
        let path = dir.join("text.idx");
        ix.save(&path).unwrap();
        let back = InvertedIndex::load(&path).unwrap();
        assert_eq!(back.len(), ix.len());
        assert_eq!(
            back.execute(&TextQuery::keywords("technology gap")),
            vec![4]
        );
        assert_eq!(back.term_count(), ix.term_count());
        // Corrupt file → None.
        std::fs::write(&path, b"garbage").unwrap();
        assert!(InvertedIndex::load(&path).is_none());
        assert!(InvertedIndex::load(&dir.join("missing.idx")).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
