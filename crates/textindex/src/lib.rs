//! `netmark-textindex`: the full-text index substrate (the paper's stand-in
//! for Oracle Text).
//!
//! "The keyword-based context and content search is performed by first
//! querying the text index for the search key" (paper §2.1.4). This crate
//! provides that index: node-granular inverted lists with delta-varint
//! compression, boolean / phrase / prefix queries, tombstone deletion, and
//! a save/load binary format.

#![warn(missing_docs)]

pub mod index;
pub mod postings;
pub mod tokenize;

pub use index::{InvertedIndex, TextQuery};
pub use postings::{Posting, PostingList};
pub use tokenize::{query_terms, tokenize_text, TextToken};
