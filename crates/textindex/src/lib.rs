//! `netmark-textindex`: the full-text index substrate (the paper's stand-in
//! for Oracle Text).
//!
//! "The keyword-based context and content search is performed by first
//! querying the text index for the search key" (paper §2.1.4). This crate
//! provides that index: node-granular inverted lists with delta-varint
//! compression, boolean / phrase / prefix queries, tombstone deletion, and
//! persistence.
//!
//! Two index shapes share the same query semantics:
//! - [`InvertedIndex`]: the original single-map index and its `NMTXIDX1`
//!   file format — kept as the migration path and the reference model.
//! - [`SegmentedIndex`]: the production shape — an LSM-style chain of
//!   immutable [`segment::Segment`]s behind lock-free
//!   [`snapshot::IndexSnapshot`] publication, with background
//!   [`compact::Compactor`] merges and incremental per-segment
//!   persistence. Query results are byte-identical to [`InvertedIndex`]
//!   over the same documents.

#![warn(missing_docs)]

pub mod compact;
pub mod index;
pub mod postings;
pub mod segment;
pub mod segmented;
pub mod snapshot;
pub mod tokenize;

pub use compact::{CompactionPolicy, Compactor};
pub use index::{InvertedIndex, TextQuery};
pub use postings::{Posting, PostingList};
pub use segment::{MemTable, Segment};
pub use segmented::{IndexStats, SaveReport, SegmentedIndex};
pub use snapshot::{IndexSnapshot, SnapshotCell, TopkStats};
pub use tokenize::{query_terms, tokenize_text, TextToken};

/// Read-side query interface shared by the legacy single-map index and
/// segmented snapshots, so query-engine stages can run against either.
pub trait TextIndexReader {
    /// Evaluates `query`, returning live node ids ascending.
    fn execute(&self, query: &TextQuery) -> Vec<u64>;

    /// Ranked search: ids scored by total term frequency, descending.
    fn search_ranked(&self, text: &str) -> Vec<(u64, u32)>;

    /// BM25-ranked search: live ids scored by Okapi BM25 over the corpus
    /// statistics, descending (ties break on ascending id).
    fn search_bm25(&self, text: &str) -> Vec<(u64, f64)>;

    /// Per-node BM25 scores ascending by id: the same documents with
    /// bit-identical scores as [`TextIndexReader::search_bm25`], reordered
    /// for streaming aggregation. The default reorders the ranked output;
    /// implementations may provide a direct path.
    fn bm25_node_scores(&self, text: &str) -> Vec<(u64, f64)> {
        let mut out = self.search_bm25(text);
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }
}

impl TextIndexReader for InvertedIndex {
    fn execute(&self, query: &TextQuery) -> Vec<u64> {
        InvertedIndex::execute(self, query)
    }

    fn search_ranked(&self, text: &str) -> Vec<(u64, u32)> {
        InvertedIndex::search_ranked(self, text)
    }

    fn search_bm25(&self, text: &str) -> Vec<(u64, f64)> {
        InvertedIndex::search_bm25(self, text)
    }
}

impl TextIndexReader for IndexSnapshot {
    fn execute(&self, query: &TextQuery) -> Vec<u64> {
        IndexSnapshot::execute(self, query)
    }

    fn search_ranked(&self, text: &str) -> Vec<(u64, u32)> {
        IndexSnapshot::search_ranked(self, text)
    }

    fn search_bm25(&self, text: &str) -> Vec<(u64, f64)> {
        IndexSnapshot::search_bm25(self, text)
    }

    fn bm25_node_scores(&self, text: &str) -> Vec<(u64, f64)> {
        IndexSnapshot::bm25_node_scores(self, text)
    }
}
