//! Background compaction: merge small run segments and physically purge
//! tombstoned postings.
//!
//! Each ingest commit seals one run segment, so the chain grows with write
//! traffic; and tombstones accumulate forever unless something rewrites the
//! postings. The compactor fixes both: it plans a merge window (adjacent
//! segments — adjacency preserves the disjoint ascending id-range
//! invariant), merges *outside* any lock (segments are immutable), and
//! swaps the merged segment in under a brief writer-lock critical section.
//! Readers are never paused: they keep whatever snapshot they loaded.

use crate::postings::PostingList;
use crate::segment::Segment;
use std::collections::{BTreeMap, HashSet};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// When and what to compact.
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Merge any adjacent run of ≥2 segments that are each smaller than
    /// this many postings (freshly sealed ingest runs).
    pub small_postings: usize,
    /// Above this many segments, merge the cheapest adjacent pair even if
    /// both are large, bounding per-query segment fan-out.
    pub max_segments: usize,
    /// Rewrite a single segment once this percentage of its ids are
    /// tombstoned, physically reclaiming the dead postings.
    pub tombstone_percent: u32,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            small_postings: 4096,
            max_segments: 8,
            tombstone_percent: 25,
        }
    }
}

/// Picks the next merge window under `policy`, or `None` when the chain is
/// in shape. Windows are contiguous, preserving id-range adjacency.
pub(crate) fn plan(
    segments: &[Arc<Segment>],
    tombstones: &HashSet<u64>,
    policy: &CompactionPolicy,
) -> Option<Range<usize>> {
    // 1. Longest run of adjacent small segments (ingest runs pile up at the
    //    tail; merging them keeps per-query fan-out flat).
    let mut best: Option<Range<usize>> = None;
    let mut start = 0usize;
    while start < segments.len() {
        if segments[start].postings() >= policy.small_postings {
            start += 1;
            continue;
        }
        let mut end = start + 1;
        while end < segments.len() && segments[end].postings() < policy.small_postings {
            end += 1;
        }
        if end - start >= 2 && best.as_ref().is_none_or(|b| end - start > b.len()) {
            best = Some(start..end);
        }
        start = end;
    }
    if let Some(w) = best {
        return Some(w);
    }
    // 2. Chain too long: merge the cheapest adjacent pair.
    if segments.len() > policy.max_segments {
        let i = (0..segments.len() - 1)
            .min_by_key(|&i| segments[i].postings() + segments[i + 1].postings())
            .expect("len > max_segments >= 1");
        return Some(i..i + 2);
    }
    // 3. Tombstone pressure: rewrite any segment whose dead fraction
    //    crossed the threshold. Tombstones are attributed to segments via
    //    the disjoint-range invariant.
    if !tombstones.is_empty() {
        let mut dead = vec![0usize; segments.len()];
        for &id in tombstones {
            let idx = segments.partition_point(|s| s.max_id().is_some_and(|m| m < id));
            if let Some(seg) = segments.get(idx) {
                if seg.contains(id) {
                    dead[idx] += 1;
                }
            }
        }
        for (i, seg) in segments.iter().enumerate() {
            if dead[i] > 0 && dead[i] * 100 >= seg.len() * policy.tombstone_percent as usize {
                return Some(i..i + 1);
            }
        }
    }
    None
}

/// Output of [`merge`]: the combined segment plus what was reclaimed.
pub(crate) struct MergeResult {
    pub segment: Segment,
    /// Tombstoned ids physically removed (safe to drop from the global
    /// tombstone set — each id lives in exactly one segment).
    pub purged_ids: Vec<u64>,
    /// Postings dropped along with them.
    pub purged_postings: usize,
}

/// Merges `segs` (adjacent, id-range ascending) into one segment with
/// identity `new_id`, dropping postings of `tombstones` members. Pure —
/// runs outside all locks.
pub(crate) fn merge(new_id: u64, segs: &[Arc<Segment>], tombstones: &HashSet<u64>) -> MergeResult {
    let mut by_term: BTreeMap<&str, Vec<&PostingList>> = BTreeMap::new();
    for seg in segs {
        for (t, pl) in seg.terms() {
            by_term.entry(t).or_default().push(pl);
        }
    }
    let mut terms: BTreeMap<String, PostingList> = BTreeMap::new();
    let mut postings = 0usize;
    let mut purged_postings = 0usize;
    for (t, pls) in by_term {
        let mut out = PostingList::new();
        // Segments ascend by id range, so appends stay in order.
        for pl in pls {
            for p in pl.iter() {
                if tombstones.contains(&p.id) {
                    purged_postings += 1;
                } else {
                    out.push(p.id, &p.positions);
                    postings += 1;
                }
            }
        }
        if !out.is_empty() {
            terms.insert(t.to_string(), out);
        }
    }
    let mut ids = Vec::new();
    let mut purged_ids = Vec::new();
    for seg in segs {
        for &id in seg.ids() {
            if tombstones.contains(&id) {
                purged_ids.push(id);
            } else {
                ids.push(id);
            }
        }
    }
    MergeResult {
        segment: Segment::from_parts(new_id, terms, ids, postings),
        purged_ids,
        purged_postings,
    }
}

/// Commit → compactor wakeup channel (a seq counter under a condvar, so
/// notifies are never lost even if the compactor is mid-pass).
#[derive(Debug, Default)]
pub(crate) struct Signal {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl Signal {
    pub(crate) fn notify(&self) {
        let mut g = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        *g += 1;
        self.cv.notify_all();
    }

    /// Blocks until the counter moves past `seen` (or `timeout`); returns
    /// the current counter.
    pub(crate) fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let g = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        if *g != seen {
            return *g;
        }
        let (g, _) = self
            .cv
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        *g
    }
}

/// Handle to the background compaction thread. Dropping it stops and joins
/// the thread.
pub struct Compactor {
    stop: Arc<AtomicBool>,
    signal: Arc<Signal>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawns the compaction loop over `index`. The thread wakes on every
    /// commit (and on a periodic fallback tick) and runs merge passes until
    /// the policy reports the chain in shape.
    pub(crate) fn spawn(index: Arc<crate::SegmentedIndex>) -> Compactor {
        let stop = Arc::new(AtomicBool::new(false));
        let signal = index.signal();
        let thread_stop = stop.clone();
        let thread_signal = signal.clone();
        let handle = std::thread::Builder::new()
            .name("nm-textindex-compact".into())
            .spawn(move || {
                let mut seen = 0u64;
                while !thread_stop.load(Ordering::Relaxed) {
                    while index.compact_once().is_some() {
                        if thread_stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    seen = thread_signal.wait_past(seen, Duration::from_millis(100));
                }
            })
            .expect("spawn compactor thread");
        Compactor {
            stop,
            signal,
            handle: Some(handle),
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.signal.notify();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Compactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compactor")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::MemTable;

    fn run(id: u64, ids: Range<u64>) -> Arc<Segment> {
        let mut mt = MemTable::new();
        for i in ids {
            mt.add(i, "alpha beta gamma");
        }
        Arc::new(mt.seal(id))
    }

    #[test]
    fn plan_merges_adjacent_small_runs_first() {
        let policy = CompactionPolicy {
            small_postings: 100,
            max_segments: 8,
            tombstone_percent: 25,
        };
        // One big segment followed by three small runs.
        let mut big = MemTable::new();
        for i in 0..200u64 {
            big.add(i + 1, "alpha beta gamma delta epsilon");
        }
        let segs = vec![
            Arc::new(big.seal(0)),
            run(1, 1000..1005),
            run(2, 2000..2005),
            run(3, 3000..3005),
        ];
        let none = HashSet::new();
        assert_eq!(plan(&segs, &none, &policy), Some(1..4));
        // A single small segment is not a merge window.
        assert_eq!(plan(&segs[..2], &none, &policy), None);
    }

    #[test]
    fn plan_bounds_chain_length() {
        let policy = CompactionPolicy {
            small_postings: 1, // nothing counts as small
            max_segments: 3,
            tombstone_percent: 25,
        };
        let segs: Vec<Arc<Segment>> = (0..5u64)
            .map(|i| run(i, i * 100 + 1..i * 100 + 4))
            .collect();
        let w = plan(&segs, &HashSet::new(), &policy).expect("chain over budget");
        assert_eq!(w.len(), 2, "merges an adjacent pair");
    }

    #[test]
    fn plan_fires_on_tombstone_pressure_and_merge_purges() {
        let policy = CompactionPolicy {
            small_postings: 1,
            max_segments: 8,
            tombstone_percent: 25,
        };
        let segs = vec![run(0, 1..11), run(1, 100..110)];
        let mut tombs = HashSet::new();
        for id in 100..103u64 {
            tombs.insert(id); // 30% of segment 1
        }
        assert_eq!(plan(&segs, &tombs, &policy), Some(1..2));
        let m = merge(9, &segs[1..2], &tombs);
        assert_eq!(m.purged_ids.len(), 3);
        assert_eq!(m.purged_postings, 9, "3 ids × 3 single-position terms");
        assert_eq!(m.segment.len(), 7);
        assert_eq!(m.segment.id(), 9);
        assert!(m.segment.byte_size() < segs[1].byte_size());
    }

    #[test]
    fn merge_preserves_eval_results() {
        let segs = vec![run(0, 1..6), run(1, 50..56), run(2, 90..93)];
        let m = merge(3, &segs, &HashSet::new());
        let q = crate::TextQuery::Term("beta".into());
        let mut expect = Vec::new();
        for s in &segs {
            expect.extend_from_slice(&s.eval(&q));
        }
        assert_eq!(m.segment.eval(&q).as_ref(), expect.as_slice());
        assert_eq!(
            m.segment.postings(),
            segs.iter().map(|s| s.postings()).sum()
        );
    }
}
