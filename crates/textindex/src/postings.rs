//! Delta-varint-compressed posting lists.
//!
//! A posting list holds, per term, the ascending sequence of node ids the
//! term occurs in plus the word positions inside each node (for phrase
//! queries). Ids are delta-encoded and everything is LEB128 varints, so a
//! dense list costs ~1–2 bytes per posting.
//!
//! Entry layout in the packed buffer:
//! `id_gap, n_positions, pos_gap*` — all varints; position gaps are deltas
//! within the entry.
//!
//! Appends must be in ascending id order (node ids are assigned
//! monotonically by the store; re-ingesting a document creates fresh ids,
//! and deletions are tombstoned at the index level).
//!
//! On top of the packed entries the list keeps per-block skip metadata
//! ([`BlockMeta`]): every [`BLOCK_ENTRIES`] appends open a new block whose
//! byte offset, last id, entry count, and maximum term frequency are
//! recorded as the entries are written. Scorers use the metadata to skip a
//! whole block in O(1) (the offset), to bound what any entry in the block
//! can score (the max tf), and to decode tf without touching positions
//! (the [`TfIter`]/[`TfCursor`] readers). Blocks are derived metadata —
//! they never change which postings exist, so list equality ignores them,
//! and lists deserialized from pre-block formats simply have none and fall
//! back to exhaustive decoding.

/// Appends `v` as LEB128.
fn put(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads a LEB128 varint; `None` on truncation.
fn get(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Skips `n` varints without decoding their values; `None` on truncation.
fn skip_varints(buf: &[u8], pos: &mut usize, n: usize) -> Option<()> {
    for _ in 0..n {
        loop {
            let b = *buf.get(*pos)?;
            *pos += 1;
            if b & 0x80 == 0 {
                break;
            }
        }
    }
    Some(())
}

/// Entries per skip block. ~128 doc ids keeps a block one or two cache
/// lines of packed bytes while making the metadata overhead negligible
/// (one [`BlockMeta`] per 128 postings).
pub const BLOCK_ENTRIES: usize = 128;

/// Skip metadata for one fixed-size block of packed postings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Byte offset of the block's first entry in the packed buffer.
    pub offset: usize,
    /// Id of the block's last entry.
    pub last_id: u64,
    /// Entries in the block (`BLOCK_ENTRIES` except for the tail block).
    pub count: u32,
    /// Maximum term frequency (stored positions) of any entry in the
    /// block — the ingredient of the block's BM25 upper bound.
    pub max_tf: u32,
}

/// One decoded posting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Node id the term occurs in.
    pub id: u64,
    /// Ascending word positions of the term within the node text.
    pub positions: Vec<u32>,
}

/// A compressed, append-only posting list.
#[derive(Debug, Clone, Default)]
pub struct PostingList {
    packed: Vec<u8>,
    last_id: u64,
    len: usize,
    /// Skip blocks over `packed`. Either complete (every entry covered,
    /// maintained by [`PostingList::push`]) or empty (a list deserialized
    /// from a pre-block format — readers fall back to linear decoding).
    blocks: Vec<BlockMeta>,
}

/// Blocks are derived metadata over the packed entries, so equality is
/// over the postings themselves: a list read from a legacy segment equals
/// the freshly built list holding the same postings.
impl PartialEq for PostingList {
    fn eq(&self, other: &PostingList) -> bool {
        self.packed == other.packed && self.last_id == other.last_id && self.len == other.len
    }
}

impl PostingList {
    /// Empty list.
    pub fn new() -> PostingList {
        PostingList::default()
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no postings are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes.
    pub fn byte_size(&self) -> usize {
        self.packed.len()
    }

    /// Appends a posting. `id` must exceed every previously appended id;
    /// `positions` must be ascending. Returns `false` (and stores nothing)
    /// if the ordering contract is violated.
    pub fn push(&mut self, id: u64, positions: &[u32]) -> bool {
        if (self.len > 0 && id <= self.last_id) || positions.is_empty() {
            return false;
        }
        // Positions come from the tokenizer (always ascending); validate
        // before writing so a bad call cannot corrupt the buffer.
        if positions.windows(2).any(|w| w[1] <= w[0]) {
            return false;
        }
        let entry_offset = self.packed.len();
        let gap = if self.len == 0 { id } else { id - self.last_id };
        put(&mut self.packed, gap);
        put(&mut self.packed, positions.len() as u64);
        let mut prev = 0u32;
        for (i, &p) in positions.iter().enumerate() {
            put(&mut self.packed, (p - if i == 0 { 0 } else { prev }) as u64);
            prev = p;
        }
        // Maintain the skip blocks, but only while they are complete: a
        // list deserialized from a pre-block format has entries without
        // blocks, and growing partial blocks over its tail would record
        // wrong delta bases. Such lists stay blockless.
        if self.len == 0 || !self.blocks.is_empty() {
            if self.len.is_multiple_of(BLOCK_ENTRIES) {
                self.blocks.push(BlockMeta {
                    offset: entry_offset,
                    last_id: id,
                    count: 0,
                    max_tf: 0,
                });
            }
            let b = self.blocks.last_mut().expect("block opened above");
            b.count += 1;
            b.last_id = id;
            b.max_tf = b.max_tf.max(positions.len() as u32);
        }
        self.last_id = id;
        self.len += 1;
        true
    }

    /// The skip blocks: complete coverage of the packed entries, or empty
    /// for a list deserialized from a pre-block (NMTXSEG2/1) format.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// True when every entry is covered by skip metadata.
    pub fn has_blocks(&self) -> bool {
        self.len == 0 || !self.blocks.is_empty()
    }

    /// Maximum term frequency across the whole list, from the block
    /// metadata; `None` when the list is blockless.
    pub fn max_tf(&self) -> Option<u32> {
        if self.len == 0 {
            return Some(0);
        }
        if self.blocks.is_empty() {
            return None;
        }
        Some(self.blocks.iter().map(|b| b.max_tf).max().unwrap_or(0))
    }

    /// Iterates decoded postings.
    pub fn iter(&self) -> PostingIter<'_> {
        PostingIter {
            buf: &self.packed,
            pos: 0,
            prev_id: 0,
            first: true,
        }
    }

    /// Decodes just the node ids.
    pub fn ids(&self) -> Vec<u64> {
        self.iter().map(|p| p.id).collect()
    }

    /// Serializes into `out` (length-prefixed packed bytes + metadata).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        put(out, self.len as u64);
        put(out, self.last_id);
        put(out, self.packed.len() as u64);
        out.extend_from_slice(&self.packed);
    }

    /// Inverse of [`PostingList::serialize`]; `None` on corrupt input.
    /// The list comes back blockless (the legacy format stores no skip
    /// metadata) — scorers fall back to exhaustive decoding.
    pub fn deserialize(buf: &[u8], pos: &mut usize) -> Option<PostingList> {
        let len = get(buf, pos)? as usize;
        let last_id = get(buf, pos)?;
        let nbytes = get(buf, pos)? as usize;
        let end = pos.checked_add(nbytes).filter(|&e| e <= buf.len())?;
        let packed = buf[*pos..end].to_vec();
        *pos = end;
        Some(PostingList {
            packed,
            last_id,
            len,
            blocks: Vec::new(),
        })
    }

    /// Serializes like [`PostingList::serialize`] and appends the skip
    /// blocks — the NMTXSEG3 per-term layout. Block fields are
    /// delta-varint-coded (offsets and last ids both ascend).
    pub fn serialize_with_blocks(&self, out: &mut Vec<u8>) {
        self.serialize(out);
        put(out, self.blocks.len() as u64);
        let (mut prev_off, mut prev_id) = (0u64, 0u64);
        for b in &self.blocks {
            put(out, b.offset as u64 - prev_off);
            put(out, b.last_id - prev_id);
            put(out, b.count as u64);
            put(out, b.max_tf as u64);
            prev_off = b.offset as u64;
            prev_id = b.last_id;
        }
    }

    /// Inverse of [`PostingList::serialize_with_blocks`]; `None` on
    /// corrupt input (including blocks that do not cover the entries).
    /// Zero blocks with entries present is a valid blockless list (one
    /// that migrated from a pre-block format without a rebuild).
    pub fn deserialize_with_blocks(buf: &[u8], pos: &mut usize) -> Option<PostingList> {
        let mut pl = PostingList::deserialize(buf, pos)?;
        let nblocks = get(buf, pos)? as usize;
        if nblocks == 0 {
            return Some(pl);
        }
        if nblocks > pl.len {
            return None;
        }
        let mut blocks = Vec::with_capacity(nblocks);
        let (mut prev_off, mut prev_id) = (0u64, 0u64);
        let mut covered = 0u64;
        for _ in 0..nblocks {
            let offset = prev_off + get(buf, pos)?;
            let last_id = prev_id + get(buf, pos)?;
            let count = get(buf, pos)? as u32;
            let max_tf = get(buf, pos)? as u32;
            covered += count as u64;
            blocks.push(BlockMeta {
                offset: offset as usize,
                last_id,
                count,
                max_tf,
            });
            prev_off = offset;
            prev_id = last_id;
        }
        // The metadata must describe exactly the entries present.
        if covered != pl.len as u64 || (pl.len > 0 && blocks.last()?.last_id != pl.last_id) {
            return None;
        }
        pl.blocks = blocks;
        Some(pl)
    }

    /// Iterates `(id, tf)` without decoding positions — the scoring
    /// fast path (term frequency is the stored position count).
    pub fn tf_iter(&self) -> TfIter<'_> {
        TfIter {
            buf: &self.packed,
            pos: 0,
            prev_id: 0,
        }
    }

    /// A block-skipping `(id, tf)` cursor over this list.
    pub fn tf_cursor(&self) -> TfCursor<'_> {
        let mut c = TfCursor {
            buf: &self.packed,
            blocks: &self.blocks,
            last_id: self.last_id,
            total: self.len,
            idx: 0,
            pos: 0,
            cur_id: 0,
            cur_tf: 0,
            done: self.len == 0,
            decoded: 0,
            blocks_skipped: 0,
        };
        c.decode_next();
        c
    }
}

/// `(id, tf)` iterator that skips position payloads instead of decoding
/// them — no per-entry allocation.
pub struct TfIter<'a> {
    buf: &'a [u8],
    pos: usize,
    prev_id: u64,
}

impl Iterator for TfIter<'_> {
    type Item = (u64, u32);

    fn next(&mut self) -> Option<(u64, u32)> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let gap = get(self.buf, &mut self.pos)?;
        let id = self.prev_id + gap;
        self.prev_id = id;
        let n = get(self.buf, &mut self.pos)? as usize;
        skip_varints(self.buf, &mut self.pos, n)?;
        Some((id, n as u32))
    }
}

/// Forward-only `(id, tf)` cursor with O(1) block skips.
///
/// When the list carries block metadata, [`TfCursor::seek`] jumps over
/// whole blocks by byte offset (counting them in
/// [`TfCursor::blocks_skipped`]); blockless lists degrade to linear
/// decoding. Every decoded entry is counted in [`TfCursor::decoded`] so
/// callers can report decoded-vs-total posting ratios.
pub struct TfCursor<'a> {
    buf: &'a [u8],
    blocks: &'a [BlockMeta],
    last_id: u64,
    total: usize,
    /// Entry index of the current posting (valid when `!done`).
    idx: usize,
    /// Byte position of the next undecoded entry.
    pos: usize,
    cur_id: u64,
    cur_tf: u32,
    done: bool,
    /// Entries decoded by this cursor.
    pub decoded: u64,
    /// Blocks jumped over (or out of) without decoding their entries.
    pub blocks_skipped: u64,
}

impl TfCursor<'_> {
    /// Current posting id; meaningless after exhaustion.
    pub fn cur_id(&self) -> u64 {
        self.cur_id
    }

    /// Current term frequency.
    pub fn cur_tf(&self) -> u32 {
        self.cur_tf
    }

    /// True when the cursor has run off the end of the list.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Greatest id in the whole list.
    pub fn list_last_id(&self) -> u64 {
        self.last_id
    }

    fn decode_next(&mut self) {
        if self.pos >= self.buf.len() {
            self.done = true;
            return;
        }
        let Some(gap) = get(self.buf, &mut self.pos) else {
            self.done = true;
            return;
        };
        self.cur_id += gap;
        let Some(n) = get(self.buf, &mut self.pos) else {
            self.done = true;
            return;
        };
        if skip_varints(self.buf, &mut self.pos, n as usize).is_none() {
            self.done = true;
            return;
        }
        self.cur_tf = n as u32;
        self.decoded += 1;
    }

    /// Advances to the next posting.
    pub fn advance(&mut self) {
        if self.done {
            return;
        }
        self.idx += 1;
        if self.idx >= self.total {
            self.done = true;
            return;
        }
        self.decode_next();
    }

    /// The block index holding the current entry. Blocks are uniform
    /// ([`BLOCK_ENTRIES`] each, except the tail), so this is a division.
    fn cur_block(&self) -> usize {
        self.idx / BLOCK_ENTRIES
    }

    /// Max term frequency of the current block; `u32::MAX` (no useful
    /// bound) for blockless lists.
    pub fn block_max_tf(&self) -> u32 {
        self.blocks
            .get(self.cur_block())
            .map_or(u32::MAX, |b| b.max_tf)
    }

    /// Last id of the current block (the whole list when blockless).
    pub fn block_last_id(&self) -> u64 {
        self.blocks
            .get(self.cur_block())
            .map_or(self.last_id, |b| b.last_id)
    }

    /// Positions the cursor on the first posting with id >= `target`.
    /// Jumps whole blocks via the skip metadata when available.
    pub fn seek(&mut self, target: u64) {
        if self.done || self.cur_id >= target {
            return;
        }
        if target > self.last_id {
            // Count the blocks we never had to open.
            if !self.blocks.is_empty() {
                self.blocks_skipped += (self.blocks.len() - self.cur_block()) as u64;
            }
            self.done = true;
            return;
        }
        if !self.blocks.is_empty() {
            let cb = self.cur_block();
            // First block whose last id can hold the target.
            let tb = cb + self.blocks[cb..].partition_point(|b| b.last_id < target);
            if tb > cb {
                self.blocks_skipped += (tb - cb) as u64;
                let b = &self.blocks[tb];
                self.pos = b.offset;
                self.idx = tb * BLOCK_ENTRIES;
                self.cur_id = if tb == 0 {
                    0
                } else {
                    self.blocks[tb - 1].last_id
                };
                self.decode_next();
            }
        }
        while !self.done && self.cur_id < target {
            self.advance();
        }
    }
}

/// Decoding iterator over a [`PostingList`].
pub struct PostingIter<'a> {
    buf: &'a [u8],
    pos: usize,
    prev_id: u64,
    first: bool,
}

impl Iterator for PostingIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let gap = get(self.buf, &mut self.pos)?;
        let id = if self.first { gap } else { self.prev_id + gap };
        self.first = false;
        self.prev_id = id;
        let n = get(self.buf, &mut self.pos)? as usize;
        let mut positions = Vec::with_capacity(n);
        let mut prev = 0u32;
        for i in 0..n {
            let g = get(self.buf, &mut self.pos)? as u32;
            let p = if i == 0 { g } else { prev + g };
            positions.push(p);
            prev = p;
        }
        Some(Posting { id, positions })
    }
}

/// Intersects two ascending id lists.
pub fn intersect(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Unions two ascending id lists.
pub fn union(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

/// Returns the first index `>= lo` with `large[idx] >= x` (or `large.len()`),
/// found by exponential (galloping) probe + binary search over the bounded
/// window. `O(log gap)` instead of `O(gap)`.
fn gallop_to(large: &[u64], lo: usize, x: u64) -> usize {
    if lo >= large.len() || large[lo] >= x {
        return lo;
    }
    // large[lo] < x: double the step until we overshoot, then binary-search
    // the last window.
    let mut prev = lo;
    let mut step = 1usize;
    let mut hi = lo + 1;
    while hi < large.len() && large[hi] < x {
        prev = hi;
        step *= 2;
        hi = prev + step;
    }
    let end = hi.min(large.len());
    prev + 1 + large[prev + 1..end].partition_point(|&v| v < x)
}

/// Intersects two ascending id lists by galloping through the larger one.
/// Wins when one side is much smaller: `O(small · log(large/small))`.
pub fn intersect_galloping(small: &[u64], large: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let mut lo = 0usize;
    for &x in small {
        lo = gallop_to(large, lo, x);
        if lo >= large.len() {
            break;
        }
        if large[lo] == x {
            out.push(x);
            lo += 1;
        }
    }
    out
}

/// Intersects two ascending id lists, picking linear merge or galloping
/// based on the size ratio.
pub fn intersect_adaptive(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    if large.len() / small.len() >= 8 {
        intersect_galloping(small, large)
    } else {
        intersect(small, large)
    }
}

/// Unions `k` ascending id lists in one heap-driven merge:
/// `O(n log k)` total instead of the `O(n·k)` of repeated pairwise union.
pub fn kway_union(lists: &[Vec<u64>]) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].clone(),
        2 => union(&lists[0], &lists[1]),
        _ => {
            let mut heap = BinaryHeap::with_capacity(lists.len());
            for (li, l) in lists.iter().enumerate() {
                if let Some(&v) = l.first() {
                    heap.push(Reverse((v, li, 0usize)));
                }
            }
            let mut out = Vec::new();
            while let Some(Reverse((v, li, pos))) = heap.pop() {
                if out.last() != Some(&v) {
                    out.push(v);
                }
                if let Some(&nv) = lists[li].get(pos + 1) {
                    heap.push(Reverse((nv, li, pos + 1)));
                }
            }
            out
        }
    }
}

/// `a \ b` over ascending id lists.
pub fn difference(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_round_trip() {
        let mut pl = PostingList::new();
        assert!(pl.push(3, &[0, 5, 9]));
        assert!(pl.push(10, &[2]));
        assert!(pl.push(1000000, &[7, 8]));
        let decoded: Vec<Posting> = pl.iter().collect();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].id, 3);
        assert_eq!(decoded[0].positions, vec![0, 5, 9]);
        assert_eq!(decoded[2].id, 1000000);
        assert_eq!(decoded[2].positions, vec![7, 8]);
        assert_eq!(pl.ids(), vec![3, 10, 1000000]);
    }

    #[test]
    fn ordering_contract_enforced() {
        let mut pl = PostingList::new();
        assert!(pl.push(5, &[1]));
        assert!(!pl.push(5, &[2]), "duplicate id rejected");
        assert!(!pl.push(4, &[2]), "descending id rejected");
        assert!(!pl.push(9, &[]), "empty positions rejected");
        assert_eq!(pl.len(), 1);
    }

    #[test]
    fn compression_is_compact_for_dense_ids() {
        let mut pl = PostingList::new();
        for id in 0..1000u64 {
            pl.push(id + 1, &[0]);
        }
        // gap=1 (1 byte) + n=1 (1) + pos=0 (1) → 3 bytes/posting.
        assert!(pl.byte_size() <= 3000, "got {}", pl.byte_size());
    }

    #[test]
    fn serialize_round_trip() {
        let mut pl = PostingList::new();
        pl.push(7, &[0, 3]);
        pl.push(900, &[12]);
        let mut buf = Vec::new();
        pl.serialize(&mut buf);
        let mut pos = 0;
        let back = PostingList::deserialize(&buf, &mut pos).unwrap();
        assert_eq!(back, pl);
        assert_eq!(pos, buf.len());
        // Truncated input fails cleanly.
        assert!(PostingList::deserialize(&buf[..buf.len() - 1], &mut 0).is_none());
    }

    #[test]
    fn galloping_matches_linear_intersect() {
        let small = vec![5, 900, 901, 5000, 90000];
        let large: Vec<u64> = (0..100_000u64).filter(|v| v % 3 == 0).collect();
        assert_eq!(
            intersect_galloping(&small, &large),
            intersect(&small, &large)
        );
        // Degenerate shapes.
        assert_eq!(intersect_galloping(&[], &large), Vec::<u64>::new());
        assert_eq!(intersect_galloping(&small, &[]), Vec::<u64>::new());
        assert_eq!(intersect_galloping(&[3], &[3]), vec![3]);
        assert_eq!(
            intersect_adaptive(&small, &large),
            intersect(&small, &large)
        );
        assert_eq!(
            intersect_adaptive(&large, &small),
            intersect(&small, &large)
        );
    }

    #[test]
    fn galloping_randomized_against_reference() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut a: Vec<u64> = (0..(rnd() % 60)).map(|_| rnd() % 500).collect();
            let mut b: Vec<u64> = (0..(rnd() % 600)).map(|_| rnd() % 500).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let expect = intersect(&a, &b);
            let (s, l) = if a.len() <= b.len() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            assert_eq!(intersect_galloping(s, l), expect);
            assert_eq!(intersect_adaptive(&a, &b), expect);
        }
    }

    #[test]
    fn kway_union_matches_pairwise() {
        let lists = vec![
            vec![1, 5, 9],
            vec![2, 5, 100],
            vec![],
            vec![9, 10, 11],
            vec![1, 2, 3],
        ];
        let mut expect = Vec::new();
        for l in &lists {
            expect = union(&expect, l);
        }
        assert_eq!(kway_union(&lists), expect);
        assert_eq!(kway_union(&[]), Vec::<u64>::new());
        assert_eq!(kway_union(&[vec![4, 8]]), vec![4, 8]);
        assert_eq!(kway_union(&[vec![1, 3], vec![2, 3]]), vec![1, 2, 3]);
    }

    #[test]
    fn set_operations() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![3, 4, 5, 10];
        assert_eq!(intersect(&a, &b), vec![3, 5]);
        assert_eq!(union(&a, &b), vec![1, 3, 4, 5, 7, 9, 10]);
        assert_eq!(difference(&a, &b), vec![1, 7, 9]);
        assert_eq!(intersect(&a, &[]), Vec::<u64>::new());
        assert_eq!(union(&a, &[]), a);
        assert_eq!(difference(&a, &[]), a);
    }
}
