//! The segmented, snapshot-isolated index: the writer facade over
//! memtable + segment chain + snapshot cell + compaction + persistence.
//!
//! Concurrency contract:
//! - **Readers** call [`SegmentedIndex::snapshot`] (lock-free) and evaluate
//!   against the returned [`IndexSnapshot`]. They never block on ingest.
//! - **Writers** (`add` / `remove` / `commit` / `save`) serialize on one
//!   internal mutex; NETMARK additionally serializes ingest operations, so
//!   this lock is uncontended in practice.
//! - **Compaction** runs concurrently with both: it merges immutable
//!   segments outside the writer lock and swaps the result in under it.
//!
//! Persistence is incremental: each sealed segment flushes to its own
//! `seg-<id>.seg` file exactly once, and a small `MANIFEST` (atomically
//! replaced via tmp+rename) names the live segments, the tombstone set and
//! the id allocator. `save()` therefore costs O(newly sealed data), not
//! O(total index). The legacy `NMTXIDX1` single-file format remains
//! readable via [`SegmentedIndex::from_legacy`] as the migration path.

use crate::compact::{merge, plan, CompactionPolicy, Compactor, Signal};
use crate::segment::{get, put, MemTable, Segment};
use crate::snapshot::{IndexSnapshot, SnapshotCell};
use crate::{InvertedIndex, TextQuery};
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

const MANIFEST_MAGIC: &[u8; 8] = b"NMTXMAN1";
const MANIFEST_NAME: &str = "MANIFEST";

fn segment_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:016x}.seg"))
}

/// What one [`SegmentedIndex::save`] call actually did — the incremental
/// persistence contract is asserted against these numbers in the bench
/// harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Segments newly flushed to disk by this call.
    pub segments_written: usize,
    /// Stale segment files (compacted away) deleted by this call.
    pub segments_deleted: usize,
    /// Bytes written for new segment files (manifest excluded).
    pub bytes_written: usize,
    /// Live segments named by the manifest after the call.
    pub total_segments: usize,
}

/// Point-in-time counters and gauges for `/xdb/stats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Live (non-tombstoned) documents.
    pub docs: u64,
    /// Distinct terms across segments.
    pub terms: u64,
    /// Stored postings (tombstoned ones included until purged).
    pub postings: u64,
    /// Compressed posting bytes.
    pub bytes: u64,
    /// Skip blocks across posting lists (zero until compaction or sealing
    /// produces v3 segments — the observable lazy-migration progress).
    pub blocks_total: u64,
    /// Sealed segments in the live chain.
    pub segments: u64,
    /// Outstanding tombstones awaiting physical purge.
    pub tombstones: u64,
    /// Snapshot publications (commits + compaction swaps).
    pub commits: u64,
    /// Memtable seals (one per non-empty commit).
    pub seals: u64,
    /// Completed compaction passes.
    pub compactions: u64,
    /// Input segments consumed by compaction merges.
    pub segments_merged: u64,
    /// Postings physically reclaimed by compaction.
    pub postings_purged: u64,
    /// Tombstoned ids physically reclaimed by compaction.
    pub ids_purged: u64,
    /// `save()` calls.
    pub saves: u64,
    /// Segment files written across all saves.
    pub segments_written: u64,
}

impl IndexStats {
    /// Folds another index's stats into this one — the sharded-mode
    /// aggregation. Every field here is extensive (docs, postings, bytes,
    /// segments, and the lifetime counters all describe disjoint physical
    /// state), so unlike `QueryStats`/`MvccStats` the merge is a plain
    /// field-wise sum.
    pub fn merge(&mut self, other: &IndexStats) {
        self.docs += other.docs;
        self.terms += other.terms;
        self.postings += other.postings;
        self.bytes += other.bytes;
        self.blocks_total += other.blocks_total;
        self.segments += other.segments;
        self.tombstones += other.tombstones;
        self.commits += other.commits;
        self.seals += other.seals;
        self.compactions += other.compactions;
        self.segments_merged += other.segments_merged;
        self.postings_purged += other.postings_purged;
        self.ids_purged += other.ids_purged;
        self.saves += other.saves;
        self.segments_written += other.segments_written;
    }
}

#[derive(Debug)]
struct WriterState {
    memtable: MemTable,
    segments: Vec<Arc<Segment>>,
    tombstones: Arc<HashSet<u64>>,
    /// Tombstones changed since the last publication.
    dirty: bool,
    next_seg_id: u64,
    /// Largest id ever indexed (adds must ascend across segments).
    last_doc_id: Option<u64>,
    /// Segment ids already flushed to their on-disk file.
    persisted: HashSet<u64>,
}

impl WriterState {
    fn contains(&self, id: u64) -> bool {
        if self.memtable.contains(id) {
            return true;
        }
        let idx = self
            .segments
            .partition_point(|s| s.max_id().is_some_and(|m| m < id));
        self.segments.get(idx).is_some_and(|s| s.contains(id))
    }
}

/// A segmented, snapshot-isolated inverted index (see module docs).
#[derive(Debug)]
pub struct SegmentedIndex {
    writer: Mutex<WriterState>,
    /// Serializes compaction passes (plan → merge → swap) against each
    /// other; never held while merging under the writer lock.
    compaction: Mutex<()>,
    cell: SnapshotCell,
    policy: CompactionPolicy,
    signal: Arc<Signal>,
    commits: AtomicU64,
    seals: AtomicU64,
    compactions: AtomicU64,
    segments_merged: AtomicU64,
    postings_purged: AtomicU64,
    ids_purged: AtomicU64,
    saves: AtomicU64,
    segments_written: AtomicU64,
}

impl Default for SegmentedIndex {
    fn default() -> SegmentedIndex {
        SegmentedIndex::new()
    }
}

impl SegmentedIndex {
    /// Empty index with the default compaction policy.
    pub fn new() -> SegmentedIndex {
        SegmentedIndex::with_policy(CompactionPolicy::default())
    }

    /// Empty index with an explicit compaction policy.
    pub fn with_policy(policy: CompactionPolicy) -> SegmentedIndex {
        SegmentedIndex::from_state(policy, Vec::new(), HashSet::new(), 0, HashSet::new())
    }

    fn from_state(
        policy: CompactionPolicy,
        segments: Vec<Arc<Segment>>,
        tombstones: HashSet<u64>,
        next_seg_id: u64,
        persisted: HashSet<u64>,
    ) -> SegmentedIndex {
        let last_doc_id = segments.iter().filter_map(|s| s.max_id()).max();
        let tombstones = Arc::new(tombstones);
        let snapshot = Arc::new(IndexSnapshot::new(segments.clone(), tombstones.clone()));
        SegmentedIndex {
            writer: Mutex::new(WriterState {
                memtable: MemTable::new(),
                segments,
                tombstones,
                dirty: false,
                next_seg_id,
                last_doc_id,
                persisted,
            }),
            compaction: Mutex::new(()),
            cell: SnapshotCell::new(snapshot),
            policy,
            signal: Arc::new(Signal::default()),
            commits: AtomicU64::new(0),
            seals: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            segments_merged: AtomicU64::new(0),
            postings_purged: AtomicU64::new(0),
            ids_purged: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            segments_written: AtomicU64::new(0),
        }
    }

    /// Converts a legacy single-map index (the `NMTXIDX1` on-disk format)
    /// into one sealed segment — the upgrade path for pre-segmented files.
    pub fn from_legacy(ix: InvertedIndex) -> SegmentedIndex {
        SegmentedIndex::from_legacy_with(ix, CompactionPolicy::default())
    }

    /// [`SegmentedIndex::from_legacy`] with an explicit policy.
    pub fn from_legacy_with(ix: InvertedIndex, policy: CompactionPolicy) -> SegmentedIndex {
        let (terms, ids, tombstones, postings) = ix.into_parts();
        // Legacy files written before the known-id fix may carry tombstones
        // for ids that were never indexed; drop them so the live-count
        // arithmetic stays exact.
        let tombstones: HashSet<u64> = tombstones
            .into_iter()
            .filter(|id| ids.binary_search(id).is_ok())
            .collect();
        let seg = Segment::from_parts(0, terms, ids, postings);
        let segments = if seg.is_empty() {
            Vec::new()
        } else {
            vec![Arc::new(seg)]
        };
        SegmentedIndex::from_state(policy, segments, tombstones, 1, HashSet::new())
    }

    fn lock_writer(&self) -> MutexGuard<'_, WriterState> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn signal(&self) -> Arc<Signal> {
        self.signal.clone()
    }

    /// Spawns the background compaction thread for this index. Hold the
    /// returned handle for the index's lifetime; dropping it stops the
    /// thread.
    pub fn start_compactor(self: &Arc<Self>) -> Compactor {
        Compactor::spawn(self.clone())
    }

    /// Indexes `text` under `id` in the active memtable. Ids must ascend
    /// across the whole index (the store's allocator guarantees this);
    /// violations are reported as `false` and skipped. Not visible to
    /// snapshots until [`SegmentedIndex::commit`].
    pub fn add(&self, id: u64, text: &str) -> bool {
        let mut st = self.lock_writer();
        if st.last_doc_id.is_some_and(|last| id <= last) {
            return false;
        }
        if !st.memtable.add(id, text) {
            return false;
        }
        st.last_doc_id = Some(id);
        true
    }

    /// Tombstones `id` (memtable or sealed). Unknown / already-removed ids
    /// are reported as `false`. Visible to snapshots at the next commit.
    pub fn remove(&self, id: u64) -> bool {
        let mut st = self.lock_writer();
        if st.tombstones.contains(&id) || !st.contains(id) {
            return false;
        }
        Arc::make_mut(&mut st.tombstones).insert(id);
        st.dirty = true;
        true
    }

    /// Seals the memtable (if non-empty) into a new immutable segment and
    /// publishes a fresh snapshot covering all changes since the last
    /// commit. Returns `true` if a new snapshot was published.
    pub fn commit(&self) -> bool {
        let published = {
            let mut st = self.lock_writer();
            self.commit_locked(&mut st)
        };
        if published {
            // Wake the compactor outside the writer lock.
            self.signal.notify();
        }
        published
    }

    fn commit_locked(&self, st: &mut WriterState) -> bool {
        let mut changed = false;
        if !st.memtable.is_empty() {
            let id = st.next_seg_id;
            st.next_seg_id += 1;
            let seg = Arc::new(st.memtable.seal(id));
            st.segments.push(seg);
            self.seals.fetch_add(1, Ordering::Relaxed);
            changed = true;
        }
        if st.dirty {
            st.dirty = false;
            changed = true;
        }
        if changed {
            self.publish_locked(st);
        }
        changed
    }

    fn publish_locked(&self, st: &WriterState) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.cell.store(Arc::new(IndexSnapshot::new(
            st.segments.clone(),
            st.tombstones.clone(),
        )));
    }

    /// The current published snapshot (lock-free; see [`SnapshotCell`]).
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        self.cell.load()
    }

    /// Evaluates `query` against the current snapshot.
    pub fn execute(&self, query: &TextQuery) -> Vec<u64> {
        self.snapshot().execute(query)
    }

    /// Ranked search against the current snapshot.
    pub fn search_ranked(&self, text: &str) -> Vec<(u64, u32)> {
        self.snapshot().search_ranked(text)
    }

    /// BM25-ranked search against the current snapshot.
    pub fn search_bm25(&self, text: &str) -> Vec<(u64, f64)> {
        self.snapshot().search_bm25(text)
    }

    /// Live documents in the current snapshot (committed state only).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when the current snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Distinct terms in the current snapshot.
    pub fn term_count(&self) -> usize {
        self.snapshot().term_count()
    }

    /// Compressed posting bytes in the current snapshot.
    pub fn byte_size(&self) -> usize {
        self.snapshot().byte_size()
    }

    /// Runs one compaction pass if the policy wants one. The merge runs
    /// outside the writer lock (inputs are immutable); only the final swap
    /// briefly takes it. Returns the number of segments merged, or `None`
    /// when the chain is in shape.
    pub fn compact_once(&self) -> Option<usize> {
        let _pass = self.compaction.lock().unwrap_or_else(|e| e.into_inner());
        let (window, inputs, tombstones, new_id) = {
            let mut st = self.lock_writer();
            let window = plan(&st.segments, &st.tombstones, &self.policy)?;
            let inputs: Vec<Arc<Segment>> = st.segments[window.clone()].to_vec();
            let tombstones = st.tombstones.clone();
            let new_id = st.next_seg_id;
            st.next_seg_id += 1;
            (window, inputs, tombstones, new_id)
        };
        let merged = merge(new_id, &inputs, &tombstones);
        {
            let mut st = self.lock_writer();
            // Commits only append behind the window and this pass holds the
            // compaction lock, so the window indices are still valid —
            // assert the identity match anyway.
            debug_assert!(st.segments[window.clone()]
                .iter()
                .zip(&inputs)
                .all(|(a, b)| Arc::ptr_eq(a, b)));
            for seg in &inputs {
                st.persisted.remove(&seg.id());
            }
            if !merged.purged_ids.is_empty() {
                let tombs = Arc::make_mut(&mut st.tombstones);
                for id in &merged.purged_ids {
                    tombs.remove(id);
                }
            }
            let replacement = if merged.segment.is_empty() {
                // Everything in the window was tombstoned: drop it outright.
                Vec::new()
            } else {
                vec![Arc::new(merged.segment)]
            };
            st.segments.splice(window.clone(), replacement);
            self.publish_locked(&st);
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.segments_merged
            .fetch_add(inputs.len() as u64, Ordering::Relaxed);
        self.postings_purged
            .fetch_add(merged.purged_postings as u64, Ordering::Relaxed);
        self.ids_purged
            .fetch_add(merged.purged_ids.len() as u64, Ordering::Relaxed);
        Some(inputs.len())
    }

    /// Runs compaction passes until the policy is satisfied; returns the
    /// number of passes (foreground counterpart of the background thread,
    /// used by tests and maintenance paths).
    pub fn compact(&self) -> usize {
        let mut passes = 0;
        while self.compact_once().is_some() {
            passes += 1;
        }
        passes
    }

    /// Persists the index into directory `dir` incrementally: only segments
    /// sealed (or produced by compaction) since the last save are written;
    /// stale files are pruned; the manifest is atomically replaced last. A
    /// pending memtable is committed first so the on-disk state matches a
    /// published snapshot.
    pub fn save(&self, dir: &Path) -> std::io::Result<SaveReport> {
        let mut st = self.lock_writer();
        let sealed = self.commit_locked(&mut st);
        std::fs::create_dir_all(dir)?;
        let mut report = SaveReport {
            total_segments: st.segments.len(),
            ..SaveReport::default()
        };
        let live: HashSet<u64> = st.segments.iter().map(|s| s.id()).collect();
        for seg in &st.segments {
            let path = segment_file(dir, seg.id());
            // Skip only segments already on disk *at this path*: saving to
            // a fresh directory (or after someone deleted a segment file)
            // must still produce a complete, loadable index.
            if st.persisted.contains(&seg.id()) && path.exists() {
                continue;
            }
            let buf = seg.serialize();
            let tmp = path.with_extension("tmp");
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&buf)?;
                f.sync_data()?;
            }
            std::fs::rename(&tmp, &path)?;
            report.segments_written += 1;
            report.bytes_written += buf.len();
        }
        // Prune files for segments compacted away since the last save.
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".seg"))
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            else {
                continue;
            };
            if !live.contains(&id) {
                std::fs::remove_file(entry.path())?;
                report.segments_deleted += 1;
            }
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(MANIFEST_MAGIC);
        put(&mut buf, st.next_seg_id);
        put(&mut buf, st.segments.len() as u64);
        for seg in &st.segments {
            put(&mut buf, seg.id());
        }
        let mut tombs: Vec<u64> = st.tombstones.iter().copied().collect();
        tombs.sort_unstable();
        put(&mut buf, tombs.len() as u64);
        let mut prev = 0u64;
        for (i, &id) in tombs.iter().enumerate() {
            put(&mut buf, if i == 0 { id } else { id - prev });
            prev = id;
        }
        let manifest = dir.join(MANIFEST_NAME);
        let tmp = manifest.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &manifest)?;
        st.persisted = live;
        drop(st);
        if sealed {
            self.signal.notify();
        }
        self.saves.fetch_add(1, Ordering::Relaxed);
        self.segments_written
            .fetch_add(report.segments_written as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Loads an index previously written by [`SegmentedIndex::save`] with
    /// the default policy. `None` for missing or corrupt state (callers
    /// rebuild from the store).
    pub fn load(dir: &Path) -> Option<SegmentedIndex> {
        SegmentedIndex::load_with(dir, CompactionPolicy::default())
    }

    /// [`SegmentedIndex::load`] with an explicit compaction policy.
    pub fn load_with(dir: &Path, policy: CompactionPolicy) -> Option<SegmentedIndex> {
        let buf = std::fs::read(dir.join(MANIFEST_NAME)).ok()?;
        if buf.len() < 8 || &buf[..8] != MANIFEST_MAGIC {
            return None;
        }
        let mut pos = 8usize;
        let next_seg_id = get(&buf, &mut pos)?;
        let nsegs = get(&buf, &mut pos)? as usize;
        let mut seg_ids = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            seg_ids.push(get(&buf, &mut pos)?);
        }
        let ntombs = get(&buf, &mut pos)? as usize;
        let mut tombstones = HashSet::with_capacity(ntombs);
        let mut prev = 0u64;
        for i in 0..ntombs {
            let gap = get(&buf, &mut pos)?;
            let id = if i == 0 { gap } else { prev.checked_add(gap)? };
            tombstones.insert(id);
            prev = id;
        }
        let mut segments = Vec::with_capacity(nsegs);
        let mut last_max: Option<u64> = None;
        for id in &seg_ids {
            if *id >= next_seg_id {
                return None;
            }
            let bytes = std::fs::read(segment_file(dir, *id)).ok()?;
            let seg = Segment::deserialize(&bytes)?;
            if seg.id() != *id {
                return None;
            }
            // The chain invariant: disjoint, ascending id ranges.
            if let Some(min) = seg.min_id() {
                if last_max.is_some_and(|m| min <= m) {
                    return None;
                }
                last_max = seg.max_id();
            }
            segments.push(Arc::new(seg));
        }
        let persisted: HashSet<u64> = seg_ids.into_iter().collect();
        Some(SegmentedIndex::from_state(
            policy,
            segments,
            tombstones,
            next_seg_id,
            persisted,
        ))
    }

    /// Counters and gauges for `/xdb/stats`.
    pub fn stats(&self) -> IndexStats {
        let snap = self.snapshot();
        IndexStats {
            docs: snap.len() as u64,
            terms: snap.term_count() as u64,
            postings: snap.posting_count() as u64,
            bytes: snap.byte_size() as u64,
            blocks_total: snap.block_count() as u64,
            segments: snap.segment_count() as u64,
            tombstones: snap.tombstones().len() as u64,
            commits: self.commits.load(Ordering::Relaxed),
            seals: self.seals.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            segments_merged: self.segments_merged.load(Ordering::Relaxed),
            postings_purged: self.postings_purged.load(Ordering::Relaxed),
            ids_purged: self.ids_purged.load(Ordering::Relaxed),
            saves: self.saves.load(Ordering::Relaxed),
            segments_written: self.segments_written.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> SegmentedIndex {
        let ix = SegmentedIndex::new();
        ix.add(1, "The space shuttle program");
        ix.add(2, "Shuttle engine anomaly report");
        ix.commit();
        ix.add(3, "Budget overview for the technology gap");
        ix.add(4, "The technology gap is shrinking fast");
        ix.commit();
        ix
    }

    #[test]
    fn matches_legacy_index_across_commits() {
        let ix = seeded();
        let mut legacy = InvertedIndex::new();
        legacy.add(1, "The space shuttle program");
        legacy.add(2, "Shuttle engine anomaly report");
        legacy.add(3, "Budget overview for the technology gap");
        legacy.add(4, "The technology gap is shrinking fast");
        assert_eq!(ix.snapshot().segment_count(), 2);
        for q in [
            TextQuery::keywords("shuttle"),
            TextQuery::keywords("technology gap"),
            TextQuery::phrase("the technology gap is"),
            TextQuery::Prefix("shut".into()),
            TextQuery::All,
            TextQuery::Not(
                Box::new(TextQuery::All),
                Box::new(TextQuery::Term("the".into())),
            ),
        ] {
            assert_eq!(ix.execute(&q), legacy.execute(&q), "{q:?}");
        }
        assert_eq!(ix.len(), legacy.len());
        assert_eq!(ix.term_count(), legacy.term_count());
        assert_eq!(ix.search_ranked("shuttle"), legacy.search_ranked("shuttle"));
    }

    #[test]
    fn uncommitted_adds_invisible_until_commit() {
        let ix = SegmentedIndex::new();
        ix.add(1, "alpha");
        assert!(ix.is_empty(), "memtable invisible before commit");
        assert!(ix.commit());
        assert!(!ix.commit(), "nothing new to publish");
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn remove_requires_known_id_and_commits() {
        let ix = seeded();
        assert!(!ix.remove(99), "unknown id rejected");
        assert!(ix.remove(2));
        assert!(!ix.remove(2), "double remove rejected");
        assert_eq!(ix.len(), 4, "tombstone invisible before commit");
        assert!(ix.commit());
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.execute(&TextQuery::keywords("shuttle")), vec![1]);
        // Removing an id still in the memtable works too.
        ix.add(10, "transient entry");
        assert!(ix.remove(10));
        ix.commit();
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn out_of_order_add_rejected_across_segments() {
        let ix = seeded();
        assert!(!ix.add(2, "stale id"), "id inside sealed range rejected");
        assert!(ix.add(10, "fresh id"));
    }

    #[test]
    fn compaction_merges_runs_and_purges_tombstones() {
        let ix = SegmentedIndex::with_policy(CompactionPolicy {
            small_postings: 1_000_000, // every segment is "small"
            max_segments: 4,
            tombstone_percent: 25,
        });
        for batch in 0..6u64 {
            for i in 0..10u64 {
                ix.add(batch * 100 + i + 1, "orbit telemetry frame");
            }
            ix.commit();
        }
        assert_eq!(ix.snapshot().segment_count(), 6);
        let before_bytes = ix.byte_size();
        let all: Vec<u64> = ix.execute(&TextQuery::All);
        assert_eq!(all.len(), 60);
        for id in all.iter().take(30) {
            assert!(ix.remove(*id));
        }
        ix.commit();
        let passes = ix.compact();
        assert!(passes >= 1);
        let snap = ix.snapshot();
        assert_eq!(snap.segment_count(), 1, "runs merged");
        assert_eq!(snap.len(), 30);
        assert_eq!(
            snap.tombstones().len(),
            0,
            "purged tombstones leave the set"
        );
        assert!(
            ix.byte_size() < before_bytes,
            "byte_size shrinks after purge: {} vs {}",
            ix.byte_size(),
            before_bytes
        );
        assert_eq!(ix.execute(&TextQuery::All), all[30..].to_vec());
        let stats = ix.stats();
        assert!(stats.compactions >= 1);
        assert_eq!(stats.ids_purged, 30);
    }

    #[test]
    fn compaction_drops_fully_dead_segments() {
        let ix = SegmentedIndex::with_policy(CompactionPolicy {
            small_postings: 1,
            max_segments: 8,
            tombstone_percent: 10,
        });
        for i in 1..=8u64 {
            ix.add(i, "ephemeral data");
        }
        ix.commit();
        for i in 1..=8u64 {
            ix.remove(i);
        }
        ix.commit();
        ix.compact();
        let snap = ix.snapshot();
        assert_eq!(snap.segment_count(), 0);
        assert_eq!(snap.len(), 0);
        assert!(snap.tombstones().is_empty());
    }

    #[test]
    fn save_is_incremental_and_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("netmark-segidx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ix = seeded();
        ix.remove(3);
        let r1 = ix.save(&dir).unwrap();
        assert_eq!(r1.segments_written, 2, "both segments flushed");
        assert_eq!(r1.total_segments, 2);
        // No changes → nothing rewritten.
        let r2 = ix.save(&dir).unwrap();
        assert_eq!(r2.segments_written, 0);
        assert_eq!(r2.bytes_written, 0);
        // One new batch → exactly one new segment file.
        ix.add(5, "Fresh telemetry downlink");
        ix.commit();
        let r3 = ix.save(&dir).unwrap();
        assert_eq!(r3.segments_written, 1);
        assert!(r3.bytes_written < r1.bytes_written);
        let back = SegmentedIndex::load(&dir).expect("load");
        assert_eq!(back.len(), ix.len());
        assert_eq!(back.snapshot().segment_count(), 3);
        for q in [
            TextQuery::keywords("technology gap"),
            TextQuery::keywords("telemetry"),
            TextQuery::All,
        ] {
            assert_eq!(back.execute(&q), ix.execute(&q), "{q:?}");
        }
        // Loaded state is fully persisted: immediate save is a no-op.
        let r4 = back.save(&dir).unwrap();
        assert_eq!(r4.segments_written, 0);
        // Adds continue after the persisted id range.
        assert!(!back.add(5, "dup"));
        assert!(back.add(6, "continues"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_prunes_files_for_compacted_segments() {
        let dir = std::env::temp_dir().join(format!("netmark-segidx-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ix = SegmentedIndex::with_policy(CompactionPolicy {
            small_postings: 1_000_000,
            max_segments: 8,
            tombstone_percent: 25,
        });
        for batch in 0..3u64 {
            ix.add(batch * 10 + 1, "alpha beta");
            ix.commit();
        }
        let r1 = ix.save(&dir).unwrap();
        assert_eq!(r1.segments_written, 3);
        assert!(ix.compact() >= 1);
        let r2 = ix.save(&dir).unwrap();
        assert_eq!(r2.segments_written, 1, "merged segment is new");
        assert_eq!(r2.segments_deleted, 3, "inputs pruned");
        assert_eq!(r2.total_segments, 1);
        let back = SegmentedIndex::load(&dir).expect("load after prune");
        assert_eq!(back.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_missing_state_loads_as_none() {
        let dir = std::env::temp_dir().join(format!("netmark-segidx-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(SegmentedIndex::load(&dir).is_none(), "missing dir");
        let ix = seeded();
        ix.save(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_NAME), b"garbage").unwrap();
        assert!(SegmentedIndex::load(&dir).is_none(), "corrupt manifest");
        ix.save(&dir).unwrap();
        assert!(SegmentedIndex::load(&dir).is_some(), "manifest rewritten");
        // A manifest naming a missing segment file fails cleanly.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "seg") {
                std::fs::remove_file(p).unwrap();
            }
        }
        assert!(SegmentedIndex::load(&dir).is_none(), "missing segment file");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_migration_preserves_results() {
        let mut legacy = InvertedIndex::new();
        legacy.add(1, "The space shuttle program");
        legacy.add(2, "Shuttle engine anomaly report");
        legacy.add(3, "Budget overview");
        legacy.remove(2);
        let expect_all = legacy.execute(&TextQuery::All);
        let expect_shuttle = legacy.execute(&TextQuery::keywords("shuttle"));
        let ix = SegmentedIndex::from_legacy(legacy);
        assert_eq!(ix.execute(&TextQuery::All), expect_all);
        assert_eq!(ix.execute(&TextQuery::keywords("shuttle")), expect_shuttle);
        assert_eq!(ix.len(), 2);
        // Migrated index keeps accepting ascending adds.
        assert!(ix.add(4, "post migration doc"));
        ix.commit();
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn background_compactor_converges() {
        let ix = Arc::new(SegmentedIndex::with_policy(CompactionPolicy {
            small_postings: 1_000_000,
            max_segments: 2,
            tombstone_percent: 25,
        }));
        let _compactor = ix.start_compactor();
        for batch in 0..10u64 {
            for i in 0..5u64 {
                ix.add(batch * 10 + i + 1, "steady ingest stream");
            }
            ix.commit();
        }
        // The compactor runs async; wait for it to settle the chain.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let n = ix.snapshot().segment_count();
            if n <= 2 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "compactor failed to converge: {n} segments"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(ix.len(), 50);
    }
}
