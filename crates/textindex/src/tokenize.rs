//! Text tokenization for indexing and querying.
//!
//! Terms are maximal runs of alphanumeric characters, lowercased. The same
//! tokenizer is applied on both the indexing and the query path so that
//! `Content=Shuttle` matches "shuttle", "Shuttle," and "SHUTTLE".

/// One token with its word position (for phrase queries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextToken {
    /// Lowercased term.
    pub term: String,
    /// 0-based word position within the input.
    pub position: u32,
}

/// Splits `text` into lowercase alphanumeric terms with word positions.
pub fn tokenize_text(text: &str) -> Vec<TextToken> {
    let mut out = Vec::new();
    let mut pos = 0u32;
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            out.push(TextToken {
                term: std::mem::take(&mut current),
                position: pos,
            });
            pos += 1;
        }
    }
    if !current.is_empty() {
        out.push(TextToken {
            term: current,
            position: pos,
        });
    }
    out
}

/// Terms only, for queries.
pub fn query_terms(text: &str) -> Vec<String> {
    tokenize_text(text).into_iter().map(|t| t.term).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_split_and_lowercase() {
        let toks = tokenize_text("The Technology Gap, shrinking!");
        let terms: Vec<&str> = toks.iter().map(|t| t.term.as_str()).collect();
        assert_eq!(terms, vec!["the", "technology", "gap", "shrinking"]);
        let positions: Vec<u32> = toks.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1, 2, 3]);
    }

    #[test]
    fn numbers_are_terms() {
        let terms = query_terms("Apollo 13 budget FY2005");
        assert_eq!(terms, vec!["apollo", "13", "budget", "fy2005"]);
    }

    #[test]
    fn unicode_words() {
        let terms = query_terms("café naïve Ärger");
        assert_eq!(terms, vec!["café", "naïve", "ärger"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize_text("").is_empty());
        assert!(tokenize_text("...---!!!").is_empty());
    }

    #[test]
    fn positions_skip_punctuation_not_words() {
        let toks = tokenize_text("a - b -- c");
        assert_eq!(toks[2].term, "c");
        assert_eq!(toks[2].position, 2);
    }
}
