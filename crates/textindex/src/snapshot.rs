//! Snapshot isolation for readers: an immutable view of the segment chain
//! plus a lock-free publication cell.
//!
//! Readers call [`SnapshotCell::load`] once per query and then evaluate
//! against the returned [`IndexSnapshot`] without ever touching a lock —
//! ingest and compaction publish *new* snapshots instead of mutating the
//! one readers hold. A long analytical query therefore never blocks a
//! batch commit, and a batch commit never stalls the query fleet.

use crate::segment::Segment;
use crate::TextQuery;
use std::cell::UnsafeCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable, fully consistent view of the index at one publication
/// point: the sealed segment chain (disjoint ascending id ranges) and the
/// tombstone set that was current when the snapshot was taken.
#[derive(Debug)]
pub struct IndexSnapshot {
    segments: Vec<Arc<Segment>>,
    tombstones: Arc<HashSet<u64>>,
    /// Total ids across segments (every tombstone names one of them).
    total_ids: usize,
    /// Sum of segment postings.
    postings: usize,
    /// Sum of segment compressed byte sizes.
    bytes: usize,
}

impl IndexSnapshot {
    /// Snapshot of an empty index.
    pub fn empty() -> IndexSnapshot {
        IndexSnapshot::new(Vec::new(), Arc::new(HashSet::new()))
    }

    /// Builds a snapshot over `segments` (in id-range order) with `tombstones`.
    pub(crate) fn new(segments: Vec<Arc<Segment>>, tombstones: Arc<HashSet<u64>>) -> IndexSnapshot {
        let total_ids = segments.iter().map(|s| s.len()).sum();
        let postings = segments.iter().map(|s| s.postings()).sum();
        let bytes = segments.iter().map(|s| s.byte_size()).sum();
        IndexSnapshot {
            segments,
            tombstones,
            total_ids,
            postings,
            bytes,
        }
    }

    /// The sealed segments, oldest id range first.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Tombstoned ids (every one names an id present in some segment).
    pub fn tombstones(&self) -> &HashSet<u64> {
        &self.tombstones
    }

    /// Number of live (non-tombstoned) indexed nodes.
    pub fn len(&self) -> usize {
        self.total_ids.saturating_sub(self.tombstones.len())
    }

    /// True when no live nodes are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total postings across segments (tombstoned postings included until
    /// compaction purges them).
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Compressed bytes across all posting lists.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Number of distinct terms across segments (a term indexed in several
    /// segments counts once).
    pub fn term_count(&self) -> usize {
        match self.segments.len() {
            0 => 0,
            1 => self.segments[0].term_count(),
            _ => {
                let mut distinct: BTreeSet<&str> = BTreeSet::new();
                for seg in &self.segments {
                    distinct.extend(seg.terms().map(|(t, _)| t));
                }
                distinct.len()
            }
        }
    }

    /// Evaluates `query`, returning live node ids ascending — byte-identical
    /// to [`InvertedIndex::execute`](crate::InvertedIndex::execute) over the
    /// same documents. Set operations distribute over the disjoint segment
    /// id ranges, so each segment is evaluated independently and the results
    /// concatenate in segment order.
    pub fn execute(&self, query: &TextQuery) -> Vec<u64> {
        let mut out = Vec::new();
        for seg in &self.segments {
            let matches = seg.eval(query);
            if self.tombstones.is_empty() {
                out.extend_from_slice(&matches);
            } else {
                out.extend(
                    matches
                        .iter()
                        .copied()
                        .filter(|id| !self.tombstones.contains(id)),
                );
            }
        }
        out
    }

    /// Ranked search: ids scored by total term frequency, descending
    /// (same ordering contract as the legacy index).
    pub fn search_ranked(&self, text: &str) -> Vec<(u64, u32)> {
        let terms = crate::tokenize::query_terms(text);
        let mut scores: HashMap<u64, u32> = HashMap::new();
        for seg in &self.segments {
            seg.score_terms(&terms, &self.tombstones, &mut scores);
        }
        let mut out: Vec<(u64, u32)> = scores.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// BM25-ranked search: live ids scored by Okapi BM25 over the snapshot's
    /// corpus statistics, descending (score ties break on ascending id).
    ///
    /// N and avgdl come from the segment chain's stored length metadata, df
    /// from summing a term's live postings across segments — so the score is
    /// a *global* function of the snapshot, identical no matter how the docs
    /// are split into segments (see the segmented-vs-legacy property test).
    pub fn search_bm25(&self, text: &str) -> Vec<(u64, f64)> {
        const K1: f64 = 1.2;
        const B: f64 = 0.75;
        let terms = crate::tokenize::query_terms(text);
        let n_live = self.len();
        if terms.is_empty() || n_live == 0 {
            return Vec::new();
        }
        let mut total_len: u64 = self.segments.iter().map(|s| s.length_total()).sum();
        for &t in self.tombstones.iter() {
            for seg in &self.segments {
                if let Some(l) = seg.length_of(t) {
                    total_len -= l as u64;
                    break;
                }
            }
        }
        let avgdl = (total_len as f64 / n_live as f64).max(f64::MIN_POSITIVE);
        let mut scores: HashMap<u64, f64> = HashMap::new();
        for term in &terms {
            // (id, tf, dl) of the term's live postings, gathered first so
            // df is known before any score lands.
            let mut hits: Vec<(u64, u32, u32)> = Vec::new();
            for seg in &self.segments {
                if let Some(pl) = seg.posting(term) {
                    for p in pl.iter() {
                        if !self.tombstones.contains(&p.id) {
                            let dl = seg.length_of(p.id).unwrap_or(0);
                            hits.push((p.id, p.positions.len() as u32, dl));
                        }
                    }
                }
            }
            if hits.is_empty() {
                continue;
            }
            let df = hits.len() as f64;
            let idf = (1.0 + (n_live as f64 - df + 0.5) / (df + 0.5)).ln();
            for (id, tf, dl) in hits {
                let tf = tf as f64;
                let norm = K1 * (1.0 - B + B * dl as f64 / avgdl);
                *scores.entry(id).or_default() += idf * tf * (K1 + 1.0) / (tf + norm);
            }
        }
        let mut out: Vec<(u64, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }
}

/// Lock-free snapshot publication: readers pay one atomic version load, a
/// reader-count increment/decrement and an `Arc` clone — no `RwLock`, no
/// writer can ever block them for longer than its own pointer swap.
///
/// Left/right scheme: two slots hold the current and previous snapshot
/// `Arc`. `version`'s parity selects the live slot. A reader (1) loads the
/// version, (2) registers in the per-slot in-flight counter, (3) re-checks
/// the version — if it moved, unregister and retry — then clones the `Arc`
/// and unregisters. A writer (serialized by `write`) prepares the *inactive*
/// slot: it waits for that slot's stragglers to drain (readers hold it only
/// for the duration of an `Arc` clone), stores the new snapshot, and flips
/// the version. Readers registered on the active slot are never disturbed.
/// All atomics are `SeqCst`: publication is rare (once per commit /
/// compaction), so the fence cost is irrelevant next to correctness.
pub struct SnapshotCell {
    version: AtomicU64,
    readers: [AtomicU64; 2],
    slots: [UnsafeCell<Arc<IndexSnapshot>>; 2],
    write: Mutex<()>,
}

// SAFETY: slot contents are only written by the single writer holding
// `write`, and only after the target slot's reader count has drained to
// zero; readers only clone out of the slot the version currently points
// at while registered in its counter. `Arc<IndexSnapshot>` is Send + Sync.
unsafe impl Send for SnapshotCell {}
unsafe impl Sync for SnapshotCell {}

impl SnapshotCell {
    /// A cell initially holding `snap`.
    pub fn new(snap: Arc<IndexSnapshot>) -> SnapshotCell {
        SnapshotCell {
            version: AtomicU64::new(0),
            readers: [AtomicU64::new(0), AtomicU64::new(0)],
            slots: [UnsafeCell::new(snap.clone()), UnsafeCell::new(snap)],
            write: Mutex::new(()),
        }
    }

    /// Returns the current snapshot. Lock-free and wait-free in practice:
    /// the retry loop only spins when a publication lands between the two
    /// version loads, and publications are per-commit rare.
    pub fn load(&self) -> Arc<IndexSnapshot> {
        loop {
            let v = self.version.load(Ordering::SeqCst);
            let slot = (v & 1) as usize;
            self.readers[slot].fetch_add(1, Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) == v {
                // The slot cannot be overwritten while we are registered:
                // the writer that would target it must first observe our
                // registration and wait for it to drain.
                let snap = unsafe { (*self.slots[slot].get()).clone() };
                self.readers[slot].fetch_sub(1, Ordering::SeqCst);
                return snap;
            }
            // A publication raced us; re-read the fresh version.
            self.readers[slot].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes `snap` as the new current snapshot.
    pub fn store(&self, snap: Arc<IndexSnapshot>) {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let v = self.version.load(Ordering::SeqCst);
        let target = ((v + 1) & 1) as usize;
        // Wait out stragglers registered on the inactive slot (readers of
        // version v-1 that have not yet unregistered). They hold the slot
        // only across an Arc clone, so this is a bounded spin.
        while self.readers[target].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        unsafe {
            *self.slots[target].get() = snap;
        }
        self.version.store(v + 1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("version", &self.version.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::MemTable;

    fn snap_of(docs: &[(u64, &str)]) -> Arc<IndexSnapshot> {
        let mut mt = MemTable::new();
        for &(id, text) in docs {
            mt.add(id, text);
        }
        let seg = Arc::new(mt.seal(0));
        Arc::new(IndexSnapshot::new(vec![seg], Arc::new(HashSet::new())))
    }

    #[test]
    fn cell_load_store_round_trip() {
        let cell = SnapshotCell::new(Arc::new(IndexSnapshot::empty()));
        assert_eq!(cell.load().len(), 0);
        cell.store(snap_of(&[(1, "alpha"), (2, "beta")]));
        assert_eq!(cell.load().len(), 2);
        cell.store(snap_of(&[(1, "alpha")]));
        assert_eq!(cell.load().len(), 1);
    }

    #[test]
    fn concurrent_readers_see_only_published_snapshots() {
        // Publisher cycles through snapshots with 1..=N docs; readers must
        // only ever observe one of those exact states (len == term count of
        // a published state, never a torn mix).
        let cell = Arc::new(SnapshotCell::new(snap_of(&[(1, "w0")])));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut observed = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let s = cell.load();
                    let n = s.len() as u64;
                    assert!((1..=64).contains(&n), "torn snapshot: {n} docs");
                    // Snapshot internal consistency: executing All returns
                    // exactly len ids.
                    assert_eq!(s.execute(&TextQuery::All).len() as u64, n);
                    observed = observed.max(n);
                }
                observed
            }));
        }
        for round in 2..=64u64 {
            let docs: Vec<(u64, String)> =
                (1..=round).map(|i| (i, format!("w{i} common"))).collect();
            let borrowed: Vec<(u64, &str)> = docs.iter().map(|(i, t)| (*i, t.as_str())).collect();
            cell.store(snap_of(&borrowed));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            let seen = h.join().expect("reader panicked");
            assert!(seen >= 1);
        }
        assert_eq!(cell.load().len(), 64);
    }
}
