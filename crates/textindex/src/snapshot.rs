//! Snapshot isolation for readers: an immutable view of the segment chain
//! plus a lock-free publication cell.
//!
//! Readers call [`SnapshotCell::load`] once per query and then evaluate
//! against the returned [`IndexSnapshot`] without ever touching a lock —
//! ingest and compaction publish *new* snapshots instead of mutating the
//! one readers hold. A long analytical query therefore never blocks a
//! batch commit, and a batch commit never stalls the query fleet.

use crate::postings::TfCursor;
use crate::segment::Segment;
use crate::TextQuery;
use std::cell::UnsafeCell;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Okapi BM25 `k1` (term-frequency saturation).
const K1: f64 = 1.2;
/// Okapi BM25 `b` (length-normalization strength).
const B: f64 = 0.75;
/// Relative inflation applied to every pruning bound before comparing it
/// with the heap threshold. A bound and the exactly-accumulated score it
/// dominates are computed by different floating-point expressions; the
/// slack absorbs their rounding difference (a few ulps) so a skip decision
/// never drops a document the exhaustive path would have kept.
const FP_SLACK: f64 = 1.0 + 1e-9;

/// Upper bound on one occurrence's BM25 contribution per unit idf: the
/// term-frequency saturation `tf·(K1+1)/(tf+norm)` evaluated at the
/// smallest possible norm (`dl → 0`). Monotone in `tf`, so a block's max
/// term frequency bounds every posting in the block.
fn ub_tf(tf: u32) -> f64 {
    let t = tf as f64;
    t * (K1 + 1.0) / (t + K1 * (1.0 - B))
}

/// An immutable, fully consistent view of the index at one publication
/// point: the sealed segment chain (disjoint ascending id ranges) and the
/// tombstone set that was current when the snapshot was taken.
#[derive(Debug)]
pub struct IndexSnapshot {
    segments: Vec<Arc<Segment>>,
    tombstones: Arc<HashSet<u64>>,
    /// Total ids across segments (every tombstone names one of them).
    total_ids: usize,
    /// Sum of segment postings.
    postings: usize,
    /// Sum of segment compressed byte sizes.
    bytes: usize,
    /// Sum of segment skip-block counts.
    blocks: usize,
}

impl IndexSnapshot {
    /// Snapshot of an empty index.
    pub fn empty() -> IndexSnapshot {
        IndexSnapshot::new(Vec::new(), Arc::new(HashSet::new()))
    }

    /// Builds a snapshot over `segments` (in id-range order) with `tombstones`.
    pub(crate) fn new(segments: Vec<Arc<Segment>>, tombstones: Arc<HashSet<u64>>) -> IndexSnapshot {
        let total_ids = segments.iter().map(|s| s.len()).sum();
        let postings = segments.iter().map(|s| s.postings()).sum();
        let bytes = segments.iter().map(|s| s.byte_size()).sum();
        let blocks = segments.iter().map(|s| s.blocks_total()).sum();
        IndexSnapshot {
            segments,
            tombstones,
            total_ids,
            postings,
            bytes,
            blocks,
        }
    }

    /// The sealed segments, oldest id range first.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Tombstoned ids (every one names an id present in some segment).
    pub fn tombstones(&self) -> &HashSet<u64> {
        &self.tombstones
    }

    /// Number of live (non-tombstoned) indexed nodes.
    pub fn len(&self) -> usize {
        self.total_ids.saturating_sub(self.tombstones.len())
    }

    /// True when no live nodes are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total postings across segments (tombstoned postings included until
    /// compaction purges them).
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Compressed bytes across all posting lists.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Skip blocks across all posting lists (zero until v3 segments land).
    pub fn block_count(&self) -> usize {
        self.blocks
    }

    /// Number of distinct terms across segments (a term indexed in several
    /// segments counts once).
    pub fn term_count(&self) -> usize {
        match self.segments.len() {
            0 => 0,
            1 => self.segments[0].term_count(),
            _ => {
                let mut distinct: BTreeSet<&str> = BTreeSet::new();
                for seg in &self.segments {
                    distinct.extend(seg.terms().map(|(t, _)| t));
                }
                distinct.len()
            }
        }
    }

    /// Evaluates `query`, returning live node ids ascending — byte-identical
    /// to [`InvertedIndex::execute`](crate::InvertedIndex::execute) over the
    /// same documents. Set operations distribute over the disjoint segment
    /// id ranges, so each segment is evaluated independently and the results
    /// concatenate in segment order.
    pub fn execute(&self, query: &TextQuery) -> Vec<u64> {
        let mut out = Vec::new();
        for seg in &self.segments {
            let matches = seg.eval(query);
            if self.tombstones.is_empty() {
                out.extend_from_slice(&matches);
            } else {
                out.extend(
                    matches
                        .iter()
                        .copied()
                        .filter(|id| !self.tombstones.contains(id)),
                );
            }
        }
        out
    }

    /// Ranked search: ids scored by total term frequency, descending
    /// (same ordering contract as the legacy index).
    pub fn search_ranked(&self, text: &str) -> Vec<(u64, u32)> {
        let terms = crate::tokenize::query_terms(text);
        let mut scores: HashMap<u64, u32> = HashMap::new();
        for seg in &self.segments {
            seg.score_terms(&terms, &self.tombstones, &mut scores);
        }
        let mut out: Vec<(u64, u32)> = scores.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// BM25-ranked search: live ids scored by Okapi BM25 over the snapshot's
    /// corpus statistics, descending (score ties break on ascending id).
    ///
    /// N and avgdl come from the segment chain's stored length metadata, df
    /// from summing a term's live postings across segments — so the score is
    /// a *global* function of the snapshot, identical no matter how the docs
    /// are split into segments (see the segmented-vs-legacy property test).
    pub fn search_bm25(&self, text: &str) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self.bm25_score_map(text).into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Per-node BM25 scores in ascending id order: the same documents with
    /// bit-identical scores as [`IndexSnapshot::search_bm25`] (one shared
    /// accumulation), but ordered for streaming aggregation instead of by
    /// rank — a consumer folding node scores into larger units processes
    /// them in the same deterministic order whether or not it later prunes.
    pub fn bm25_node_scores(&self, text: &str) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self.bm25_score_map(text).into_iter().collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Shared exhaustive BM25 accumulation (see [`IndexSnapshot::search_bm25`]
    /// for the scoring contract).
    fn bm25_score_map(&self, text: &str) -> HashMap<u64, f64> {
        let terms = crate::tokenize::query_terms(text);
        let n_live = self.len();
        if terms.is_empty() || n_live == 0 {
            return HashMap::new();
        }
        let mut total_len: u64 = self.segments.iter().map(|s| s.length_total()).sum();
        for &t in self.tombstones.iter() {
            for seg in &self.segments {
                if let Some(l) = seg.length_of(t) {
                    total_len -= l as u64;
                    break;
                }
            }
        }
        let avgdl = (total_len as f64 / n_live as f64).max(f64::MIN_POSITIVE);
        let mut scores: HashMap<u64, f64> = HashMap::new();
        for term in &terms {
            // (id, tf, dl) of the term's live postings, gathered first so
            // df is known before any score lands.
            let mut hits: Vec<(u64, u32, u32)> = Vec::new();
            for seg in &self.segments {
                if let Some(pl) = seg.posting(term) {
                    for p in pl.iter() {
                        if !self.tombstones.contains(&p.id) {
                            let dl = seg.length_of(p.id).unwrap_or(0);
                            hits.push((p.id, p.positions.len() as u32, dl));
                        }
                    }
                }
            }
            if hits.is_empty() {
                continue;
            }
            let df = hits.len() as f64;
            let idf = (1.0 + (n_live as f64 - df + 0.5) / (df + 0.5)).ln();
            for (id, tf, dl) in hits {
                let tf = tf as f64;
                let norm = K1 * (1.0 - B + B * dl as f64 / avgdl);
                *scores.entry(id).or_default() += idf * tf * (K1 + 1.0) / (tf + norm);
            }
        }
        scores
    }

    /// Exact top-`k` BM25 search with block-max MaxScore pruning: returns
    /// precisely the first `k` entries of [`IndexSnapshot::search_bm25`] —
    /// bit-identical scores, same (score desc, id asc) tie-break — while
    /// skipping whole posting blocks whose score upper bound cannot enter
    /// the current top-`k`.
    ///
    /// How: one posting stream per unique query term, chained across the
    /// segment chain (disjoint ascending id ranges make the chain globally
    /// ascending). Streams are ordered by their score upper bound
    /// (`idf · ub_tf(max_tf) · occurrences`); the lowest-bound prefix whose
    /// bounds sum below the running threshold is *non-essential* — those
    /// streams are only probed for documents some essential stream
    /// surfaced. For each candidate the bound is refined with the matching
    /// streams' per-block maxima, and when even that cannot beat the
    /// threshold the whole covered id range is skipped without decoding.
    /// Every bound comparison uses [`FP_SLACK`] so floating-point rounding
    /// can never skip a document the exhaustive path keeps; candidates
    /// arrive in ascending id order, so an equal-scoring later document
    /// never displaces an incumbent — exactly the exhaustive tie-break.
    ///
    /// Lists from pre-block (v2/v1) segments carry no skip metadata: their
    /// max term frequency is unknown (bounded by saturation at `tf → ∞`)
    /// and their "block" spans the whole list, so they are never skipped —
    /// still exact, just unpruned until compaction rewrites the segment.
    /// With tombstones present the df/avgdl shortcuts below would count
    /// dead postings, so the search falls back to truncating the exhaustive
    /// reference; compaction purges tombstones and restores pruning.
    pub fn search_bm25_topk(&self, text: &str, k: usize, stats: &mut TopkStats) -> Vec<(u64, f64)> {
        let terms = crate::tokenize::query_terms(text);
        let n_live = self.len();
        if k == 0 || terms.is_empty() || n_live == 0 {
            return Vec::new();
        }
        if !self.tombstones.is_empty() {
            let mut out = self.search_bm25(text);
            for term in &terms {
                for seg in &self.segments {
                    if let Some(pl) = seg.posting(term) {
                        stats.postings_total += pl.len() as u64;
                        stats.postings_decoded += pl.len() as u64;
                    }
                }
            }
            out.truncate(k);
            return out;
        }
        let total_len: u64 = self.segments.iter().map(|s| s.length_total()).sum();
        let avgdl = (total_len as f64 / n_live as f64).max(f64::MIN_POSITIVE);
        // Unique terms with their occurrence positions in the query: a
        // duplicated term gets ONE stream, and its contribution lands once
        // per occurrence position so the final per-document sum runs in the
        // same order as the exhaustive accumulation (bit-identical scores).
        let mut uniq: Vec<(&str, Vec<usize>)> = Vec::new();
        for (i, t) in terms.iter().enumerate() {
            match uniq.iter_mut().find(|(u, _)| *u == t.as_str()) {
                Some((_, ps)) => ps.push(i),
                None => uniq.push((t.as_str(), vec![i])),
            }
        }
        let mut streams: Vec<TermStream<'_>> = Vec::new();
        for (term, positions) in uniq {
            let mut parts: Vec<(TfCursor<'_>, usize)> = Vec::new();
            let mut df = 0usize;
            let mut max_tf = 0u32;
            let mut blockless = false;
            for (si, seg) in self.segments.iter().enumerate() {
                if let Some(pl) = seg.posting(term) {
                    if pl.is_empty() {
                        continue;
                    }
                    df += pl.len();
                    match pl.max_tf() {
                        Some(m) => max_tf = max_tf.max(m),
                        None => blockless = true,
                    }
                    parts.push((pl.tf_cursor(), si));
                }
            }
            if df == 0 {
                continue;
            }
            stats.postings_total += df as u64;
            let dff = df as f64;
            let idf = (1.0 + (n_live as f64 - dff + 0.5) / (dff + 0.5)).ln();
            let mult = positions.len() as f64;
            let bound_tf = if blockless { u32::MAX } else { max_tf };
            streams.push(TermStream {
                parts,
                cur: 0,
                idf,
                mult,
                term_ub: idf * ub_tf(bound_tf) * mult,
                positions,
            });
        }
        if streams.is_empty() {
            return Vec::new();
        }
        streams.sort_by(|a, b| a.term_ub.total_cmp(&b.term_ub));
        let m = streams.len();
        // prefix[j] = summed upper bounds of the j lowest-bound streams.
        let mut prefix = vec![0.0f64; m + 1];
        for j in 0..m {
            prefix[j + 1] = prefix[j] + streams[j].term_ub;
        }
        let mut heap: BinaryHeap<Weakest> = BinaryHeap::with_capacity(k + 1);
        let mut threshold = f64::NEG_INFINITY;
        let mut ne = 0usize; // streams [0..ne) are currently non-essential
        let mut contribs = vec![0.0f64; terms.len()];
        loop {
            while ne < m && prefix[ne + 1] * FP_SLACK <= threshold {
                ne += 1;
            }
            if ne >= m {
                break; // no combination of streams can beat the threshold
            }
            let mut candidate = u64::MAX;
            for s in &streams[ne..] {
                if !s.is_done() {
                    candidate = candidate.min(s.cur_id());
                }
            }
            if candidate == u64::MAX {
                break; // essential streams exhausted
            }
            // Refined bound for the candidate: matching essential streams
            // contribute at most their current block's bound, non-matching
            // ones nothing until their own current id; `until` is the last
            // id the bound provably covers.
            let mut bound = prefix[ne];
            let mut until = u64::MAX;
            for s in &streams[ne..] {
                if s.is_done() {
                    continue;
                }
                if s.cur_id() == candidate {
                    bound += s.block_ub();
                    until = until.min(s.block_last_id());
                } else {
                    until = until.min(s.cur_id() - 1);
                }
            }
            if bound * FP_SLACK <= threshold {
                // Nothing in [candidate, until] can enter the heap.
                match until.checked_add(1) {
                    Some(target) => {
                        for s in streams[ne..].iter_mut() {
                            if !s.is_done() && s.cur_id() <= until {
                                s.seek(target);
                            }
                        }
                    }
                    None => break, // the bound covers every remaining id
                }
                continue;
            }
            // Score the candidate exactly. All matching streams sit in the
            // one segment covering the candidate, so dl is shared.
            for c in contribs.iter_mut() {
                *c = 0.0;
            }
            let mut partial = 0.0f64;
            let mut dl = 0.0f64;
            let mut have_dl = false;
            for s in &streams[ne..] {
                if s.is_done() || s.cur_id() != candidate {
                    continue;
                }
                if !have_dl {
                    dl = self.segments[s.seg()].length_of(candidate).unwrap_or(0) as f64;
                    have_dl = true;
                }
                let tf = s.cur_tf() as f64;
                let norm = K1 * (1.0 - B + B * dl / avgdl);
                let c = s.idf * tf * (K1 + 1.0) / (tf + norm);
                for &p in &s.positions {
                    contribs[p] = c;
                }
                partial += c * s.mult;
            }
            // Probe non-essential streams from the highest bound down,
            // abandoning the candidate as soon as even the remaining bounds
            // cannot lift it past the threshold.
            let mut alive = true;
            for j in (0..ne).rev() {
                if (partial + prefix[j + 1]) * FP_SLACK <= threshold {
                    alive = false;
                    break;
                }
                let s = &mut streams[j];
                if s.is_done() {
                    continue;
                }
                s.seek(candidate);
                if s.is_done() || s.cur_id() != candidate {
                    continue;
                }
                if !have_dl {
                    dl = self.segments[s.seg()].length_of(candidate).unwrap_or(0) as f64;
                    have_dl = true;
                }
                let tf = s.cur_tf() as f64;
                let norm = K1 * (1.0 - B + B * dl / avgdl);
                let c = s.idf * tf * (K1 + 1.0) / (tf + norm);
                for &p in &s.positions {
                    contribs[p] = c;
                }
                partial += c * s.mult;
            }
            if alive {
                // Occurrence-position order: the exhaustive path adds each
                // term's contribution in query order, and adding the 0.0 of
                // a non-matching position is exact — same bits out.
                let mut score = 0.0f64;
                for &c in contribs.iter() {
                    score += c;
                }
                if heap.len() < k {
                    heap.push(Weakest(score, candidate));
                    if heap.len() == k {
                        threshold = heap.peek().expect("heap non-empty").0;
                    }
                } else if score > threshold {
                    heap.pop();
                    heap.push(Weakest(score, candidate));
                    stats.heap_evictions += 1;
                    threshold = heap.peek().expect("heap non-empty").0;
                }
            }
            for s in streams[ne..].iter_mut() {
                if !s.is_done() && s.cur_id() == candidate {
                    s.advance();
                }
            }
        }
        for s in &streams {
            for (c, _) in &s.parts {
                stats.blocks_skipped += c.blocks_skipped;
                stats.postings_decoded += c.decoded;
            }
        }
        let mut out: Vec<(u64, f64)> = heap.into_iter().map(|Weakest(s, id)| (id, s)).collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }
}

/// Counters from one pruned top-k search
/// (see [`IndexSnapshot::search_bm25_topk`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TopkStats {
    /// Skip blocks whose postings were never decoded.
    pub blocks_skipped: u64,
    /// Postings actually decoded.
    pub postings_decoded: u64,
    /// Total postings across the query terms' lists.
    pub postings_total: u64,
    /// Candidates that displaced the weakest heap entry after it filled.
    pub heap_evictions: u64,
}

impl TopkStats {
    /// Folds another search's counters into this one.
    pub fn merge(&mut self, other: &TopkStats) {
        self.blocks_skipped += other.blocks_skipped;
        self.postings_decoded += other.postings_decoded;
        self.postings_total += other.postings_total;
        self.heap_evictions += other.heap_evictions;
    }
}

/// One unique query term's posting stream, chained across the segment
/// chain in id-range order (globally ascending ids).
struct TermStream<'a> {
    /// `(cursor, segment index)` per segment containing the term.
    parts: Vec<(TfCursor<'a>, usize)>,
    /// Index of the first non-exhausted part.
    cur: usize,
    /// BM25 idf of the term over this snapshot.
    idf: f64,
    /// Occurrence count in the query, as f64 (bound scaling).
    mult: f64,
    /// Upper bound on the term's total contribution to any document
    /// (`idf · ub_tf(max_tf) · mult`, inflation applied at comparison).
    term_ub: f64,
    /// Occurrence positions in the query's token sequence.
    positions: Vec<usize>,
}

impl TermStream<'_> {
    fn is_done(&self) -> bool {
        self.cur >= self.parts.len()
    }

    fn cur_id(&self) -> u64 {
        self.parts[self.cur].0.cur_id()
    }

    fn cur_tf(&self) -> u32 {
        self.parts[self.cur].0.cur_tf()
    }

    /// Segment index of the current posting.
    fn seg(&self) -> usize {
        self.parts[self.cur].1
    }

    fn advance(&mut self) {
        let c = &mut self.parts[self.cur].0;
        c.advance();
        if c.is_done() {
            self.cur += 1;
        }
    }

    /// Positions the stream at the first posting with id ≥ `target`,
    /// skipping whole blocks (and whole segments) via the skip metadata.
    fn seek(&mut self, target: u64) {
        while self.cur < self.parts.len() {
            let c = &mut self.parts[self.cur].0;
            c.seek(target);
            if c.is_done() {
                self.cur += 1;
            } else {
                return;
            }
        }
    }

    /// Upper bound on the term's total contribution to any document in the
    /// current block (the whole list when blockless).
    fn block_ub(&self) -> f64 {
        self.idf * ub_tf(self.parts[self.cur].0.block_max_tf()) * self.mult
    }

    /// Last id covered by the current block's bound.
    fn block_last_id(&self) -> u64 {
        self.parts[self.cur].0.block_last_id()
    }
}

/// Bounded-heap entry `(score, id)` ordered so the *weakest* candidate —
/// lowest score, ties weaker at the higher id — sits at the root of a
/// max-heap and is evicted first.
#[derive(PartialEq)]
struct Weakest(f64, u64);

impl Eq for Weakest {}

impl PartialOrd for Weakest {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weakest {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Scores are finite (positive BM25 sums), so total_cmp agrees with
        // the partial order; reversed so lower scores compare greater.
        other.0.total_cmp(&self.0).then(self.1.cmp(&other.1))
    }
}

/// Lock-free snapshot publication: readers pay one atomic version load, a
/// reader-count increment/decrement and an `Arc` clone — no `RwLock`, no
/// writer can ever block them for longer than its own pointer swap.
///
/// Left/right scheme: two slots hold the current and previous snapshot
/// `Arc`. `version`'s parity selects the live slot. A reader (1) loads the
/// version, (2) registers in the per-slot in-flight counter, (3) re-checks
/// the version — if it moved, unregister and retry — then clones the `Arc`
/// and unregisters. A writer (serialized by `write`) prepares the *inactive*
/// slot: it waits for that slot's stragglers to drain (readers hold it only
/// for the duration of an `Arc` clone), stores the new snapshot, and flips
/// the version. Readers registered on the active slot are never disturbed.
/// All atomics are `SeqCst`: publication is rare (once per commit /
/// compaction), so the fence cost is irrelevant next to correctness.
pub struct SnapshotCell {
    version: AtomicU64,
    readers: [AtomicU64; 2],
    slots: [UnsafeCell<Arc<IndexSnapshot>>; 2],
    write: Mutex<()>,
}

// SAFETY: slot contents are only written by the single writer holding
// `write`, and only after the target slot's reader count has drained to
// zero; readers only clone out of the slot the version currently points
// at while registered in its counter. `Arc<IndexSnapshot>` is Send + Sync.
unsafe impl Send for SnapshotCell {}
unsafe impl Sync for SnapshotCell {}

impl SnapshotCell {
    /// A cell initially holding `snap`.
    pub fn new(snap: Arc<IndexSnapshot>) -> SnapshotCell {
        SnapshotCell {
            version: AtomicU64::new(0),
            readers: [AtomicU64::new(0), AtomicU64::new(0)],
            slots: [UnsafeCell::new(snap.clone()), UnsafeCell::new(snap)],
            write: Mutex::new(()),
        }
    }

    /// Returns the current snapshot. Lock-free and wait-free in practice:
    /// the retry loop only spins when a publication lands between the two
    /// version loads, and publications are per-commit rare.
    pub fn load(&self) -> Arc<IndexSnapshot> {
        loop {
            let v = self.version.load(Ordering::SeqCst);
            let slot = (v & 1) as usize;
            self.readers[slot].fetch_add(1, Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) == v {
                // The slot cannot be overwritten while we are registered:
                // the writer that would target it must first observe our
                // registration and wait for it to drain.
                let snap = unsafe { (*self.slots[slot].get()).clone() };
                self.readers[slot].fetch_sub(1, Ordering::SeqCst);
                return snap;
            }
            // A publication raced us; re-read the fresh version.
            self.readers[slot].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes `snap` as the new current snapshot.
    pub fn store(&self, snap: Arc<IndexSnapshot>) {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let v = self.version.load(Ordering::SeqCst);
        let target = ((v + 1) & 1) as usize;
        // Wait out stragglers registered on the inactive slot (readers of
        // version v-1 that have not yet unregistered). They hold the slot
        // only across an Arc clone, so this is a bounded spin.
        while self.readers[target].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        unsafe {
            *self.slots[target].get() = snap;
        }
        self.version.store(v + 1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("version", &self.version.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::MemTable;

    fn snap_of(docs: &[(u64, &str)]) -> Arc<IndexSnapshot> {
        let mut mt = MemTable::new();
        for &(id, text) in docs {
            mt.add(id, text);
        }
        let seg = Arc::new(mt.seal(0));
        Arc::new(IndexSnapshot::new(vec![seg], Arc::new(HashSet::new())))
    }

    #[test]
    fn topk_is_bit_identical_to_truncated_exhaustive() {
        let docs: Vec<(u64, String)> = (1..=60)
            .map(|i| {
                let mut t = String::new();
                for _ in 0..(i % 7) {
                    t.push_str("alpha ");
                }
                for _ in 0..(i % 3) {
                    t.push_str("beta ");
                }
                if i % 5 == 0 {
                    t.push_str("gamma ");
                }
                t.push_str("filler");
                (i, t)
            })
            .collect();
        let borrowed: Vec<(u64, &str)> = docs.iter().map(|(i, t)| (*i, t.as_str())).collect();
        let snap = snap_of(&borrowed);
        for query in [
            "alpha",
            "alpha beta",
            "alpha beta gamma",
            "alpha alpha beta",
            "missing",
        ] {
            let full = snap.search_bm25(query);
            for k in [0usize, 1, 3, 10, 100] {
                let mut stats = TopkStats::default();
                let topk = snap.search_bm25_topk(query, k, &mut stats);
                let want: Vec<(u64, f64)> = full.iter().take(k).copied().collect();
                assert_eq!(topk.len(), want.len(), "{query} k={k}");
                for (got, exp) in topk.iter().zip(&want) {
                    assert_eq!(got.0, exp.0, "{query} k={k} id order");
                    assert_eq!(got.1.to_bits(), exp.1.to_bits(), "{query} k={k} score bits");
                }
                if k > 0 && !full.is_empty() {
                    assert!(stats.postings_total > 0, "{query} touched no postings");
                }
            }
        }
    }

    #[test]
    fn node_scores_are_ascending_with_exhaustive_bits() {
        let snap = snap_of(&[
            (3, "alpha beta alpha"),
            (7, "beta"),
            (9, "alpha gamma"),
            (12, "beta beta alpha"),
        ]);
        let by_rank = snap.search_bm25("alpha beta");
        let by_id = snap.bm25_node_scores("alpha beta");
        assert!(by_id.windows(2).all(|w| w[0].0 < w[1].0), "ascending ids");
        assert_eq!(by_id.len(), by_rank.len());
        for (id, score) in &by_id {
            let (_, ranked) = by_rank.iter().find(|(i, _)| i == id).expect("same doc set");
            assert_eq!(score.to_bits(), ranked.to_bits(), "doc {id}");
        }
    }

    #[test]
    fn topk_with_tombstones_falls_back_to_exhaustive() {
        let mut mt = MemTable::new();
        for (id, text) in [
            (1u64, "alpha beta"),
            (2, "alpha"),
            (3, "alpha alpha"),
            (4, "beta"),
        ] {
            mt.add(id, text);
        }
        let seg = Arc::new(mt.seal(0));
        let tombs: HashSet<u64> = [2u64].into_iter().collect();
        let snap = IndexSnapshot::new(vec![seg], Arc::new(tombs));
        let full = snap.search_bm25("alpha beta");
        assert!(full.iter().all(|&(id, _)| id != 2), "tombstone filtered");
        let mut stats = TopkStats::default();
        let top2 = snap.search_bm25_topk("alpha beta", 2, &mut stats);
        assert_eq!(top2.len(), 2);
        for (got, exp) in top2.iter().zip(full.iter()) {
            assert_eq!(got.0, exp.0);
            assert_eq!(got.1.to_bits(), exp.1.to_bits());
        }
        assert_eq!(stats.blocks_skipped, 0, "fallback path decodes everything");
    }

    #[test]
    fn cell_load_store_round_trip() {
        let cell = SnapshotCell::new(Arc::new(IndexSnapshot::empty()));
        assert_eq!(cell.load().len(), 0);
        cell.store(snap_of(&[(1, "alpha"), (2, "beta")]));
        assert_eq!(cell.load().len(), 2);
        cell.store(snap_of(&[(1, "alpha")]));
        assert_eq!(cell.load().len(), 1);
    }

    #[test]
    fn concurrent_readers_see_only_published_snapshots() {
        // Publisher cycles through snapshots with 1..=N docs; readers must
        // only ever observe one of those exact states (len == term count of
        // a published state, never a torn mix).
        let cell = Arc::new(SnapshotCell::new(snap_of(&[(1, "w0")])));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut observed = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let s = cell.load();
                    let n = s.len() as u64;
                    assert!((1..=64).contains(&n), "torn snapshot: {n} docs");
                    // Snapshot internal consistency: executing All returns
                    // exactly len ids.
                    assert_eq!(s.execute(&TextQuery::All).len() as u64, n);
                    observed = observed.max(n);
                }
                observed
            }));
        }
        for round in 2..=64u64 {
            let docs: Vec<(u64, String)> =
                (1..=round).map(|i| (i, format!("w{i} common"))).collect();
            let borrowed: Vec<(u64, &str)> = docs.iter().map(|(i, t)| (*i, t.as_str())).collect();
            cell.store(snap_of(&borrowed));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            let seen = h.join().expect("reader panicked");
            assert!(seen >= 1);
        }
        assert_eq!(cell.load().len(), 64);
    }
}
