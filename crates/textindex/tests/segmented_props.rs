//! Property tests: the segmented index against the reference single-map
//! model, over random interleavings of writer and maintenance operations,
//! plus a query-consistency check while compaction runs concurrently.

use netmark_textindex::{CompactionPolicy, InvertedIndex, SegmentedIndex, TextQuery};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "engine", "shuttle", "budget", "gap", "million", "schedule",
    "risk", "apollo",
];

/// One step of the random interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Add a document built from these vocabulary indices.
    Add(Vec<u8>),
    /// Remove one live document (selector modulo the live count).
    Remove(u8),
    /// Seal the memtable and publish a snapshot.
    Commit,
    /// Run compaction passes until no plan fires.
    Compact,
    /// Persist to a fresh directory, reload, and continue on the loaded
    /// instance (round-trips the manifest + segment files mid-history).
    SaveLoad,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(0u8..VOCAB.len() as u8, 1..6).prop_map(Op::Add),
        (0u8..255u8).prop_map(Op::Remove),
        Just(Op::Commit),
        Just(Op::Compact),
        Just(Op::SaveLoad),
    ]
}

fn doc_text(words: &[u8]) -> String {
    let mut s = String::new();
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(VOCAB[*w as usize % VOCAB.len()]);
    }
    s
}

/// An aggressive policy so short histories still trigger merges, chain
/// bounding, and tombstone purges.
fn tight_policy() -> CompactionPolicy {
    CompactionPolicy {
        small_postings: 64,
        max_segments: 3,
        tombstone_percent: 10,
    }
}

/// The query battery compared against the oracle: every evaluation shape
/// the index supports, over vocabulary terms.
fn query_battery() -> Vec<TextQuery> {
    let t = |w: &str| TextQuery::Term(w.to_string());
    let mut qs = vec![TextQuery::All];
    for w in VOCAB {
        qs.push(t(w));
    }
    qs.push(TextQuery::And(vec![t("alpha"), t("beta")]));
    qs.push(TextQuery::And(vec![t("engine"), t("shuttle"), t("gap")]));
    qs.push(TextQuery::And(vec![TextQuery::All, t("budget")]));
    qs.push(TextQuery::Or(vec![t("alpha"), t("million")]));
    qs.push(TextQuery::Or(vec![TextQuery::All, t("risk")]));
    qs.push(TextQuery::Not(
        Box::new(TextQuery::All),
        Box::new(t("delta")),
    ));
    qs.push(TextQuery::Not(Box::new(t("alpha")), Box::new(t("beta"))));
    qs.push(TextQuery::Phrase(vec![
        "alpha".to_string(),
        "beta".to_string(),
    ]));
    qs.push(TextQuery::Phrase(vec![
        "engine".to_string(),
        "shuttle".to_string(),
        "budget".to_string(),
    ]));
    qs.push(TextQuery::Prefix("a".to_string()));
    qs.push(TextQuery::Prefix("s".to_string()));
    qs.push(TextQuery::Prefix("zz".to_string()));
    qs
}

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "nm-tix-props-{tag}-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of add / remove / commit / compact / save+load
    /// leaves the segmented index equivalent to the reference single-map
    /// model replaying the same document history.
    #[test]
    fn segmented_equals_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let mut seg = SegmentedIndex::with_policy(tight_policy());
        // The oracle history: every add in order, then the removals.
        let mut added: Vec<(u64, String)> = Vec::new();
        let mut removed: Vec<u64> = Vec::new();
        let mut live: Vec<u64> = Vec::new();
        let mut next_id: u64 = 1;

        for op in &ops {
            match op {
                Op::Add(words) => {
                    let text = doc_text(words);
                    prop_assert!(seg.add(next_id, &text));
                    added.push((next_id, text));
                    live.push(next_id);
                    next_id += 1;
                }
                Op::Remove(sel) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = *sel as usize % live.len();
                    let id = live.remove(idx);
                    prop_assert!(seg.remove(id));
                    removed.push(id);
                }
                Op::Commit => {
                    seg.commit();
                }
                Op::Compact => {
                    seg.compact();
                }
                Op::SaveLoad => {
                    let dir = scratch_dir("sl");
                    seg.save(&dir).expect("save");
                    let loaded = SegmentedIndex::load_with(&dir, tight_policy())
                        .expect("reload what was just saved");
                    let _ = std::fs::remove_dir_all(&dir);
                    seg = loaded;
                }
            }
        }
        seg.commit();

        let mut oracle = InvertedIndex::new();
        for (id, text) in &added {
            oracle.add(*id, text);
        }
        for id in &removed {
            oracle.remove(*id);
        }

        prop_assert_eq!(seg.len(), oracle.len());
        for q in query_battery() {
            let got = seg.execute(&q);
            let want = oracle.execute(&q);
            prop_assert!(got == want, "query {:?} diverges: {:?} vs {:?}", q, got, want);
        }
        for probe in ["alpha beta", "engine", "budget million"] {
            prop_assert_eq!(seg.search_ranked(probe), oracle.search_ranked(probe));
            // BM25 scores are a global function of the snapshot's integer
            // corpus stats, so they are bit-identical no matter how the
            // history was segmented, compacted, or reloaded.
            prop_assert_eq!(seg.search_bm25(probe), oracle.search_bm25(probe));
        }
    }
}

/// Readers racing a compaction storm must observe identical results
/// throughout: compaction only reorganizes storage, never visible state.
#[test]
fn queries_stable_during_concurrent_compaction() {
    let seg = std::sync::Arc::new(SegmentedIndex::with_policy(tight_policy()));
    // Many small runs with interleaved tombstones → plenty to compact.
    let mut id = 1u64;
    for batch in 0..40 {
        for i in 0..8 {
            let text = format!(
                "{} {} extra{}",
                VOCAB[(batch + i) % VOCAB.len()],
                VOCAB[(batch * 3 + i) % VOCAB.len()],
                batch
            );
            assert!(seg.add(id, &text));
            id += 1;
        }
        seg.commit();
    }
    for dead in (1..id).step_by(5) {
        seg.remove(dead);
    }
    seg.commit();

    let battery = query_battery();
    let expected: Vec<Vec<u64>> = battery.iter().map(|q| seg.execute(q)).collect();

    std::thread::scope(|scope| {
        let compactor = scope.spawn(|| {
            // Drive compaction to convergence while readers hammer away.
            seg.compact()
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    for _ in 0..200 {
                        for (q, want) in battery.iter().zip(&expected) {
                            let got = seg.execute(q);
                            assert_eq!(&got, want, "query {q:?} changed under compaction");
                        }
                    }
                })
            })
            .collect();
        let passes = compactor.join().unwrap();
        assert!(passes > 0, "the storm actually compacted something");
        for r in readers {
            r.join().unwrap();
        }
    });

    // Post-compaction state still matches, and tombstones were purged.
    for (q, want) in battery.iter().zip(&expected) {
        assert_eq!(&seg.execute(q), want);
    }
    assert_eq!(
        seg.stats().tombstones,
        0,
        "compaction purged the tombstones"
    );
}
