//! Property tests for the ranked top-k read path: block-max pruned
//! `search_bm25_topk` against the exhaustive BM25 reference over random
//! document histories, mixed NMTXSEG2/NMTXSEG3 segment chains, queries
//! racing compaction, and the block-varint posting codec over arbitrary
//! doc-id gaps.

use netmark_textindex::postings::{BlockMeta, BLOCK_ENTRIES};
use netmark_textindex::{CompactionPolicy, PostingList, Segment, SegmentedIndex, TopkStats};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "engine", "shuttle", "budget", "gap", "million", "schedule",
    "risk", "apollo",
];

/// One step of the random interleaving (same shape as segmented_props).
#[derive(Debug, Clone)]
enum Op {
    /// Add a document built from these vocabulary indices.
    Add(Vec<u8>),
    /// Remove one live document (selector modulo the live count).
    Remove(u8),
    /// Seal the memtable and publish a snapshot.
    Commit,
    /// Run compaction passes until no plan fires.
    Compact,
    /// Persist, reload, and continue on the loaded instance.
    SaveLoad,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(0u8..VOCAB.len() as u8, 1..8).prop_map(Op::Add),
        (0u8..255u8).prop_map(Op::Remove),
        Just(Op::Commit),
        Just(Op::Compact),
        Just(Op::SaveLoad),
    ]
}

fn doc_text(words: &[u8]) -> String {
    let mut s = String::new();
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(VOCAB[*w as usize % VOCAB.len()]);
    }
    s
}

fn tight_policy() -> CompactionPolicy {
    CompactionPolicy {
        small_postings: 64,
        max_segments: 3,
        tombstone_percent: 10,
    }
}

/// Ranked probes covering single terms, conjunctions of frequent and rare
/// terms, duplicated query terms (the `mult` path), and misses.
fn probe_battery() -> Vec<String> {
    vec![
        "alpha".to_string(),
        "alpha beta".to_string(),
        "engine shuttle budget".to_string(),
        "alpha alpha beta".to_string(),
        "million schedule risk apollo".to_string(),
        "zzzmissing".to_string(),
        "alpha zzzmissing".to_string(),
        VOCAB.join(" "),
    ]
}

const KS: &[usize] = &[0, 1, 2, 3, 7, 16, 1000];

/// Bit-identical comparison: same ids, same order, same score *bits* — the
/// pruned path promises the exact prefix of the exhaustive ranking, not an
/// approximation of it.
fn assert_same_prefix(
    tag: &str,
    got: &[(u64, f64)],
    want: &[(u64, f64)],
) -> Result<(), TestCaseError> {
    prop_assert!(got.len() == want.len(), "{}: hit count diverges", tag);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(g.0 == w.0, "{}: id diverges at rank {}", tag, i);
        prop_assert!(
            g.1.to_bits() == w.1.to_bits(),
            "{}: score not bit-identical at rank {} ({} vs {})",
            tag,
            i,
            g.1,
            w.1
        );
    }
    Ok(())
}

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "nm-topk-props-{tag}-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over any interleaving of add / remove / commit / compact / save+load,
    /// the pruned top-k search returns precisely the first k entries of the
    /// exhaustive BM25 ranking — bit-identical scores, same tie-break —
    /// including snapshots with tombstones (the fallback path) and freshly
    /// reloaded chains.
    #[test]
    fn pruned_topk_equals_exhaustive_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let mut seg = SegmentedIndex::with_policy(tight_policy());
        let mut live: Vec<u64> = Vec::new();
        let mut next_id: u64 = 1;
        for op in &ops {
            match op {
                Op::Add(words) => {
                    prop_assert!(seg.add(next_id, &doc_text(words)));
                    live.push(next_id);
                    next_id += 1;
                }
                Op::Remove(sel) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = *sel as usize % live.len();
                    prop_assert!(seg.remove(live.remove(idx)));
                }
                Op::Commit => {
                    seg.commit();
                }
                Op::Compact => {
                    seg.compact();
                }
                Op::SaveLoad => {
                    let dir = scratch_dir("sl");
                    seg.save(&dir).expect("save");
                    let loaded = SegmentedIndex::load_with(&dir, tight_policy())
                        .expect("reload what was just saved");
                    let _ = std::fs::remove_dir_all(&dir);
                    seg = loaded;
                }
            }
        }
        seg.commit();

        let snap = seg.snapshot();
        for probe in probe_battery() {
            let all = snap.search_bm25(&probe);
            for &k in KS {
                let mut stats = TopkStats::default();
                let got = snap.search_bm25_topk(&probe, k, &mut stats);
                let want = &all[..k.min(all.len())];
                assert_same_prefix(&format!("{probe:?} k={k}"), &got, want)?;
            }
        }
    }

    /// A chain mixing NMTXSEG3 segments with legacy NMTXSEG2 rewrites of
    /// the same data (blockless lists, unknown max tf) still prunes
    /// exactly: legacy lists are simply never skipped. Exercises the lazy
    /// migration story — old segments stay correct until compaction
    /// rewrites them.
    #[test]
    fn mixed_v2_v3_chains_rank_identically(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(0u8..VOCAB.len() as u8, 1..8),
                1..6,
            ),
            2..6,
        ),
        legacy_mask in proptest::collection::vec(any::<bool>(), 8..9),
    ) {
        // No removals: tombstones would route every query down the
        // fallback, and this test is about pruning over a mixed chain.
        let seg = SegmentedIndex::with_policy(tight_policy());
        let mut next_id: u64 = 1;
        for batch in &batches {
            for words in batch {
                prop_assert!(seg.add(next_id, &doc_text(words)));
                next_id += 1;
            }
            seg.commit(); // one segment per batch → a multi-segment chain
        }

        let dir = scratch_dir("mix");
        seg.save(&dir).expect("save");

        // Rewrite a mask-selected subset of the segment files in the
        // legacy NMTXSEG2 format (what a pre-block build would have left
        // on disk), then reload the now-mixed chain.
        let mut seg_files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .expect("read save dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "seg").unwrap_or(false))
            .collect();
        seg_files.sort();
        prop_assert!(!seg_files.is_empty());
        let mut rewrote = 0usize;
        for (i, path) in seg_files.iter().enumerate() {
            if legacy_mask[i % legacy_mask.len()] {
                let bytes = std::fs::read(path).expect("read segment file");
                let parsed = Segment::deserialize(&bytes).expect("parse v3 segment");
                std::fs::write(path, parsed.serialize_legacy()).expect("rewrite legacy");
                rewrote += 1;
            }
        }

        let loaded = SegmentedIndex::load_with(&dir, tight_policy()).expect("load mixed chain");
        let _ = std::fs::remove_dir_all(&dir);

        let pristine = seg.snapshot();
        let mixed = loaded.snapshot();
        if rewrote > 0 {
            // Legacy segments carry no skip metadata.
            prop_assert!(mixed.block_count() < pristine.block_count() || pristine.block_count() == 0);
        }
        for probe in probe_battery() {
            let all = pristine.search_bm25(&probe);
            // The mixed chain's exhaustive ranking is unchanged by the
            // storage rewrite...
            let mixed_all = mixed.search_bm25(&probe);
            assert_same_prefix(&format!("{probe:?} exhaustive"), &mixed_all, &all)?;
            // ...and its pruned top-k still matches that ranking exactly.
            for &k in KS {
                let mut stats = TopkStats::default();
                let got = mixed.search_bm25_topk(&probe, k, &mut stats);
                let want = &all[..k.min(all.len())];
                assert_same_prefix(&format!("{probe:?} k={k} mixed"), &got, want)?;
            }
        }
    }

    /// The block codec round-trips arbitrary doc-id gap distributions —
    /// dense runs, sparse 2^40-scale jumps, multi-block lists — preserving
    /// postings, skip metadata, and the derived per-block maxima.
    #[test]
    fn block_codec_round_trips_arbitrary_gaps(
        gaps in proptest::collection::vec((1u64..(1u64 << 40), 1usize..5), 1..400),
        first_pos in 0u32..1000,
    ) {
        let mut pl = PostingList::new();
        let mut id = 0u64;
        let mut expect: Vec<(u64, Vec<u32>)> = Vec::new();
        for (i, (gap, ntf)) in gaps.iter().enumerate() {
            id += gap;
            let positions: Vec<u32> = (0..*ntf as u32)
                .map(|j| first_pos + i as u32 + j * 7)
                .collect();
            prop_assert!(pl.push(id, &positions));
            expect.push((id, positions));
        }
        prop_assert!(pl.has_blocks());
        prop_assert_eq!(pl.blocks().len(), expect.len().div_ceil(BLOCK_ENTRIES));

        let mut buf = Vec::new();
        pl.serialize_with_blocks(&mut buf);
        let mut pos = 0usize;
        let back = PostingList::deserialize_with_blocks(&buf, &mut pos).expect("round trip");
        prop_assert!(pos == buf.len(), "trailing bytes after decode");
        prop_assert_eq!(&back, &pl);
        let got_blocks: Vec<BlockMeta> = back.blocks().to_vec();
        let want_blocks: Vec<BlockMeta> = pl.blocks().to_vec();
        prop_assert_eq!(got_blocks, want_blocks);
        prop_assert_eq!(back.max_tf(), pl.max_tf());
        let decoded: Vec<(u64, Vec<u32>)> =
            back.iter().map(|p| (p.id, p.positions)).collect();
        prop_assert_eq!(decoded, expect);

        // The legacy codec on the same list: postings survive, blocks are
        // dropped (the reader falls back to exhaustive decoding).
        let mut legacy = Vec::new();
        pl.serialize(&mut legacy);
        let mut pos = 0usize;
        let lback = PostingList::deserialize(&legacy, &mut pos).expect("legacy round trip");
        prop_assert_eq!(&lback, &pl);
        prop_assert!(lback.blocks().is_empty());
    }
}

/// Extreme id gaps near the u64 ceiling round-trip exactly: the delta
/// coder must not overflow on a list whose last id is `u64::MAX`.
#[test]
fn block_codec_handles_u64_extremes() {
    let mut pl = PostingList::new();
    assert!(pl.push(5, &[1, 9]));
    assert!(pl.push(u64::MAX - 1, &[3]));
    assert!(pl.push(u64::MAX, &[2, 4, 6]));
    let mut buf = Vec::new();
    pl.serialize_with_blocks(&mut buf);
    let mut pos = 0usize;
    let back = PostingList::deserialize_with_blocks(&buf, &mut pos).expect("decode");
    assert_eq!(back, pl);
    assert_eq!(back.blocks(), pl.blocks());
    assert_eq!(back.ids(), vec![5, u64::MAX - 1, u64::MAX]);
    assert_eq!(back.max_tf(), Some(3));
}

/// Ranked top-k results must not waver while compaction reorganizes the
/// chain underneath: mid-storm snapshots transition from tombstoned
/// (fallback scoring) to purged (pruned scoring) and every observation
/// along the way must be bit-identical to the pre-storm answer.
#[test]
fn topk_stable_during_concurrent_compaction() {
    let seg = std::sync::Arc::new(SegmentedIndex::with_policy(tight_policy()));
    let mut id = 1u64;
    for batch in 0..40 {
        for i in 0..8 {
            let text = format!(
                "{} {} extra{}",
                VOCAB[(batch + i) % VOCAB.len()],
                VOCAB[(batch * 3 + i) % VOCAB.len()],
                batch
            );
            assert!(seg.add(id, &text));
            id += 1;
        }
        seg.commit();
    }
    for dead in (1..id).step_by(5) {
        seg.remove(dead);
    }
    seg.commit();

    let probes = probe_battery();
    let expected: Vec<Vec<(u64, f64)>> = probes
        .iter()
        .map(|p| {
            let mut stats = TopkStats::default();
            seg.snapshot().search_bm25_topk(p, 10, &mut stats)
        })
        .collect();
    // Sanity: the battery actually ranks something here.
    assert!(expected.iter().any(|hits| !hits.is_empty()));

    std::thread::scope(|scope| {
        let compactor = scope.spawn(|| seg.compact());
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    for _ in 0..200 {
                        for (p, want) in probes.iter().zip(&expected) {
                            let mut stats = TopkStats::default();
                            let got = seg.snapshot().search_bm25_topk(p, 10, &mut stats);
                            assert_eq!(
                                got.len(),
                                want.len(),
                                "probe {p:?} changed under compaction"
                            );
                            for (g, w) in got.iter().zip(want) {
                                assert_eq!(g.0, w.0, "probe {p:?} ids changed under compaction");
                                assert_eq!(
                                    g.1.to_bits(),
                                    w.1.to_bits(),
                                    "probe {p:?} scores changed under compaction"
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        let passes = compactor.join().unwrap();
        assert!(passes > 0, "the storm actually compacted something");
        for r in readers {
            r.join().unwrap();
        }
    });

    // Post-storm the tombstones are gone, so the pruned machinery (not the
    // fallback) now answers — and still says the same thing.
    assert_eq!(seg.stats().tombstones, 0);
    for (p, want) in probes.iter().zip(&expected) {
        let mut stats = TopkStats::default();
        let got = seg.snapshot().search_bm25_topk(p, 10, &mut stats);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert_eq!((g.0, g.1.to_bits()), (w.0, w.1.to_bits()));
        }
    }
}
