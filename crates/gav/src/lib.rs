//! `netmark-gav`: the Global-as-View mediator baseline.
//!
//! The paper positions NETMARK against GAV mediation systems — MIX,
//! Tukwila, and the industrial Enosys/Nimble built on them (§4). Those
//! systems require, per integration: a declared schema ("source view") for
//! every source, a global view definition, and mappings between them; each
//! source change forces mapping revisions. This crate implements that
//! architecture from scratch — source schemas, global views as unions of
//! select-project mappings, query answering by view unfolding — **and
//! counts every artifact**, because the artifact count is the "IT cost"
//! curve of the paper's Fig 1.
//!
//! Used by the Fig 1 cost-scaling experiment and the §4 "Top Employees"
//! head-to-head (see the bench crate).

#![warn(missing_docs)]

pub mod mediator;
pub mod model;

pub use mediator::{GavCost, GavError, GlobalView, Mapping, Mediator, ViewQuery};
pub use model::{CmpOp, GRow, GValue, Predicate, RelationSchema, Source};
