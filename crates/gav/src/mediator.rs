//! The Global-as-View mediator.
//!
//! Each global view is defined as a **union of select-project mappings**
//! over source relations ("Each information source is viewed as exporting
//! a view of the data it contains. An integrated (global) view of the data
//! is formed by defining an integrated view over the individual data source
//! views" — paper §4, describing MIX/Tukwila/Nimble/Enosys). Queries over a
//! global view are answered by **unfolding**: rewrite into one query per
//! mapping, push the compatible predicates to the source, and union.
//!
//! The mediator also does the bookkeeping the paper's Fig 1 argument is
//! about: every source schema declared, every mapping written, and every
//! mapping *revised* after a source change is counted as integration
//! engineering cost.

use crate::model::{GRow, GValue, Predicate, RelationSchema, Source};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from definition or query time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GavError(pub String);

impl fmt::Display for GavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gav error: {}", self.0)
    }
}

impl std::error::Error for GavError {}

fn err<T>(msg: impl Into<String>) -> Result<T, GavError> {
    Err(GavError(msg.into()))
}

/// One GAV mapping: global view tuples contributed by a select-project
/// query over a single source relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Source name.
    pub source: String,
    /// Source relation name.
    pub relation: String,
    /// Selections applied at the source.
    pub selections: Vec<Predicate>,
    /// For each *global* column, the source column providing it (`None`
    /// pads with NULL — sources need not cover every global column).
    pub projection: Vec<Option<String>>,
}

/// A global (integrated) view.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalView {
    /// View name.
    pub name: String,
    /// Global column names.
    pub columns: Vec<String>,
    /// Union of source mappings.
    pub mappings: Vec<Mapping>,
}

/// A query over one global view: conjunctive predicates + projection.
#[derive(Debug, Clone, Default)]
pub struct ViewQuery {
    /// View to query.
    pub view: String,
    /// Conjunctive predicates over global columns.
    pub predicates: Vec<Predicate>,
    /// Columns to return (empty = all).
    pub projection: Vec<String>,
}

/// Integration-cost bookkeeping (drives the Fig 1 reproduction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GavCost {
    /// Source relations whose schemas had to be declared.
    pub source_relations: usize,
    /// Mapping rules written.
    pub mapping_rules: usize,
    /// Global views defined.
    pub views: usize,
    /// Mapping revisions forced by source-schema changes.
    pub revisions: usize,
}

impl GavCost {
    /// Total artifacts — the "IT cost" proxy for Fig 1.
    pub fn total(&self) -> usize {
        self.source_relations + self.mapping_rules + self.views + self.revisions
    }
}

/// The mediator: registered sources, defined views, cost counters.
#[derive(Debug, Default)]
pub struct Mediator {
    sources: BTreeMap<String, Source>,
    views: BTreeMap<String, GlobalView>,
    cost: GavCost,
}

impl Mediator {
    /// Empty mediator.
    pub fn new() -> Mediator {
        Mediator::default()
    }

    /// Registers a source (schema declaration is charged to cost).
    pub fn register_source(&mut self, source: Source) -> Result<(), GavError> {
        if self.sources.contains_key(&source.name) {
            return err(format!("source {} already registered", source.name));
        }
        self.cost.source_relations += source.relations.len();
        self.sources.insert(source.name.clone(), source);
        Ok(())
    }

    /// Loads instance data into a registered source.
    pub fn load_rows(
        &mut self,
        source: &str,
        relation: &str,
        rows: Vec<GRow>,
    ) -> Result<(), GavError> {
        let s = self
            .sources
            .get_mut(source)
            .ok_or_else(|| GavError(format!("no source {source}")))?;
        if s.relation(relation).is_none() {
            return err(format!("no relation {relation} in source {source}"));
        }
        s.load(relation, rows);
        Ok(())
    }

    /// Defines a global view; every mapping is validated against the
    /// declared source schemas (this validation *is* the schema coupling
    /// NETMARK avoids).
    pub fn define_view(&mut self, view: GlobalView) -> Result<(), GavError> {
        if self.views.contains_key(&view.name) {
            return err(format!("view {} already defined", view.name));
        }
        for m in &view.mappings {
            let src = self.sources.get(&m.source).ok_or_else(|| {
                GavError(format!("mapping references unknown source {}", m.source))
            })?;
            let rel = src.relation(&m.relation).ok_or_else(|| {
                GavError(format!(
                    "mapping references unknown relation {}.{}",
                    m.source, m.relation
                ))
            })?;
            if m.projection.len() != view.columns.len() {
                return err(format!(
                    "mapping over {}.{} projects {} columns, view has {}",
                    m.source,
                    m.relation,
                    m.projection.len(),
                    view.columns.len()
                ));
            }
            for col in m.projection.iter().flatten() {
                if rel.position(col).is_none() {
                    return err(format!("no column {col} in {}.{}", m.source, m.relation));
                }
            }
            for p in &m.selections {
                if rel.position(&p.column).is_none() {
                    return err(format!(
                        "selection on missing column {} in {}.{}",
                        p.column, m.source, m.relation
                    ));
                }
            }
        }
        self.cost.mapping_rules += view.mappings.len();
        self.cost.views += 1;
        self.views.insert(view.name.clone(), view);
        Ok(())
    }

    /// Simulates a source schema change: relation renamed / restructured.
    /// Every mapping touching it must be revised — the maintenance cost the
    /// paper's "schema-chaos" point is about. Returns how many mappings
    /// were revised.
    pub fn source_schema_changed(
        &mut self,
        source: &str,
        relation: &str,
        new_schema: RelationSchema,
        column_renames: &[(&str, &str)],
    ) -> Result<usize, GavError> {
        let src = self
            .sources
            .get_mut(source)
            .ok_or_else(|| GavError(format!("no source {source}")))?;
        let Some(pos) = src.relations.iter().position(|r| r.name == relation) else {
            return err(format!("no relation {relation} in source {source}"));
        };
        // Rename data and schema.
        let old_rows = src.data.remove(relation).unwrap_or_default();
        src.data.insert(new_schema.name.clone(), old_rows);
        let new_name = new_schema.name.clone();
        src.relations[pos] = new_schema;
        // Revise every mapping that referenced the old relation.
        let mut revised = 0usize;
        for view in self.views.values_mut() {
            for m in &mut view.mappings {
                if m.source == source && m.relation == relation {
                    m.relation = new_name.clone();
                    for slot in m.projection.iter_mut().flatten() {
                        if let Some((_, to)) = column_renames.iter().find(|(from, _)| from == slot)
                        {
                            *slot = to.to_string();
                        }
                    }
                    for p in &mut m.selections {
                        if let Some((_, to)) =
                            column_renames.iter().find(|(from, _)| *from == p.column)
                        {
                            p.column = to.to_string();
                        }
                    }
                    revised += 1;
                }
            }
        }
        self.cost.revisions += revised;
        Ok(revised)
    }

    /// Current cost counters.
    pub fn cost(&self) -> &GavCost {
        &self.cost
    }

    /// Names of defined views.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }

    /// Answers a query by view unfolding. Returns `(header, rows)`.
    pub fn query(&self, q: &ViewQuery) -> Result<(Vec<String>, Vec<GRow>), GavError> {
        let view = self
            .views
            .get(&q.view)
            .ok_or_else(|| GavError(format!("no view {}", q.view)))?;
        // Validate the query's columns against the view.
        for p in &q.predicates {
            if !view.columns.contains(&p.column) {
                return err(format!("no column {} in view {}", p.column, q.view));
            }
        }
        let out_columns: Vec<String> = if q.projection.is_empty() {
            view.columns.clone()
        } else {
            for c in &q.projection {
                if !view.columns.contains(c) {
                    return err(format!("no column {c} in view {}", q.view));
                }
            }
            q.projection.clone()
        };
        let mut out_rows: Vec<GRow> = Vec::new();
        for m in &view.mappings {
            let src = self
                .sources
                .get(&m.source)
                .ok_or_else(|| GavError(format!("source {} vanished", m.source)))?;
            let rel = src
                .relation(&m.relation)
                .ok_or_else(|| GavError(format!("relation {} vanished", m.relation)))?;
            // Unfold: translate view predicates into source predicates where
            // the mapping covers the column; predicates on uncovered
            // columns make this mapping contribute nothing (NULL never
            // matches).
            let mut pushed: Vec<(usize, &Predicate)> = Vec::new();
            let mut applicable = true;
            for p in &q.predicates {
                let gpos = view
                    .columns
                    .iter()
                    .position(|c| c == &p.column)
                    .expect("validated above");
                match &m.projection[gpos] {
                    Some(src_col) => {
                        let spos = rel.position(src_col).expect("validated at define");
                        pushed.push((spos, p));
                    }
                    None => {
                        applicable = false;
                        break;
                    }
                }
            }
            if !applicable {
                continue;
            }
            'rows: for row in src.rows(&m.relation) {
                // Source-side selections from the mapping definition.
                for sel in &m.selections {
                    let spos = rel.position(&sel.column).expect("validated");
                    if !sel.matches(row.get(spos).unwrap_or(&GValue::Null)) {
                        continue 'rows;
                    }
                }
                // Pushed query predicates.
                for (spos, p) in &pushed {
                    if !p.matches(row.get(*spos).unwrap_or(&GValue::Null)) {
                        continue 'rows;
                    }
                }
                // Project to global then to the query's output columns.
                let global_row: GRow = m
                    .projection
                    .iter()
                    .map(|slot| match slot {
                        Some(src_col) => {
                            let spos = rel.position(src_col).expect("validated");
                            row.get(spos).cloned().unwrap_or(GValue::Null)
                        }
                        None => GValue::Null,
                    })
                    .collect();
                let out_row: GRow = out_columns
                    .iter()
                    .map(|c| {
                        let gpos = view.columns.iter().position(|vc| vc == c).expect("checked");
                        global_row[gpos].clone()
                    })
                    .collect();
                out_rows.push(out_row);
            }
        }
        Ok((out_columns, out_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CmpOp;

    /// Builds the paper's §4 "Top Employees of NASA" scenario: three
    /// centers with three different rating vocabularies.
    pub fn top_employees_mediator() -> Mediator {
        let mut med = Mediator::new();
        med.register_source(
            Source::new("ames")
                .with_relation(RelationSchema::new("personnel", &["name", "rating"])),
        )
        .unwrap();
        med.register_source(
            Source::new("johnson")
                .with_relation(RelationSchema::new("staff", &["employee", "score"])),
        )
        .unwrap();
        med.register_source(
            Source::new("kennedy").with_relation(RelationSchema::new("people", &["who", "grade"])),
        )
        .unwrap();
        med.load_rows(
            "ames",
            "personnel",
            vec![
                vec!["ada".into(), "excellent".into()],
                vec!["bob".into(), "good".into()],
            ],
        )
        .unwrap();
        med.load_rows(
            "johnson",
            "staff",
            vec![
                vec!["carol".into(), GValue::Num(1.0)],
                vec!["dan".into(), GValue::Num(3.0)],
            ],
        )
        .unwrap();
        med.load_rows(
            "kennedy",
            "people",
            vec![
                vec!["eve".into(), "very good".into()],
                vec!["frank".into(), "fair".into()],
            ],
        )
        .unwrap();
        // "Top Employees could be defined as say employees at NASA Ames
        // with a performance rating of excellent, personnel at NASA Johnson
        // with a performance score of 2 or better, and employees of NASA
        // Kennedy with a rating of very good or better."
        med.define_view(GlobalView {
            name: "TopEmployees".into(),
            columns: vec!["name".into(), "center".into()],
            mappings: vec![
                Mapping {
                    source: "ames".into(),
                    relation: "personnel".into(),
                    selections: vec![Predicate::new("rating", CmpOp::Eq, "excellent")],
                    projection: vec![Some("name".into()), None],
                },
                Mapping {
                    source: "johnson".into(),
                    relation: "staff".into(),
                    selections: vec![Predicate::new("score", CmpOp::Le, 2.0)],
                    projection: vec![Some("employee".into()), None],
                },
                Mapping {
                    source: "kennedy".into(),
                    relation: "people".into(),
                    selections: vec![Predicate::new("grade", CmpOp::Eq, "very good")],
                    projection: vec![Some("who".into()), None],
                },
            ],
        })
        .unwrap();
        med
    }

    #[test]
    fn top_employees_unfolds_across_sources() {
        let med = top_employees_mediator();
        let (cols, rows) = med
            .query(&ViewQuery {
                view: "TopEmployees".into(),
                predicates: vec![],
                projection: vec!["name".into()],
            })
            .unwrap();
        assert_eq!(cols, vec!["name"]);
        let names: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["ada", "carol", "eve"]);
    }

    #[test]
    fn query_predicates_push_through_mappings() {
        let med = top_employees_mediator();
        let (_, rows) = med
            .query(&ViewQuery {
                view: "TopEmployees".into(),
                predicates: vec![Predicate::new("name", CmpOp::Contains, "a")],
                projection: vec![],
            })
            .unwrap();
        let names: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["ada", "carol"]);
    }

    #[test]
    fn predicates_on_unmapped_columns_drop_the_mapping() {
        let med = top_employees_mediator();
        // 'center' is never mapped (always NULL) — a predicate on it can
        // match nothing.
        let (_, rows) = med
            .query(&ViewQuery {
                view: "TopEmployees".into(),
                predicates: vec![Predicate::new("center", CmpOp::Eq, "ames")],
                projection: vec![],
            })
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn cost_accounting() {
        let med = top_employees_mediator();
        let c = med.cost();
        assert_eq!(c.source_relations, 3);
        assert_eq!(c.mapping_rules, 3);
        assert_eq!(c.views, 1);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn schema_change_forces_revisions() {
        let mut med = top_employees_mediator();
        let before = med.cost().revisions;
        let revised = med
            .source_schema_changed(
                "ames",
                "personnel",
                RelationSchema::new("employees", &["full_name", "rating"]),
                &[("name", "full_name")],
            )
            .unwrap();
        assert_eq!(revised, 1);
        assert_eq!(med.cost().revisions, before + 1);
        // Queries still work after the revision.
        let (_, rows) = med
            .query(&ViewQuery {
                view: "TopEmployees".into(),
                predicates: vec![],
                projection: vec!["name".into()],
            })
            .unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn definition_errors() {
        let mut med = Mediator::new();
        med.register_source(Source::new("s").with_relation(RelationSchema::new("r", &["a"])))
            .unwrap();
        assert!(med.register_source(Source::new("s")).is_err());
        assert!(med.load_rows("nope", "r", vec![]).is_err());
        assert!(med.load_rows("s", "nope", vec![]).is_err());
        // Mapping with wrong arity.
        assert!(med
            .define_view(GlobalView {
                name: "v".into(),
                columns: vec!["x".into(), "y".into()],
                mappings: vec![Mapping {
                    source: "s".into(),
                    relation: "r".into(),
                    selections: vec![],
                    projection: vec![Some("a".into())],
                }],
            })
            .is_err());
        // Mapping referencing a missing column.
        assert!(med
            .define_view(GlobalView {
                name: "v".into(),
                columns: vec!["x".into()],
                mappings: vec![Mapping {
                    source: "s".into(),
                    relation: "r".into(),
                    selections: vec![],
                    projection: vec![Some("missing".into())],
                }],
            })
            .is_err());
        // Query against undefined view / column.
        assert!(med.query(&ViewQuery::default()).is_err());
    }
}

#[cfg(test)]
mod more_mediator_tests {
    use super::*;
    use crate::model::CmpOp;

    #[test]
    fn projection_selects_and_orders_columns() {
        let med = tests::top_employees_mediator();
        let (cols, rows) = med
            .query(&ViewQuery {
                view: "TopEmployees".into(),
                predicates: vec![],
                projection: vec!["center".into(), "name".into()],
            })
            .unwrap();
        assert_eq!(cols, vec!["center", "name"]);
        assert_eq!(rows[0].len(), 2);
        assert!(rows[0][0].to_string() == "NULL");
        // Unknown projection column errors.
        assert!(med
            .query(&ViewQuery {
                view: "TopEmployees".into(),
                predicates: vec![],
                projection: vec!["nope".into()],
            })
            .is_err());
        // Unknown predicate column errors.
        assert!(med
            .query(&ViewQuery {
                view: "TopEmployees".into(),
                predicates: vec![Predicate::new("nope", CmpOp::Eq, "x")],
                projection: vec![],
            })
            .is_err());
    }

    #[test]
    fn view_names_listed() {
        let med = tests::top_employees_mediator();
        assert_eq!(med.view_names(), vec!["TopEmployees"]);
    }

    #[test]
    fn duplicate_view_rejected() {
        let mut med = tests::top_employees_mediator();
        assert!(med
            .define_view(GlobalView {
                name: "TopEmployees".into(),
                columns: vec!["x".into()],
                mappings: vec![],
            })
            .is_err());
    }
}
