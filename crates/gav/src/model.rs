//! Relational model for the GAV baseline: values, schemas, instances.

use std::collections::BTreeMap;
use std::fmt;

/// A value in the mediated relational model.
#[derive(Debug, Clone, PartialEq)]
pub enum GValue {
    /// Text.
    Text(String),
    /// Number (all numerics are f64, as in the mediator literature's
    /// untyped view definitions).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null / missing.
    Null,
}

impl GValue {
    /// Text content, if text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            GValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            GValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for GValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GValue::Text(s) => write!(f, "{s}"),
            GValue::Num(n) => write!(f, "{n}"),
            GValue::Bool(b) => write!(f, "{b}"),
            GValue::Null => write!(f, "NULL"),
        }
    }
}

impl From<&str> for GValue {
    fn from(s: &str) -> Self {
        GValue::Text(s.to_string())
    }
}
impl From<f64> for GValue {
    fn from(n: f64) -> Self {
        GValue::Num(n)
    }
}
impl From<i64> for GValue {
    fn from(n: i64) -> Self {
        GValue::Num(n as f64)
    }
}
impl From<bool> for GValue {
    fn from(b: bool) -> Self {
        GValue::Bool(b)
    }
}

/// A tuple.
pub type GRow = Vec<GValue>;

/// Schema of one source relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name (unique within its source).
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
}

impl RelationSchema {
    /// Builds a schema.
    pub fn new(name: &str, columns: &[&str]) -> RelationSchema {
        RelationSchema {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Position of a column.
    pub fn position(&self, col: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == col)
    }
}

/// A source: its exported schema ("source views") and its data.
///
/// In MIX/Tukwila each source *must* export a schema before anything can be
/// integrated — exactly the investment NETMARK's schema-less design
/// eliminates. The mediator's cost accounting counts these.
#[derive(Debug, Clone, Default)]
pub struct Source {
    /// Source name.
    pub name: String,
    /// Declared relations.
    pub relations: Vec<RelationSchema>,
    /// Instance data per relation.
    pub data: BTreeMap<String, Vec<GRow>>,
}

impl Source {
    /// New empty source.
    pub fn new(name: &str) -> Source {
        Source {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Declares a relation.
    pub fn with_relation(mut self, schema: RelationSchema) -> Source {
        self.relations.push(schema);
        self
    }

    /// Schema of a relation.
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Loads rows into a relation (appends).
    pub fn load(&mut self, relation: &str, rows: Vec<GRow>) {
        self.data
            .entry(relation.to_string())
            .or_default()
            .extend(rows);
    }

    /// Rows of a relation.
    pub fn rows(&self, relation: &str) -> &[GRow] {
        self.data.get(relation).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Comparison operators in selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality (text: exact; numbers: ==).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than (numbers; texts lexicographic).
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Case-insensitive substring containment (text only).
    Contains,
}

/// One selection predicate: `column op constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand constant.
    pub value: GValue,
}

impl Predicate {
    /// Builds a predicate.
    pub fn new(column: &str, op: CmpOp, value: impl Into<GValue>) -> Predicate {
        Predicate {
            column: column.to_string(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates against a value.
    pub fn matches(&self, v: &GValue) -> bool {
        use std::cmp::Ordering;
        let ord: Option<Ordering> = match (v, &self.value) {
            (GValue::Num(a), GValue::Num(b)) => a.partial_cmp(b),
            (GValue::Text(a), GValue::Text(b)) => Some(a.as_str().cmp(b.as_str())),
            (GValue::Bool(a), GValue::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        };
        match self.op {
            CmpOp::Eq => ord == Some(Ordering::Equal),
            CmpOp::Ne => ord.is_some() && ord != Some(Ordering::Equal),
            CmpOp::Lt => ord == Some(Ordering::Less),
            CmpOp::Le => matches!(ord, Some(Ordering::Less | Ordering::Equal)),
            CmpOp::Gt => ord == Some(Ordering::Greater),
            CmpOp::Ge => matches!(ord, Some(Ordering::Greater | Ordering::Equal)),
            CmpOp::Contains => match (v, &self.value) {
                (GValue::Text(a), GValue::Text(b)) => a.to_lowercase().contains(&b.to_lowercase()),
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_schema_and_data() {
        let mut s = Source::new("ames")
            .with_relation(RelationSchema::new("personnel", &["name", "rating"]));
        s.load("personnel", vec![vec!["ada".into(), "excellent".into()]]);
        assert_eq!(s.relation("personnel").unwrap().position("rating"), Some(1));
        assert_eq!(s.rows("personnel").len(), 1);
        assert!(s.rows("missing").is_empty());
    }

    #[test]
    fn predicate_semantics() {
        assert!(Predicate::new("x", CmpOp::Eq, "a").matches(&"a".into()));
        assert!(!Predicate::new("x", CmpOp::Eq, "a").matches(&"b".into()));
        assert!(Predicate::new("x", CmpOp::Ge, 2.0).matches(&GValue::Num(2.0)));
        assert!(Predicate::new("x", CmpOp::Lt, 2.0).matches(&GValue::Num(1.0)));
        assert!(Predicate::new("x", CmpOp::Contains, "gap").matches(&"Technology GAP".into()));
        // Type mismatches never match (and never panic).
        assert!(!Predicate::new("x", CmpOp::Eq, 1.0).matches(&"1".into()));
        assert!(!Predicate::new("x", CmpOp::Lt, "a").matches(&GValue::Null));
        assert!(!Predicate::new("x", CmpOp::Ne, "a").matches(&GValue::Null));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        assert_eq!(GValue::from("x"), GValue::Text("x".into()));
        assert_eq!(GValue::from(2i64), GValue::Num(2.0));
        assert_eq!(GValue::from(2.5), GValue::Num(2.5));
        assert_eq!(GValue::from(true), GValue::Bool(true));
        assert_eq!(GValue::Null.to_string(), "NULL");
        assert_eq!(GValue::Num(1.5).to_string(), "1.5");
        assert_eq!(GValue::Bool(false).to_string(), "false");
        assert_eq!(GValue::Text("t".into()).as_text(), Some("t"));
        assert_eq!(GValue::Num(3.0).as_num(), Some(3.0));
        assert_eq!(GValue::Text("t".into()).as_num(), None);
    }

    #[test]
    fn text_predicates_are_lexicographic() {
        assert!(Predicate::new("x", CmpOp::Lt, "b").matches(&"a".into()));
        assert!(Predicate::new("x", CmpOp::Ge, "b").matches(&"c".into()));
        assert!(!Predicate::new("x", CmpOp::Gt, "b").matches(&"b".into()));
        assert!(Predicate::new("x", CmpOp::Le, "b").matches(&"b".into()));
    }

    #[test]
    fn bool_predicates() {
        assert!(Predicate::new("x", CmpOp::Eq, false).matches(&GValue::Bool(false)));
        assert!(Predicate::new("x", CmpOp::Ne, false).matches(&GValue::Bool(true)));
        assert!(!Predicate::new("x", CmpOp::Contains, "t").matches(&GValue::Bool(true)));
    }
}
