//! XML text escaping.

/// Escapes character data for element content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value (adds quote escaping on top of text escaping).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Resolves the five predefined entities plus decimal/hex character
/// references. Unknown entities are preserved verbatim (lenient, as the
/// paper's parser must cope with real-world HTML).
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find the terminating ';' within a sane distance.
        let end = s[i + 1..]
            .char_indices()
            .take(12)
            .find(|(_, c)| *c == ';')
            .map(|(off, _)| i + 1 + off);
        let Some(end) = end else {
            out.push('&');
            i += 1;
            continue;
        };
        let entity = &s[i + 1..end];
        let resolved: Option<String> = match entity {
            "amp" => Some("&".into()),
            "lt" => Some("<".into()),
            "gt" => Some(">".into()),
            "quot" => Some("\"".into()),
            "apos" => Some("'".into()),
            "nbsp" => Some("\u{a0}".into()),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                u32::from_str_radix(&entity[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .map(|c| c.to_string())
            }
            _ if entity.starts_with('#') => entity[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .map(|c| c.to_string()),
            _ => None,
        };
        match resolved {
            Some(r) => {
                out.push_str(&r);
                i = end + 1;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escape_round_trip() {
        let s = "a < b && c > d";
        assert_eq!(unescape(&escape_text(s)), s);
        assert_eq!(escape_text(s), "a &lt; b &amp;&amp; c &gt; d");
    }

    #[test]
    fn attr_escape_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
        assert_eq!(unescape("say &quot;hi&quot;"), r#"say "hi""#);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#X43;"), "ABC");
        assert_eq!(unescape("caf&#233;"), "café");
    }

    #[test]
    fn unknown_entities_preserved() {
        assert_eq!(unescape("&bogus; & x"), "&bogus; & x");
        assert_eq!(unescape("dangling &"), "dangling &");
        assert_eq!(unescape("&;"), "&;");
    }

    #[test]
    fn unicode_passthrough() {
        let s = "NASA — Ames ✓ émission";
        assert_eq!(unescape(&escape_text(s)), s);
    }
}
