//! The NETMARK document model.
//!
//! The paper's SGML parser "is governed by five different node data types
//! ... (1) ELEMENT, (2) TEXT, (3) CONTEXT, (4) INTENSE, and (5) SIMULATION"
//! (§2.1.1, Fig 5). The paper skips their exact definitions; this
//! reproduction assigns them the roles their names and the surrounding text
//! imply:
//!
//! - **ELEMENT** — an ordinary markup element.
//! - **TEXT** — character data.
//! - **CONTEXT** — a heading-like element ("similar to the `<H1>` and
//!   `<H2>` header tags"); the unit the `Context=` search targets.
//! - **INTENSE** — emphasized inline content (bold/italic/strong); carries
//!   formatting weight the upmarkers use but does not open a section.
//! - **SIMULATION** — a node *synthesized* by an upmarker rather than
//!   present in the source (e.g. the implied "Body" context of a document
//!   with no headings, or a cell grid derived from a spreadsheet).

use crate::escape::{escape_attr, escape_text};
use std::fmt;

/// The five NETMARK node data types (Fig 5's `NODETYPE` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeType {
    /// Ordinary markup element.
    Element = 1,
    /// Character data.
    Text = 2,
    /// Heading-like element: the target of `Context=` searches.
    Context = 3,
    /// Emphasized inline content.
    Intense = 4,
    /// Node synthesized by an upmarker, not present in the source.
    Simulation = 5,
}

impl NodeType {
    /// The Fig-5 numeric identifier.
    pub fn id(self) -> i64 {
        self as i64
    }

    /// Inverse of [`NodeType::id`].
    pub fn from_id(id: i64) -> Option<NodeType> {
        Some(match id {
            1 => NodeType::Element,
            2 => NodeType::Text,
            3 => NodeType::Context,
            4 => NodeType::Intense,
            5 => NodeType::Simulation,
            _ => return None,
        })
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeType::Element => "ELEMENT",
            NodeType::Text => "TEXT",
            NodeType::Context => "CONTEXT",
            NodeType::Intense => "INTENSE",
            NodeType::Simulation => "SIMULATION",
        })
    }
}

/// One node of an upmarked document tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node data type.
    pub ntype: NodeType,
    /// Element name; `"#text"` for text nodes.
    pub name: String,
    /// Character data (text nodes only).
    pub text: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Node {
    /// An ordinary element.
    pub fn element(name: &str) -> Node {
        Node {
            ntype: NodeType::Element,
            name: name.to_string(),
            text: String::new(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// A context (heading) element whose heading text is `label`.
    pub fn context(name: &str, label: &str) -> Node {
        let mut n = Node {
            ntype: NodeType::Context,
            name: name.to_string(),
            text: String::new(),
            attrs: Vec::new(),
            children: Vec::new(),
        };
        if !label.is_empty() {
            n.children.push(Node::text(label));
        }
        n
    }

    /// A text node.
    pub fn text(data: &str) -> Node {
        Node {
            ntype: NodeType::Text,
            name: "#text".to_string(),
            text: data.to_string(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// An emphasized inline element.
    pub fn intense(name: &str) -> Node {
        Node {
            ntype: NodeType::Intense,
            name: name.to_string(),
            text: String::new(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// A synthesized element.
    pub fn simulation(name: &str) -> Node {
        Node {
            ntype: NodeType::Simulation,
            name: name.to_string(),
            text: String::new(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: adds an attribute.
    pub fn with_attr(mut self, key: &str, value: &str) -> Node {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// Builder: adds a child.
    pub fn with_child(mut self, child: Node) -> Node {
        self.children.push(child);
        self
    }

    /// Builder: adds a text child.
    pub fn with_text(self, data: &str) -> Node {
        self.with_child(Node::text(data))
    }

    /// Attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Concatenated text of this subtree, in document order, with single
    /// spaces joining fragments.
    pub fn text_content(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        self.collect_text(&mut parts);
        parts.join(" ")
    }

    fn collect_text<'a>(&'a self, out: &mut Vec<&'a str>) {
        if self.ntype == NodeType::Text {
            let t = self.text.trim();
            if !t.is_empty() {
                out.push(t);
            }
        }
        for c in &self.children {
            c.collect_text(out);
        }
    }

    /// Depth-first pre-order iterator over the subtree (self included).
    pub fn iter(&self) -> NodeIter<'_> {
        NodeIter { stack: vec![self] }
    }

    /// First descendant element (or self) with the given name.
    pub fn find(&self, name: &str) -> Option<&Node> {
        self.iter().find(|n| n.name == name)
    }

    /// All descendant elements (and self) with the given name.
    pub fn find_all(&self, name: &str) -> Vec<&Node> {
        self.iter().filter(|n| n.name == name).collect()
    }

    /// Direct child elements with the given name.
    pub fn children_named(&self, name: &str) -> Vec<&Node> {
        self.children.iter().filter(|n| n.name == name).collect()
    }

    /// Number of nodes in the subtree (self included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Node::size).sum::<usize>()
    }

    /// Maximum depth of the subtree (a leaf is depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Node::depth).max().unwrap_or(0)
    }

    /// Serializes the subtree as XML (no declaration, no whitespace added).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out, None);
        out
    }

    /// Serializes the subtree as indented XML.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out, Some(0));
        out
    }

    fn write_xml(&self, out: &mut String, indent: Option<usize>) {
        let pad = |out: &mut String, level: usize| {
            for _ in 0..level {
                out.push_str("  ");
            }
        };
        let level = indent.unwrap_or(0);
        if self.ntype == NodeType::Text {
            if indent.is_some() {
                pad(out, level);
            }
            out.push_str(&escape_text(&self.text));
            if indent.is_some() {
                out.push('\n');
            }
            return;
        }
        if indent.is_some() {
            pad(out, level);
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_attr(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            if indent.is_some() {
                out.push('\n');
            }
            return;
        }
        out.push('>');
        // Compact single-text-child form even when pretty-printing.
        if indent.is_some() && self.children.len() == 1 && self.children[0].ntype == NodeType::Text
        {
            out.push_str(&escape_text(&self.children[0].text));
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
            return;
        }
        if indent.is_some() {
            out.push('\n');
        }
        for c in &self.children {
            c.write_xml(out, indent.map(|l| l + 1));
        }
        if indent.is_some() {
            pad(out, level);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
        if indent.is_some() {
            out.push('\n');
        }
    }
}

/// Depth-first pre-order node iterator.
pub struct NodeIter<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for NodeIter<'a> {
    type Item = &'a Node;

    fn next(&mut self) -> Option<&'a Node> {
        let n = self.stack.pop()?;
        for c in n.children.iter().rev() {
            self.stack.push(c);
        }
        Some(n)
    }
}

/// A named, upmarked document: the unit NETMARK ingests and stores.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// File name (the DOC table's `FILE_NAME`).
    pub name: String,
    /// Source format tag, e.g. `"wdoc"`, `"html"` (informational).
    pub format: String,
    /// Size of the original file in bytes (the DOC table's `FILE_SIZE`).
    pub source_size: u64,
    /// Root of the upmarked tree.
    pub root: Node,
}

impl Document {
    /// Creates a document around a root node.
    pub fn new(name: &str, format: &str, root: Node) -> Document {
        Document {
            name: name.to_string(),
            format: format.to_string(),
            source_size: 0,
            root,
        }
    }

    /// Builder: records the original file size.
    pub fn with_source_size(mut self, bytes: u64) -> Document {
        self.source_size = bytes;
        self
    }

    /// `(context label, content text)` pairs in document order — the view
    /// Fig 4 of the paper illustrates (`<Context>Abstract</Context>
    /// <Content>...</Content>`).
    pub fn context_content_pairs(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        collect_pairs(&self.root, &mut out);
        out
    }
}

fn collect_pairs(node: &Node, out: &mut Vec<(String, String)>) {
    // A context's content is its following siblings up to the next context.
    let mut i = 0usize;
    while i < node.children.len() {
        let child = &node.children[i];
        if child.ntype == NodeType::Context {
            let label = child.text_content();
            let mut content = Vec::new();
            let mut j = i + 1;
            while j < node.children.len() && node.children[j].ntype != NodeType::Context {
                let t = node.children[j].text_content();
                if !t.is_empty() {
                    content.push(t);
                }
                j += 1;
            }
            out.push((label, content.join(" ")));
            // Recurse *into* the content span for nested contexts.
            for k in i + 1..j {
                collect_pairs(&node.children[k], out);
            }
            i = j;
        } else {
            collect_pairs(child, out);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let root = Node::element("document")
            .with_child(Node::context("Context", "Abstract"))
            .with_child(Node::element("Content").with_text("This paper describes an approach."))
            .with_child(Node::context("Context", "Introduction"))
            .with_child(
                Node::element("Content")
                    .with_text("Seamless integrated access ")
                    .with_child(Node::intense("b").with_text("continues"))
                    .with_text(" to be a challenge."),
            );
        Document::new("paper.xml", "xml", root)
    }

    #[test]
    fn node_type_ids_match_fig5() {
        assert_eq!(NodeType::Element.id(), 1);
        assert_eq!(NodeType::Text.id(), 2);
        assert_eq!(NodeType::Context.id(), 3);
        assert_eq!(NodeType::Intense.id(), 4);
        assert_eq!(NodeType::Simulation.id(), 5);
        for id in 1..=5 {
            assert_eq!(NodeType::from_id(id).unwrap().id(), id);
        }
        assert!(NodeType::from_id(0).is_none());
        assert!(NodeType::from_id(6).is_none());
    }

    #[test]
    fn text_content_joins_fragments() {
        let d = sample();
        let content = d.root.children[3].text_content();
        assert_eq!(
            content,
            "Seamless integrated access continues to be a challenge."
        );
    }

    #[test]
    fn context_content_pairs_fig4() {
        let d = sample();
        let pairs = d.context_content_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, "Abstract");
        assert_eq!(pairs[0].1, "This paper describes an approach.");
        assert_eq!(pairs[1].0, "Introduction");
        assert!(pairs[1].1.contains("Seamless"));
    }

    #[test]
    fn nested_contexts_are_found() {
        let root = Node::element("doc")
            .with_child(Node::context("h1", "Top"))
            .with_child(
                Node::element("section")
                    .with_child(Node::context("h2", "Inner"))
                    .with_child(Node::element("p").with_text("inner text")),
            );
        let d = Document::new("n.xml", "xml", root);
        let pairs = d.context_content_pairs();
        let labels: Vec<&str> = pairs.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["Top", "Inner"]);
        assert_eq!(pairs[1].1, "inner text");
    }

    #[test]
    fn xml_serialization_escapes() {
        let n = Node::element("a")
            .with_attr("k", "v<>&\"")
            .with_text("1 < 2 & 3");
        assert_eq!(
            n.to_xml(),
            r#"<a k="v&lt;&gt;&amp;&quot;">1 &lt; 2 &amp; 3</a>"#
        );
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(Node::element("br").to_xml(), "<br/>");
    }

    #[test]
    fn iter_is_preorder() {
        let d = sample();
        let names: Vec<&str> = d.root.iter().map(|n| n.name.as_str()).take(4).collect();
        assert_eq!(names, vec!["document", "Context", "#text", "Content"]);
        assert_eq!(d.root.size(), d.root.iter().count());
    }

    #[test]
    fn find_helpers() {
        let d = sample();
        assert!(d.root.find("b").is_some());
        assert_eq!(d.root.find_all("Content").len(), 2);
        assert_eq!(d.root.children_named("Context").len(), 2);
        assert!(d.root.find("nope").is_none());
    }

    #[test]
    fn size_and_depth() {
        let n = Node::element("a").with_child(Node::element("b").with_text("t"));
        assert_eq!(n.size(), 3);
        assert_eq!(n.depth(), 3);
        assert_eq!(Node::text("x").depth(), 1);
    }

    #[test]
    fn pretty_print_is_reparseable_shape() {
        let d = sample();
        let pretty = d.root.to_pretty_xml();
        assert!(pretty.contains("<Context>Abstract</Context>"));
        assert!(pretty.lines().count() > 3);
    }
}
