//! `netmark-model`: the document/node model shared by every layer of the
//! NETMARK reproduction.
//!
//! Defines the paper's five node data types (`ELEMENT`, `TEXT`, `CONTEXT`,
//! `INTENSE`, `SIMULATION` — Fig 5), the upmarked document tree
//! ([`Node`] / [`Document`]), XML escaping, and serialization. Parsers
//! (`netmark-sgml`) produce this model; the store flattens it into the
//! `XML`/`DOC` tables; the XSLT engine transforms it.

#![warn(missing_docs)]

pub mod escape;
pub mod node;

pub use escape::{escape_attr, escape_text, unescape};
pub use node::{Document, Node, NodeIter, NodeType};
