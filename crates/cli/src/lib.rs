//! `netmark-cli`: the `netmark` command-line tool.
//!
//! The paper's deployment story is "drop files in a folder, query by URL";
//! this binary is the operational wrapper a release would ship:
//!
//! ```text
//! netmark --dir DB ingest FILE...         ingest documents
//! netmark --dir DB ls                     list stored documents
//! netmark --dir DB query 'Context=Budget&Content=engine'
//! netmark --dir DB cat NAME               print a stored document as XML
//! netmark --dir DB rm NAME                remove a document
//! netmark --dir DB serve [--bind ADDR] [--dropbox DIR]
//! netmark --dir DB stats                  store statistics
//! netmark --dir DB --shards N ...         shard-per-core store (scatter-gather)
//! netmark --dir DB shard-rebalance N      offline reshard to N shards
//! ```
//!
//! A store directory created with `--shards` carries a `SHARDMAP`
//! manifest; later invocations detect it and open the sharded layout
//! automatically, so `--shards` is only needed at creation time (or to
//! assert an expected count).
//!
//! Argument handling is hand-rolled (std only), in keeping with the
//! workspace's no-extra-dependencies rule. The logic lives here in the
//! library so it is testable; `main.rs` is a thin shim.

#![warn(missing_docs)]

use netmark::{NetMark, QueryOutput, XdbBackend};
use netmark_shard::{rebalance, ShardManifest, ShardOptions, ShardedStore};
use netmark_xdb::XdbQuery;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// Database directory (`--dir`, default `./netmark-db`).
    pub dir: PathBuf,
    /// Shard count (`--shards`): `Some(n)` opens (or creates) the store
    /// as a sharded layout with `n` shards (`0` = one per core). `None`
    /// auto-detects from the `SHARDMAP` manifest.
    pub shards: Option<usize>,
    /// The subcommand.
    pub command: Command,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Ingest files.
    Ingest(Vec<PathBuf>),
    /// List stored documents.
    Ls,
    /// Run an XDB query string.
    Query(String),
    /// Print one stored document as XML.
    Cat(String),
    /// Remove one stored document by name.
    Rm(String),
    /// Serve HTTP (+ optional drop folder).
    Serve {
        /// Bind address.
        bind: String,
        /// Optional drop folder to watch.
        dropbox: Option<PathBuf>,
    },
    /// Print store statistics.
    Stats,
    /// Offline reshard of a sharded store to a new shard count.
    ShardRebalance(usize),
    /// Show usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "netmark — schema-less document store (Lean Middleware reproduction)

USAGE: netmark [--dir DB] <command>

COMMANDS:
  ingest FILE...              upmark + store documents
  ls                          list stored documents
  query 'Context=...&...'     run an XDB query string; add rank=bm25 for
                              relevance-ranked hits with per-hit scores
                              (rank=none — the default — keeps store order)
  cat NAME                    print a stored document as XML
  rm NAME                     remove a document by name
  serve [--bind ADDR] [--dropbox DIR]
                              HTTP server (default 127.0.0.1:7027)
  stats                       store statistics
  shard-rebalance N           offline reshard to N shards

OPTIONS:
  --dir DB                    store directory (default ./netmark-db)
  --shards N                  open/create as a shard-per-core store with
                              N shards (0 = one per core); existing
                              sharded stores are detected automatically
";

/// Parses argv (without the program name). Returns `Err(message)` on bad
/// usage.
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut dir = PathBuf::from("./netmark-db");
    let mut shards: Option<usize> = None;
    let mut rest: Vec<&str> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                dir = PathBuf::from(
                    args.get(i)
                        .ok_or_else(|| "--dir needs a value".to_string())?,
                );
            }
            "--shards" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| "--shards needs a value".to_string())?;
                shards = Some(
                    v.parse()
                        .map_err(|_| format!("--shards needs a number, got '{v}'"))?,
                );
            }
            other => rest.push(other),
        }
        i += 1;
    }
    let command = match rest.split_first() {
        None | Some((&"help", _)) | Some((&"--help", _)) | Some((&"-h", _)) => Command::Help,
        Some((&"ingest", files)) => {
            if files.is_empty() {
                return Err("ingest needs at least one file".into());
            }
            Command::Ingest(files.iter().map(PathBuf::from).collect())
        }
        Some((&"ls", _)) => Command::Ls,
        Some((&"query", q)) => Command::Query(
            q.first()
                .ok_or_else(|| "query needs a query string".to_string())?
                .to_string(),
        ),
        Some((&"cat", n)) => Command::Cat(
            n.first()
                .ok_or_else(|| "cat needs a document name".to_string())?
                .to_string(),
        ),
        Some((&"rm", n)) => Command::Rm(
            n.first()
                .ok_or_else(|| "rm needs a document name".to_string())?
                .to_string(),
        ),
        Some((&"stats", _)) => Command::Stats,
        Some((&"shard-rebalance", n)) => {
            let v = n
                .first()
                .ok_or_else(|| "shard-rebalance needs a shard count".to_string())?;
            Command::ShardRebalance(
                v.parse()
                    .map_err(|_| format!("shard-rebalance needs a number, got '{v}'"))?,
            )
        }
        Some((&"serve", opts)) => {
            let mut bind = "127.0.0.1:7027".to_string();
            let mut dropbox = None;
            let mut j = 0usize;
            while j < opts.len() {
                match opts[j] {
                    "--bind" => {
                        j += 1;
                        bind = opts
                            .get(j)
                            .ok_or_else(|| "--bind needs a value".to_string())?
                            .to_string();
                    }
                    "--dropbox" => {
                        j += 1;
                        dropbox = Some(PathBuf::from(
                            opts.get(j)
                                .ok_or_else(|| "--dropbox needs a value".to_string())?,
                        ));
                    }
                    other => return Err(format!("unknown serve option '{other}'")),
                }
                j += 1;
            }
            Command::Serve { bind, dropbox }
        }
        Some((cmd, _)) => return Err(format!("unknown command '{cmd}'")),
    };
    Ok(Invocation {
        dir,
        shards,
        command,
    })
}

/// Opens the store behind `dir` as a backend: sharded when `--shards` was
/// given or a `SHARDMAP` manifest is present, a single instance
/// otherwise.
pub fn open_backend(
    dir: &Path,
    shards: Option<usize>,
) -> Result<Arc<dyn XdbBackend>, Box<dyn std::error::Error>> {
    match shards {
        Some(n) => Ok(Arc::new(ShardedStore::open_with(
            dir,
            ShardOptions {
                shards: n,
                ..ShardOptions::default()
            },
        )?)),
        None if ShardManifest::path(dir).exists() => Ok(Arc::new(ShardedStore::open(dir)?)),
        None => Ok(Arc::new(NetMark::open(dir)?)),
    }
}

/// Executes one invocation, writing human output to `out`. `Serve` runs
/// until the process is killed and is therefore not driven through here in
/// tests (the server handle blocks). Returns the process exit code.
pub fn run(inv: &Invocation, out: &mut dyn std::io::Write) -> i32 {
    match run_inner(inv, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

fn run_inner(
    inv: &Invocation,
    out: &mut dyn std::io::Write,
) -> Result<i32, Box<dyn std::error::Error>> {
    if inv.command == Command::Help {
        write!(out, "{USAGE}")?;
        return Ok(0);
    }
    if let Command::ShardRebalance(n) = &inv.command {
        let rep = rebalance(&inv.dir, *n, ShardOptions::default())?;
        writeln!(
            out,
            "rebalanced {} documents: {} -> {} shards",
            rep.documents, rep.from_shards, rep.to_shards
        )?;
        return Ok(0);
    }
    let nm = open_backend(&inv.dir, inv.shards)?;
    match &inv.command {
        Command::Help | Command::ShardRebalance(_) => unreachable!("handled above"),
        Command::Ingest(files) => {
            for f in files {
                let name = f
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| f.display().to_string());
                let content = std::fs::read_to_string(f)?;
                let rep = nm.insert_file(&name, &content)?;
                writeln!(
                    out,
                    "ingested {name}: doc #{} ({} nodes)",
                    rep.doc_id, rep.node_count
                )?;
            }
            nm.flush()?;
        }
        Command::Ls => {
            for d in nm.list_documents()? {
                writeln!(
                    out,
                    "#{:<5} {:<10} {:>8}B  {}",
                    d.doc_id, d.format, d.file_size, d.file_name
                )?;
            }
        }
        Command::Query(q) => match nm.run(&XdbQuery::from_url(q)?)? {
            QueryOutput::Results(rs) => {
                writeln!(out, "{}", rs.to_node().to_pretty_xml())?;
            }
            QueryOutput::Composed(node) => {
                writeln!(out, "{}", node.to_pretty_xml())?;
            }
        },
        Command::Cat(name) => {
            let doc = nm
                .reconstruct_named(name)?
                .ok_or_else(|| format!("no document named '{name}'"))?;
            writeln!(out, "{}", doc.root.to_pretty_xml())?;
        }
        Command::Rm(name) => {
            if !nm.remove_named(name)? {
                return Err(format!("no document named '{name}'").into());
            }
            nm.flush()?;
            writeln!(out, "removed {name}")?;
        }
        Command::Stats => {
            writeln!(out, "documents:   {}", nm.list_documents()?.len())?;
            for child in nm.stats_children() {
                writeln!(out, "{}", child.to_pretty_xml())?;
            }
        }
        Command::Serve { bind, dropbox } => {
            let _daemon = dropbox.as_ref().map(|d| {
                netmark_webdav::watch_folder(nm.clone(), d, std::time::Duration::from_millis(500))
            });
            let server = netmark_webdav::serve(nm.clone(), bind)?;
            writeln!(out, "serving on http://{}", server.addr())?;
            if let Some(d) = dropbox {
                writeln!(out, "watching drop folder {}", d.display())?;
            }
            // Run until killed.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_commands() {
        let inv = parse_args(&argv(&["--dir", "/tmp/x", "ls"])).unwrap();
        assert_eq!(inv.dir, PathBuf::from("/tmp/x"));
        assert_eq!(inv.shards, None);
        assert_eq!(inv.command, Command::Ls);

        let inv = parse_args(&argv(&["--shards", "4", "ls"])).unwrap();
        assert_eq!(inv.shards, Some(4));

        let inv = parse_args(&argv(&["shard-rebalance", "8"])).unwrap();
        assert_eq!(inv.command, Command::ShardRebalance(8));

        let inv = parse_args(&argv(&["ingest", "a.txt", "b.wdoc"])).unwrap();
        assert_eq!(
            inv.command,
            Command::Ingest(vec![PathBuf::from("a.txt"), PathBuf::from("b.wdoc")])
        );

        let inv = parse_args(&argv(&["query", "Context=Budget"])).unwrap();
        assert_eq!(inv.command, Command::Query("Context=Budget".into()));

        let inv = parse_args(&argv(&[
            "serve",
            "--bind",
            "0.0.0.0:80",
            "--dropbox",
            "/in",
        ]))
        .unwrap();
        assert_eq!(
            inv.command,
            Command::Serve {
                bind: "0.0.0.0:80".into(),
                dropbox: Some(PathBuf::from("/in")),
            }
        );

        assert_eq!(parse_args(&argv(&[])).unwrap().command, Command::Help);
        assert!(parse_args(&argv(&["ingest"])).is_err());
        assert!(parse_args(&argv(&["bogus"])).is_err());
        assert!(parse_args(&argv(&["--dir"])).is_err());
        assert!(parse_args(&argv(&["serve", "--wat"])).is_err());
        assert!(parse_args(&argv(&["--shards", "many", "ls"])).is_err());
        assert!(parse_args(&argv(&["shard-rebalance"])).is_err());
        assert!(parse_args(&argv(&["shard-rebalance", "x"])).is_err());
    }

    #[test]
    fn ingest_ls_query_cat_rm_stats_round_trip() {
        let base = std::env::temp_dir().join(format!("netmark-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let dbdir = base.join("db");
        let file = base.join("plan.txt");
        std::fs::write(&file, "# Budget\ncli money\n").unwrap();

        let run_cmd = |cmd: Command| -> (i32, String) {
            let inv = Invocation {
                dir: dbdir.clone(),
                shards: None,
                command: cmd,
            };
            let mut buf = Vec::new();
            let code = run(&inv, &mut buf);
            (code, String::from_utf8_lossy(&buf).into_owned())
        };

        let (code, out) = run_cmd(Command::Ingest(vec![file.clone()]));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("ingested plan.txt"));

        let (code, out) = run_cmd(Command::Ls);
        assert_eq!(code, 0);
        assert!(out.contains("plan.txt"));

        let (code, out) = run_cmd(Command::Query("Context=Budget".into()));
        assert_eq!(code, 0);
        assert!(out.contains("cli money"));
        assert!(!out.contains("score="), "unranked output carries no scores");

        // Ranked query: wire v2 output with per-hit scores.
        let (code, out) = run_cmd(Command::Query("Content=money&rank=bm25".into()));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("ranked=\"true\""), "{out}");
        assert!(out.contains("score="), "{out}");

        // A bad rank mode is a typed parse error, not a panic.
        let (code, out) = run_cmd(Command::Query("Content=money&rank=tfidf".into()));
        assert_eq!(code, 1);
        assert!(out.contains("rank"), "{out}");

        let (code, out) = run_cmd(Command::Cat("plan.txt".into()));
        assert_eq!(code, 0);
        assert!(out.contains("<Context"));

        let (code, out) = run_cmd(Command::Stats);
        assert_eq!(code, 0);
        assert!(out.contains("documents:   1"));

        let (code, out) = run_cmd(Command::Rm("plan.txt".into()));
        assert_eq!(code, 0, "{out}");
        let (_, out) = run_cmd(Command::Ls);
        assert!(!out.contains("plan.txt"));

        // Errors are reported, not panicked.
        let (code, out) = run_cmd(Command::Cat("ghost.txt".into()));
        assert_eq!(code, 1);
        assert!(out.contains("error:"));

        let (code, out) = run_cmd(Command::Help);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));

        std::fs::remove_dir_all(&base).unwrap();
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;

    fn run_in(dir: &Path, shards: Option<usize>, cmd: Command) -> (i32, String) {
        let inv = Invocation {
            dir: dir.to_path_buf(),
            shards,
            command: cmd,
        };
        let mut buf = Vec::new();
        let code = run(&inv, &mut buf);
        (code, String::from_utf8_lossy(&buf).into_owned())
    }

    #[test]
    fn sharded_mode_round_trip_and_auto_detect() {
        let base = std::env::temp_dir().join(format!("netmark-cli-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let dbdir = base.join("db");
        let file = base.join("plan.txt");
        std::fs::write(&file, "# Budget\nsharded money\n").unwrap();

        // Create the store sharded, ingest, query.
        let (code, out) = run_in(&dbdir, Some(2), Command::Ingest(vec![file.clone()]));
        assert_eq!(code, 0, "{out}");
        assert!(ShardManifest::path(&dbdir).exists(), "SHARDMAP persisted");

        // Later invocations need no --shards: the manifest is detected.
        let (code, out) = run_in(&dbdir, None, Command::Query("Context=Budget".into()));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("sharded money"));

        // Stats include the per-shard element in sharded mode.
        let (code, out) = run_in(&dbdir, None, Command::Stats);
        assert_eq!(code, 0);
        assert!(out.contains("documents:   1"));
        assert!(out.contains("<shards"));

        // Offline reshard 2 -> 3, then query again without --shards.
        let (code, out) = run_in(&dbdir, None, Command::ShardRebalance(3));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 -> 3 shards"));
        let (code, out) = run_in(&dbdir, None, Command::Query("Context=Budget".into()));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("sharded money"));

        // A conflicting explicit count is refused, not silently honored.
        let (code, out) = run_in(&dbdir, Some(5), Command::Ls);
        assert_eq!(code, 1);
        assert!(out.contains("rebalance"), "{out}");

        std::fs::remove_dir_all(&base).unwrap();
    }
}
