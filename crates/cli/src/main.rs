//! The `netmark` binary: thin shim over [`netmark_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match netmark_cli::parse_args(&args) {
        Ok(inv) => std::process::exit(netmark_cli::run(&inv, &mut stdout)),
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", netmark_cli::USAGE);
            std::process::exit(2);
        }
    }
}
