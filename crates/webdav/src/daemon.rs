//! The NETMARK DAEMON: drop-folder ingestion.
//!
//! "Users insert new documents (in any format such as Word, PDF, HTML, XML
//! or others) into NETMARK by simply dragging the documents into a
//! (NETMARK) desktop folder. The 'NETMARK DAEMON' periodically picks up
//! these documents, passes them onto the 'SGML Parser', which converts the
//! documents into XML" (§2.1.2, Fig 3).
//!
//! The daemon polls a folder; new files are ingested, modified files are
//! re-ingested (old version removed first). Files stay in place — the
//! folder *is* the user's working directory.
//!
//! Each sweep feeds every changed file through the staged ingestion
//! pipeline ([`netmark::pipeline`]): files are upmarked by parallel
//! workers and committed in batched transactions, so a folder full of new
//! documents costs a handful of WAL fsyncs instead of one per file.
//! Failures are isolated per file — an unreadable or unparseable document
//! is counted in [`DaemonStats::errors`] and never blocks its batchmates.

use netmark::{ingest_files, PipelineConfig, RawFile, XdbBackend};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Ingestion counters.
#[derive(Debug, Default, Clone)]
pub struct DaemonStats {
    /// Files ingested for the first time.
    pub ingested: u64,
    /// Files re-ingested after modification.
    pub reingested: u64,
    /// Files that failed to read or ingest.
    pub errors: u64,
}

/// A running drop-folder daemon. Dropping the handle stops it.
pub struct DaemonHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    stats: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    ingested: AtomicU64,
    reingested: AtomicU64,
    errors: AtomicU64,
}

impl DaemonHandle {
    /// Snapshot of ingestion counters.
    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            ingested: self.stats.ingested.load(Ordering::Relaxed),
            reingested: self.stats.reingested.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
        }
    }

    /// Stops the polling loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.shutdown();
        }
    }
}

type Seen = HashMap<PathBuf, (u64, std::time::SystemTime)>;

/// One sweep: collect every new/modified readable file (per-file read
/// errors are counted and skipped), then run the whole set through the
/// staged pipeline in batched transactions.
fn sweep(
    nm: &dyn XdbBackend,
    folder: &Path,
    seen: &Mutex<Seen>,
    counters: &Counters,
    cfg: &PipelineConfig,
) {
    let Ok(entries) = std::fs::read_dir(folder) else {
        return;
    };
    let mut files: Vec<RawFile> = Vec::new();
    // (name, is_reingest) per collected file, for counter attribution.
    let mut kinds: Vec<(String, bool)> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let size = meta.len();
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        let state = (size, mtime);
        let prior = seen.lock().get(&path).copied();
        if prior == Some(state) {
            continue;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let Ok(content) = std::fs::read_to_string(&path) else {
            counters.errors.fetch_add(1, Ordering::Relaxed);
            seen.lock().insert(path, state);
            continue;
        };
        // Re-ingest: drop the stale version first.
        let is_reingest = prior.is_some();
        if is_reingest {
            let _ = nm.remove_named(&name);
        }
        files.push(RawFile::new(name.clone(), content));
        kinds.push((name, is_reingest));
        seen.lock().insert(path, state);
    }
    if files.is_empty() {
        return;
    }
    match ingest_files(nm, files, cfg) {
        Ok(stats) if stats.ingest.errors == 0 => {
            for (_, is_reingest) in &kinds {
                if *is_reingest {
                    counters.reingested.fetch_add(1, Ordering::Relaxed);
                } else {
                    counters.ingested.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(stats) => {
            // Some files were dropped by per-file isolation; attribute
            // exactly by checking which documents actually landed.
            counters
                .errors
                .fetch_add(stats.ingest.errors, Ordering::Relaxed);
            for (name, is_reingest) in &kinds {
                if matches!(nm.document_by_name(name), Ok(Some(_))) {
                    if *is_reingest {
                        counters.reingested.fetch_add(1, Ordering::Relaxed);
                    } else {
                        counters.ingested.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Err(_) => {
            counters
                .errors
                .fetch_add(kinds.len() as u64, Ordering::Relaxed);
        }
    }
}

/// Starts the daemon polling `folder` every `interval` with default
/// pipeline tuning.
pub fn watch_folder(nm: Arc<dyn XdbBackend>, folder: &Path, interval: Duration) -> DaemonHandle {
    watch_folder_with(nm, folder, interval, PipelineConfig::default())
}

/// Starts the daemon with explicit pipeline tuning (worker count, batch
/// size, queue bound).
pub fn watch_folder_with(
    nm: Arc<dyn XdbBackend>,
    folder: &Path,
    interval: Duration,
    cfg: PipelineConfig,
) -> DaemonHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(Counters::default());
    let stop2 = Arc::clone(&stop);
    let stats2 = Arc::clone(&stats);
    let folder = folder.to_path_buf();
    let join = std::thread::spawn(move || {
        let seen = Mutex::new(Seen::new());
        while !stop2.load(Ordering::SeqCst) {
            sweep(&*nm, &folder, &seen, &stats2, &cfg);
            // Sleep in small slices so stop() is responsive.
            let mut remaining = interval;
            while !stop2.load(Ordering::SeqCst) && remaining > Duration::ZERO {
                let step = remaining.min(Duration::from_millis(20));
                std::thread::sleep(step);
                remaining = remaining.saturating_sub(step);
            }
        }
    });
    DaemonHandle {
        stop,
        join: Some(join),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark::NetMark;
    use netmark_xdb::XdbQuery;

    fn wait_until(mut cond: impl FnMut() -> bool, max_ms: u64) -> bool {
        for _ in 0..max_ms / 10 {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        cond()
    }

    #[test]
    fn picks_up_dropped_files() {
        let base = std::env::temp_dir().join(format!("netmark-daemon-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let drop_dir = base.join("dropbox");
        std::fs::create_dir_all(&drop_dir).unwrap();
        let nm = Arc::new(NetMark::open(&base.join("store")).unwrap());

        let handle = watch_folder(nm.clone(), &drop_dir, Duration::from_millis(30));
        std::fs::write(drop_dir.join("plan.txt"), "# Budget\ntwo million\n").unwrap();
        assert!(
            wait_until(|| handle.stats().ingested >= 1, 3000),
            "daemon ingested the dropped file"
        );
        let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.len(), 1);

        // Modify the file → re-ingest replaces the old version.
        std::thread::sleep(Duration::from_millis(50));
        std::fs::write(drop_dir.join("plan.txt"), "# Budget\nthree million\n").unwrap();
        assert!(
            wait_until(|| handle.stats().reingested >= 1, 3000),
            "daemon re-ingested the modified file"
        );
        assert!(wait_until(
            || {
                let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
                rs.len() == 1 && rs.hits[0].content_text().contains("three")
            },
            3000
        ));

        handle.stop();
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn unreadable_folder_is_harmless() {
        let base = std::env::temp_dir().join(format!("netmark-daemon2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let nm = Arc::new(NetMark::open(&base.join("store")).unwrap());
        // Watch a folder that doesn't exist.
        let handle = watch_folder(nm, &base.join("ghost"), Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(handle.stats().ingested, 0);
        handle.stop();
        std::fs::remove_dir_all(&base).unwrap();
    }
}
