//! A shared ingest service: the HTTP PUT path riding the batch pipeline.
//!
//! Uploads are queued onto a bounded work queue and committed by one
//! background writer that drains the queue into batches — concurrent PUTs
//! that arrive within the same drain share a single store transaction (and
//! fsync), exactly like the drop-folder pipeline. The bound gives
//! backpressure: when uploads outrun the writer, `submit` blocks instead
//! of buffering unboundedly.
//!
//! Failures are isolated per upload: a batch that fails to commit is
//! retried one document at a time, and only the offending uploads see an
//! error response.

use netmark::pipeline::BoundedQueue;
use netmark::{IngestReport, PipelineConfig, RawFile, XdbBackend};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::time::Instant;

struct Job {
    file: RawFile,
    reply: SyncSender<Result<IngestReport, String>>,
}

/// A running ingest service. Dropping it stops the writer thread.
pub struct IngestService {
    queue: Arc<BoundedQueue<Job>>,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl IngestService {
    /// Starts the writer thread committing into `nm`.
    pub fn start(nm: Arc<dyn XdbBackend>, cfg: PipelineConfig) -> IngestService {
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let q2 = Arc::clone(&queue);
        let batch_docs = cfg.batch_docs.max(1);
        let writer = std::thread::spawn(move || {
            let mut jobs: Vec<Job> = Vec::with_capacity(batch_docs);
            while let Some(job) = q2.pop() {
                jobs.push(job);
                while jobs.len() < batch_docs {
                    match q2.try_pop() {
                        Some(j) => jobs.push(j),
                        None => break,
                    }
                }
                commit_jobs(&*nm, &mut jobs);
            }
        });
        IngestService {
            queue,
            writer: Some(writer),
        }
    }

    /// Queues one upload and blocks until its batch commits. Returns the
    /// ingest report, or the error message for this upload alone.
    pub fn submit(&self, name: &str, content: &str) -> Result<IngestReport, String> {
        let (reply, rx) = sync_channel(1);
        let accepted = self.queue.push(Job {
            file: RawFile::new(name, content),
            reply,
        });
        if !accepted {
            return Err("ingest service is shut down".to_string());
        }
        rx.recv()
            .unwrap_or_else(|_| Err("ingest service dropped the upload".to_string()))
    }

    /// Depth high-water mark of the work queue (instrumentation).
    pub fn max_queue_depth(&self) -> usize {
        self.queue.max_depth()
    }
}

impl Drop for IngestService {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

/// Upmarks and commits `jobs` as one batch, answering every reply channel.
/// Falls back to per-document commits if the batch transaction fails.
fn commit_jobs(nm: &dyn XdbBackend, jobs: &mut Vec<Job>) {
    nm.ingest_metrics().observe_queue_depth(jobs.len());
    let t0 = Instant::now();
    let docs: Vec<_> = jobs
        .iter()
        .map(|j| netmark_docformats::upmark(&j.file.name, &j.file.content))
        .collect();
    nm.ingest_metrics().record_upmark(t0.elapsed());
    match nm.ingest_batch(&docs) {
        Ok(reports) => {
            for (job, report) in jobs.drain(..).zip(reports) {
                let _ = job.reply.send(Ok(report));
            }
        }
        Err(_) => {
            // Per-upload isolation: one bad document must not fail its
            // batchmates.
            for (job, doc) in jobs.drain(..).zip(docs) {
                let outcome = nm.insert_document(&doc).map_err(|e| e.to_string());
                if outcome.is_err() {
                    nm.ingest_metrics().record_error();
                }
                let _ = job.reply.send(outcome);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark::NetMark;
    use netmark_xdb::XdbQuery;

    #[test]
    fn concurrent_submits_share_batches() {
        let dir = std::env::temp_dir().join(format!("netmark-ingestsvc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = Arc::new(NetMark::open(&dir).unwrap());
        let svc = Arc::new(IngestService::start(nm.clone(), PipelineConfig::default()));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    svc.submit(
                        &format!("doc{i}.txt"),
                        &format!("# Section{i}\ncontent number {i}\n"),
                    )
                })
            })
            .collect();
        for h in handles {
            let report = h.join().unwrap().expect("upload succeeds");
            assert!(report.node_count > 0);
        }
        assert_eq!(nm.list_documents().unwrap().len(), 8);
        assert_eq!(nm.query(&XdbQuery::context("Section3")).unwrap().len(), 1);
        let st = nm.stats().unwrap();
        assert_eq!(st.ingest.documents, 8);
        assert!(
            st.ingest.batches <= 8,
            "batching never exceeds one txn per doc"
        );
        drop(svc);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let dir = std::env::temp_dir().join(format!("netmark-ingestsvc2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = Arc::new(NetMark::open(&dir).unwrap());
        let mut svc = IngestService::start(nm.clone(), PipelineConfig::default());
        assert!(svc.submit("a.txt", "# A\nbody\n").is_ok());
        // Simulate shutdown without dropping (close + join).
        svc.queue.close();
        if let Some(w) = svc.writer.take() {
            w.join().unwrap();
        }
        assert!(svc.submit("b.txt", "# B\nbody\n").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
