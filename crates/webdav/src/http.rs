//! Minimal HTTP/1.1 framing (request parse, response write).
//!
//! "Communication between the user folders and the NETMARK server is done
//! using WebDAV which is a set of extensions to the HTTP protocol" (§2.1.2).
//! This module is the protocol substrate: just enough HTTP/1.1 to carry
//! the WebDAV verbs and XDB query URLs, over std TCP, no dependencies.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted body (64 MiB) — guards against hostile Content-Length.
const MAX_BODY: usize = 64 << 20;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// HTTP method (uppercased).
    pub method: String,
    /// Path portion (percent-decoded is the handler's business; query kept
    /// raw in `query`).
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Headers, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Headers in insertion order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Builds a response with a status.
    pub fn new(status: u16) -> Response {
        let reason = match status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            207 => "Multi-Status",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        Response {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Builder: adds a header.
    pub fn with_header(mut self, k: &str, v: &str) -> Response {
        self.headers.push((k.to_string(), v.to_string()));
        self
    }

    /// Builder: sets an XML body.
    pub fn with_xml(mut self, xml: &str) -> Response {
        self.headers
            .push(("Content-Type".into(), "text/xml; charset=utf-8".into()));
        self.body = xml.as_bytes().to_vec();
        self
    }

    /// Builder: sets a plain-text body.
    pub fn with_text(mut self, text: &str) -> Response {
        self.headers
            .push(("Content-Type".into(), "text/plain; charset=utf-8".into()));
        self.body = text.as_bytes().to_vec();
        self
    }

    /// Serializes onto the wire.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        let mut has_len = false;
        for (k, v) in &self.headers {
            if k.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        if !has_len {
            head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reads one request from the stream. `None` for a cleanly closed or
/// unparseable connection.
pub fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_ascii_uppercase();
    let target = parts.next()?.to_string();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    let mut headers = BTreeMap::new();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h).ok()? == 0 {
            break;
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    let len: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY {
        return None;
    }
    let mut body = vec![0u8; len];
    if len > 0 {
        reader.read_exact(&mut body).ok()?;
    }
    Some(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str) -> Option<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            round_trip("GET /xdb?Context=Budget&limit=3 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/xdb");
        assert_eq!(req.query.as_deref(), Some("Context=Budget&limit=3"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn parses_put_with_body() {
        let req = round_trip("PUT /docs/a.txt HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "PUT");
        assert_eq!(req.body_text(), "hello");
    }

    #[test]
    fn empty_connection_is_none() {
        assert!(round_trip("").is_none());
    }

    #[test]
    fn response_serialization() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            Response::new(207)
                .with_header("DAV", "1")
                .with_xml("<multistatus/>")
                .write_to(&mut conn)
                .unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        server.join().unwrap();
        assert!(buf.starts_with("HTTP/1.1 207 Multi-Status\r\n"));
        assert!(buf.contains("DAV: 1"));
        assert!(buf.contains("Content-Length: 14"));
        assert!(buf.ends_with("<multistatus/>"));
    }
}
