//! Minimal HTTP/1.1 framing (request parse, response write).
//!
//! "Communication between the user folders and the NETMARK server is done
//! using WebDAV which is a set of extensions to the HTTP protocol" (§2.1.2).
//! This module is the protocol substrate: just enough HTTP/1.1 to carry
//! the WebDAV verbs and XDB query URLs, over std TCP, no dependencies.
//!
//! Connections are persistent by default (HTTP/1.1 keep-alive): servers
//! loop [`read_request_from`] over one [`BufReader`] per connection —
//! keeping the reader across requests so pipelined bytes are never lost —
//! and honor the client's `Connection:` header when writing. Parsing is
//! hardened against hostile peers: header section and body sizes are
//! capped, and the typed [`RequestError`] lets servers answer `431`/`413`
//! instead of allocating whatever the peer claims.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Maximum accepted body (64 MiB) — guards against hostile Content-Length.
pub const MAX_BODY: usize = 64 << 20;

/// Maximum accepted request-line + header section (64 KiB total).
pub const MAX_HEADER_BYTES: usize = 64 << 10;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// HTTP method (uppercased).
    pub method: String,
    /// Path portion (percent-decoded is the handler's business; query kept
    /// raw in `query`).
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Headers, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the client wants the connection kept open after the
    /// response (HTTP/1.1 default unless it sent `Connection: close`).
    pub fn wants_keep_alive(&self) -> bool {
        !self
            .header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Clean end of stream before any request bytes (client done).
    Closed,
    /// Unparseable request line or headers.
    Malformed(String),
    /// Request-line + header section exceeded [`MAX_HEADER_BYTES`] → `431`.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`MAX_BODY`] → `413`.
    BodyTooLarge(usize),
    /// The socket failed mid-request (includes read timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::Malformed(m) => write!(f, "malformed request: {m}"),
            RequestError::HeadersTooLarge => write!(f, "header section too large"),
            RequestError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes too large"),
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Headers in insertion order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Builds a response with a status.
    pub fn new(status: u16) -> Response {
        let reason = match status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            207 => "Multi-Status",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        Response {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Builder: adds a header.
    pub fn with_header(mut self, k: &str, v: &str) -> Response {
        self.headers.push((k.to_string(), v.to_string()));
        self
    }

    /// Builder: sets an XML body.
    pub fn with_xml(mut self, xml: &str) -> Response {
        self.headers
            .push(("Content-Type".into(), "text/xml; charset=utf-8".into()));
        self.body = xml.as_bytes().to_vec();
        self
    }

    /// Builder: sets a plain-text body.
    pub fn with_text(mut self, text: &str) -> Response {
        self.headers
            .push(("Content-Type".into(), "text/plain; charset=utf-8".into()));
        self.body = text.as_bytes().to_vec();
        self
    }

    /// Serializes onto the wire. `keep_alive` decides the `Connection:`
    /// header — pass the request's [`Request::wants_keep_alive`] so pooled
    /// client connections are actually reused.
    pub fn write_to<W: Write>(&self, stream: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        let mut has_len = false;
        for (k, v) in &self.headers {
            if k.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        if !has_len {
            head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        // One write for head+body: two writes would put them in separate
        // TCP segments, and on a keep-alive connection Nagle + delayed
        // ACK turns that into a ~40ms stall per response.
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&self.body);
        stream.write_all(&wire)?;
        stream.flush()
    }
}

/// Reads one CRLF/LF-terminated line, counting against the shared header
/// budget. Unlike `BufRead::read_line`, a peer streaming an endless line
/// is cut off at the budget instead of growing the buffer unboundedly.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    budget: &mut usize,
) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                break;
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(RequestError::HeadersTooLarge);
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(RequestError::Io(e)),
        }
    }
    while line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(Some(String::from_utf8_lossy(&line).into_owned()))
}

/// Reads one request from a buffered stream. Servers create **one**
/// [`BufReader`] per connection and call this in a loop: the reader's
/// buffer carries pipelined request bytes from one call to the next.
pub fn read_request_from<R: BufRead>(reader: &mut R) -> Result<Request, RequestError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line_limited(reader, &mut budget)? {
        None => return Err(RequestError::Closed),
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed(format!("no target in '{line}'")))?
        .to_string();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    let mut headers = BTreeMap::new();
    loop {
        let h = match read_line_limited(reader, &mut budget)? {
            None => break,
            Some(h) => h,
        };
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    let len: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(RequestError::BodyTooLarge(len));
    }
    let mut body = vec![0u8; len];
    if len > 0 {
        reader.read_exact(&mut body).map_err(RequestError::Io)?;
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Reads one request from the stream. `None` for a cleanly closed or
/// unparseable connection.
///
/// One-shot convenience: the internal read buffer is discarded, so
/// pipelined follow-up requests are lost. Persistent-connection servers
/// use [`read_request_from`] with a long-lived [`BufReader`].
pub fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    read_request_from(&mut reader).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str) -> Option<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            round_trip("GET /xdb?Context=Budget&limit=3 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/xdb");
        assert_eq!(req.query.as_deref(), Some("Context=Budget&limit=3"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.wants_keep_alive(), "HTTP/1.1 default is keep-alive");
    }

    #[test]
    fn parses_put_with_body() {
        let req = round_trip("PUT /docs/a.txt HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "PUT");
        assert_eq!(req.body_text(), "hello");
    }

    #[test]
    fn connection_close_header_honored() {
        let req = round_trip("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
        let req = round_trip("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn empty_connection_is_none() {
        assert!(round_trip("").is_none());
    }

    #[test]
    fn pipelined_requests_both_read() {
        // Two requests in one write: a per-connection reader must hand
        // back both (a fresh reader per request would drop buffered bytes).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
                .unwrap();
            s.flush().unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn);
        let a = read_request_from(&mut reader).unwrap();
        let b = read_request_from(&mut reader).unwrap();
        client.join().unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert!(matches!(
            read_request_from(&mut reader),
            Err(RequestError::Closed)
        ));
    }

    #[test]
    fn oversized_headers_rejected() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
        }
        raw.push_str("\r\n");
        let mut reader = BufReader::new(raw.as_bytes());
        assert!(matches!(
            read_request_from(&mut reader),
            Err(RequestError::HeadersTooLarge)
        ));
    }

    #[test]
    fn endless_request_line_rejected() {
        // No newline at all: the reader must stop at the budget rather
        // than buffer the whole stream.
        let raw = "G".repeat(MAX_HEADER_BYTES * 2);
        let mut reader = BufReader::new(raw.as_bytes());
        assert!(matches!(
            read_request_from(&mut reader),
            Err(RequestError::HeadersTooLarge)
        ));
    }

    #[test]
    fn oversized_body_rejected_without_allocating() {
        let raw = format!(
            "PUT /docs/x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            1 << 30
        );
        let mut reader = BufReader::new(raw.as_bytes());
        match read_request_from(&mut reader) {
            Err(RequestError::BodyTooLarge(n)) => assert_eq!(n, 1 << 30),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn response_serialization() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            Response::new(207)
                .with_header("DAV", "1")
                .with_xml("<multistatus/>")
                .write_to(&mut conn, false)
                .unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        server.join().unwrap();
        assert!(buf.starts_with("HTTP/1.1 207 Multi-Status\r\n"));
        assert!(buf.contains("DAV: 1"));
        assert!(buf.contains("Content-Length: 14"));
        assert!(buf.contains("Connection: close"));
        assert!(buf.ends_with("<multistatus/>"));
    }

    #[test]
    fn keep_alive_response_header() {
        let mut buf = Vec::new();
        Response::new(200)
            .with_text("ok")
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Connection: keep-alive"));
    }
}
