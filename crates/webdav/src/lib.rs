//! `netmark-webdav`: the access layer of the reproduction (paper §2.1.2,
//! Fig 3).
//!
//! Two pathways into NETMARK:
//! - **drop folder** → the [`daemon`] "periodically picks up these
//!   documents" and ingests them;
//! - **HTTP/WebDAV** → the [`server`] answers XDB query URLs
//!   (`GET /xdb?Context=…`), document uploads (`PUT /docs/<name>`),
//!   listings (`PROPFIND /docs`), and deletes.
//!
//! Both are built on std TCP only — no HTTP framework, in keeping with the
//! "lean" thesis.

#![warn(missing_docs)]

pub mod daemon;
pub mod http;
pub mod ingest;
pub mod server;

pub use daemon::{watch_folder, watch_folder_with, DaemonHandle, DaemonStats};
pub use http::{read_request, read_request_from, Request, RequestError, Response};
pub use ingest::IngestService;
pub use server::{
    handle, handle_with, respond_query, serve, serve_with, server_stats_node, HttpService,
    ServerHandle, StatsStamp,
};
// Front-end tuning/observability types, re-exported so deployments can
// configure `serve_with` without naming the netserve crate.
pub use netmark_netserve::{FrontendConfig, FrontendStats, FrontendStatsSnapshot};
