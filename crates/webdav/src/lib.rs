//! `netmark-webdav`: the access layer of the reproduction (paper §2.1.2,
//! Fig 3).
//!
//! Two pathways into NETMARK:
//! - **drop folder** → the [`daemon`] "periodically picks up these
//!   documents" and ingests them;
//! - **HTTP/WebDAV** → the [`server`] answers XDB query URLs
//!   (`GET /xdb?Context=…`), document uploads (`PUT /docs/<name>`),
//!   listings (`PROPFIND /docs`), and deletes.
//!
//! Both are built on std TCP only — no HTTP framework, in keeping with the
//! "lean" thesis.

#![warn(missing_docs)]

pub mod daemon;
pub mod http;
pub mod server;

pub use daemon::{watch_folder, DaemonHandle, DaemonStats};
pub use http::{read_request, Request, Response};
pub use server::{handle, serve, ServerHandle};
