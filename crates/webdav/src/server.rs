//! The NETMARK access server: XDB queries and WebDAV document management
//! over HTTP.
//!
//! "Clients and applications can access and query data through the
//! NETMARK Extensible APIs … in fact HTTP provides an extremely simple yet
//! powerful mechanism for users and clients to access NETMARK" (§2.1.2).
//!
//! Routes:
//! - `GET /xdb?Context=…&Content=…[&xslt=…]` — run an XDB query; returns
//!   the `<results>` XML, or the composed document when `xslt=` names a
//!   registered stylesheet.
//! - `GET /xdb/capabilities` — versioned capability advertisement for
//!   remote federation adapters.
//! - `PUT /docs/<name>` — upload (ingest) a document.
//! - `GET /docs/<name>` — fetch the stored (upmarked) document as XML.
//! - `DELETE /docs/<name>` — remove a document.
//! - `PROPFIND /docs` — WebDAV-style listing (207 multistatus).
//! - `OPTIONS *` — advertises the DAV class.
//! - `MKCOL /…` — accepted as a no-op (drop folders are flat).

use crate::http::{read_request_from, Request, RequestError, Response};
use crate::ingest::IngestService;
use netmark::{PipelineConfig, QueryOutput, XdbBackend};
use netmark_model::{escape_text, Node};
use netmark_netserve::{
    Frontend, FrontendConfig, FrontendHandle, FrontendStats, FrontendStatsSnapshot, ServeOutcome,
    Service,
};
use netmark_xdb::{url_decode, XdbQuery};
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The HTTP/1.1 binding of the front end's [`Service`] contract: one
/// request parsed off the connection's buffered reader (pipelined bytes
/// survive between calls), one response written honoring the client's
/// keep-alive preference. Oversized or malformed requests are answered
/// (`413`/`431`/`400`) and the connection closed; a read-budget expiry
/// mid-request surfaces as [`ServeOutcome::TimedOut`] so the front end
/// books the slow-loris kill.
///
/// Shared by the NETMARK server and the federation router server.
pub struct HttpService<F> {
    handler: F,
}

impl<F> HttpService<F>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    /// Wraps a request handler into a front-end service.
    pub fn new(handler: F) -> HttpService<F> {
        HttpService { handler }
    }
}

impl<F> Service for HttpService<F>
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn serve_one(&self, mut reader: &mut dyn BufRead, mut out: &mut dyn Write) -> ServeOutcome {
        match read_request_from(&mut reader) {
            Ok(req) => {
                let keep = req.wants_keep_alive();
                let resp = (self.handler)(&req);
                match resp.write_to(&mut out, keep) {
                    Ok(()) => ServeOutcome::Served { keep },
                    Err(_) => ServeOutcome::Fatal,
                }
            }
            Err(RequestError::BodyTooLarge(_)) => {
                let _ = Response::new(413)
                    .with_text("declared body exceeds server limit")
                    .write_to(&mut out, false);
                ServeOutcome::Fatal
            }
            Err(RequestError::HeadersTooLarge) => {
                let _ = Response::new(431)
                    .with_text("header section exceeds server limit")
                    .write_to(&mut out, false);
                ServeOutcome::Fatal
            }
            Err(RequestError::Malformed(m)) => {
                let _ = Response::new(400).with_text(&m).write_to(&mut out, false);
                ServeOutcome::Fatal
            }
            // Clean close between requests: client is done.
            Err(RequestError::Closed) => ServeOutcome::CleanClose,
            // The front end's read budget expired mid-request: the peer
            // trickled or stalled (slow-loris); report it as such.
            Err(RequestError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                ServeOutcome::TimedOut
            }
            Err(RequestError::Io(_)) => ServeOutcome::Fatal,
        }
    }

    fn shed_response(&self, retry_after: Duration) -> Vec<u8> {
        let mut wire = Vec::new();
        let _ = Response::new(429)
            .with_header("Retry-After", &retry_after.as_secs().max(1).to_string())
            .with_text("server at capacity; retry later")
            .write_to(&mut wire, false);
        wire
    }
}

/// Renders a front-end stats snapshot as the `<server/>` element served
/// under `GET /xdb/stats` (both here and on the federation router),
/// mirroring how `<index/>` and `<mvcc/>` surface the other subsystems.
pub fn server_stats_node(s: &FrontendStatsSnapshot) -> Node {
    Node::element("server")
        .with_attr("accepted", &s.accepted.to_string())
        .with_attr("requests", &s.requests.to_string())
        .with_attr("active", &s.active.to_string())
        .with_attr("queued", &s.queued.to_string())
        .with_attr("parked", &s.parked.to_string())
        .with_attr("shed", &s.sheds.to_string())
        .with_attr("client-rejects", &s.client_rejects.to_string())
        .with_attr("idle-reaped", &s.idle_reaped.to_string())
        .with_attr("read-timeouts", &s.read_timeouts.to_string())
        .with_attr("write-errors", &s.write_errors.to_string())
        .with_attr("deadline-overruns", &s.deadline_overruns.to_string())
        .with_attr("accept-errors", &s.accept_errors.to_string())
        .with_attr("panics", &s.panics.to_string())
}

/// Stamps the `GET /xdb/stats` root element with restart-detection
/// attributes: `uptime` (whole seconds since the server started) and
/// `stats-generation`, a counter that increments on every stats request.
/// A scraper that sees uptime or generation go backwards knows the
/// process restarted and its lifetime counters reset — without this,
/// counter resets are indistinguishable from idle periods.
///
/// Shared by the NETMARK server and the federation router server.
pub struct StatsStamp {
    started: Instant,
    generation: AtomicU64,
}

impl Default for StatsStamp {
    fn default() -> Self {
        StatsStamp::new()
    }
}

impl StatsStamp {
    /// Starts the uptime clock now, with generation 0.
    pub fn new() -> StatsStamp {
        StatsStamp {
            started: Instant::now(),
            generation: AtomicU64::new(0),
        }
    }

    /// Adds `uptime` and `stats-generation` to `node`, bumping the
    /// generation.
    pub fn stamp(&self, node: Node) -> Node {
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        node.with_attr("uptime", &self.started.elapsed().as_secs().to_string())
            .with_attr("stats-generation", &generation.to_string())
    }
}

/// A running server; dropping the handle stops it.
pub struct ServerHandle {
    frontend: FrontendHandle,
}

impl ServerHandle {
    /// Bound address (use for clients; port was chosen by the OS if you
    /// bound `:0`).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.frontend.addr()
    }

    /// Point-in-time front-end counters (also served as `<server/>`
    /// under `GET /xdb/stats`).
    pub fn server_stats(&self) -> FrontendStatsSnapshot {
        self.frontend.stats().snapshot()
    }

    /// Stops the front end — accept loop, workers, poller, and every
    /// live connection — and joins its threads.
    pub fn stop(self) {
        self.frontend.stop();
    }
}

/// Starts the server on `bind` (e.g. `"127.0.0.1:0"`), serving `nm`,
/// with the default [`FrontendConfig`].
///
/// Uploads (`PUT /docs/<name>`) go through a shared [`IngestService`]:
/// concurrent PUTs are batched into shared store transactions by one
/// background writer, with backpressure from its bounded work queue.
pub fn serve(nm: Arc<dyn XdbBackend>, bind: &str) -> std::io::Result<ServerHandle> {
    serve_with(nm, bind, FrontendConfig::default())
}

/// [`serve`] with explicit front-end tuning (worker count, queue depth,
/// admission caps, idle/read budgets — see [`FrontendConfig`]).
pub fn serve_with(
    nm: Arc<dyn XdbBackend>,
    bind: &str,
    cfg: FrontendConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let ingest = Arc::new(IngestService::start(
        Arc::clone(&nm),
        PipelineConfig::default(),
    ));
    let stats = FrontendStats::shared();
    let stats_for_handler = Arc::clone(&stats);
    let stamp = StatsStamp::new();
    let service = HttpService::new(move |req: &Request| {
        // The stats route is answered here rather than in `handle_with`
        // because only the server (not the bare handler) has a front end
        // whose counters belong in the document and an uptime clock.
        if req.method == "GET" && req.path == "/xdb/stats" {
            let node = stamp.stamp(
                stats_node(&*nm).with_child(server_stats_node(&stats_for_handler.snapshot())),
            );
            return Response::new(200).with_xml(&node.to_xml());
        }
        handle_with(&*nm, Some(&ingest), req)
    });
    let frontend = Frontend::start(listener, service, cfg, stats)?;
    Ok(ServerHandle { frontend })
}

fn doc_name(path: &str) -> Option<String> {
    path.strip_prefix("/docs/")
        .filter(|n| !n.is_empty() && !n.contains("..") && !n.contains('/'))
        .map(url_decode)
}

/// Dispatches one request with direct (unbatched) ingestion on PUT.
/// Exposed for in-process tests; the server routes through
/// [`handle_with`] and a shared [`IngestService`].
pub fn handle(nm: &dyn XdbBackend, req: &Request) -> Response {
    handle_with(nm, None, req)
}

/// Dispatches one request. When `ingest` is given, PUT uploads are queued
/// onto the shared batching service; otherwise they commit directly.
pub fn handle_with(nm: &dyn XdbBackend, ingest: Option<&IngestService>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("OPTIONS", _) => Response::new(200)
            .with_header("DAV", "1")
            .with_header("Allow", "OPTIONS, GET, PUT, DELETE, PROPFIND, MKCOL"),
        ("GET", "/xdb") => handle_query(nm, req),
        // Capability negotiation for remote federation adapters: the
        // backend says what it evaluates natively (a full NETMARK answers
        // everything, ranked search included).
        ("GET", "/xdb/capabilities") => Response::new(200).with_xml(&nm.capabilities().to_xml()),
        // Read-path observability: cache hit rate and per-stage timings.
        ("GET", "/xdb/stats") => Response::new(200).with_xml(&stats_node(nm).to_xml()),
        ("PROPFIND", "/docs") | ("PROPFIND", "/docs/") => handle_propfind(nm),
        ("MKCOL", _) => Response::new(201),
        ("PUT", _) => match doc_name(&req.path) {
            Some(name) => {
                let outcome = match ingest {
                    Some(svc) => svc.submit(&name, &req.body_text()),
                    None => nm
                        .insert_file(&name, &req.body_text())
                        .map_err(|e| e.to_string()),
                };
                match outcome {
                    Ok(rep) => Response::new(201).with_text(&format!(
                        "ingested doc #{} ({} nodes)",
                        rep.doc_id, rep.node_count
                    )),
                    Err(e) => Response::new(500).with_text(&e),
                }
            }
            None => Response::new(400).with_text("PUT requires /docs/<name>"),
        },
        ("GET", _) => match doc_name(&req.path) {
            Some(name) => match nm.reconstruct_named(&name) {
                Ok(Some(doc)) => Response::new(200).with_xml(&doc.root.to_pretty_xml()),
                Ok(None) => Response::new(404).with_text("no such document"),
                Err(e) => Response::new(500).with_text(&e.to_string()),
            },
            None => Response::new(404).with_text("not found"),
        },
        ("DELETE", _) => match doc_name(&req.path) {
            Some(name) => match nm.remove_named(&name) {
                Ok(true) => Response::new(204),
                Ok(false) => Response::new(404).with_text("no such document"),
                Err(e) => Response::new(500).with_text(&e.to_string()),
            },
            None => Response::new(400).with_text("DELETE requires /docs/<name>"),
        },
        _ => Response::new(405).with_text("method not allowed"),
    }
}

fn handle_query(nm: &dyn XdbBackend, req: &Request) -> Response {
    let qs = req.query.as_deref().unwrap_or("");
    match XdbQuery::from_url(qs) {
        Ok(q) => respond_query(nm, &q),
        Err(e) => Response::new(400).with_text(&format!("bad xdb query: {e}")),
    }
}

/// Executes an already-parsed XDB query through the engine and renders the
/// HTTP answer. The one query code path for every server: the local XDB
/// route above and the federation server's no-databank fall-through both
/// land here, so parsing, capability semantics, and limit handling cannot
/// drift between them.
pub fn respond_query(nm: &dyn XdbBackend, q: &XdbQuery) -> Response {
    match nm.run(q) {
        Ok(QueryOutput::Results(rs)) => Response::new(200).with_xml(&rs.to_xml()),
        Ok(QueryOutput::Composed(node)) => Response::new(200).with_xml(&node.to_pretty_xml()),
        Err(e) => Response::new(400).with_text(&e.to_string()),
    }
}

/// The `<stats>` document served at `GET /xdb/stats`. The children come
/// from the backend ([`XdbBackend::stats_children`]): `<query/>`,
/// `<index/>`, `<mvcc/>` for a single store, plus `<shards/>` under
/// sharded mode.
fn stats_node(nm: &dyn XdbBackend) -> Node {
    let q = nm.query_stats();
    let mut node = Node::element("stats")
        .with_attr("cache-hit-rate", &format!("{:.3}", q.cache_hit_rate()))
        .with_attr("mean-latency-us", &q.mean_latency().as_micros().to_string());
    for child in nm.stats_children() {
        node = node.with_child(child);
    }
    node
}

fn handle_propfind(nm: &dyn XdbBackend) -> Response {
    let docs = match nm.list_documents() {
        Ok(d) => d,
        Err(e) => return Response::new(500).with_text(&e.to_string()),
    };
    let mut xml = String::from("<multistatus>");
    for d in docs {
        xml.push_str(&format!(
            "<response><href>/docs/{}</href><propstat><prop>\
             <displayname>{}</displayname>\
             <getcontentlength>{}</getcontentlength>\
             <format>{}</format>\
             </prop></propstat></response>",
            escape_text(&d.file_name),
            escape_text(&d.file_name),
            d.file_size,
            escape_text(&d.format),
        ));
    }
    xml.push_str("</multistatus>");
    Response::new(207).with_header("DAV", "1").with_xml(&xml)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark::NetMark;
    use std::collections::BTreeMap;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::path::PathBuf;

    fn temp_nm(tag: &str) -> (Arc<NetMark>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-dav-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (Arc::new(NetMark::open(&dir).unwrap()), dir)
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        s.flush().unwrap();
        // Half-close: the keep-alive server sees EOF after this request
        // and closes its side, unblocking read_to_string.
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn full_http_round_trip() {
        let (nm, dir) = temp_nm("rt");
        let h = serve(nm, "127.0.0.1:0").unwrap();
        let addr = h.addr();

        // PUT a document.
        let body = "# Budget\ntwo million\n";
        let resp = request(
            addr,
            &format!(
                "PUT /docs/plan.txt HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");

        // Query it over the XDB URL.
        let resp = request(addr, "GET /xdb?Context=Budget HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("two million"));

        // PROPFIND listing.
        let resp = request(addr, "PROPFIND /docs HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 207"), "{resp}");
        assert!(resp.contains("plan.txt"));

        // GET the stored document.
        let resp = request(addr, "GET /docs/plan.txt HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("<Context"));

        // DELETE then 404.
        let resp = request(addr, "DELETE /docs/plan.txt HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 204"), "{resp}");
        let resp = request(addr, "GET /docs/plan.txt HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");

        h.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn handler_unit_paths() {
        let (nm, dir) = temp_nm("unit");
        nm.insert_file("a.txt", "# S\nbody\n").unwrap();
        let mk = |method: &str, path: &str, query: Option<&str>| Request {
            method: method.into(),
            path: path.into(),
            query: query.map(String::from),
            headers: BTreeMap::new(),
            body: Vec::new(),
        };
        assert_eq!(handle(&*nm, &mk("OPTIONS", "/", None)).status, 200);
        assert_eq!(handle(&*nm, &mk("MKCOL", "/docs", None)).status, 201);
        assert_eq!(handle(&*nm, &mk("PATCH", "/docs", None)).status, 405);
        assert_eq!(
            handle(&*nm, &mk("GET", "/xdb", Some("bogus"))).status,
            400,
            "malformed query reports 400"
        );
        assert_eq!(
            handle(&*nm, &mk("GET", "/docs/../etc/passwd", None)).status,
            404,
            "path traversal rejected"
        );
        assert_eq!(handle(&*nm, &mk("PUT", "/docs/", None)).status, 400);
        assert_eq!(
            handle(&*nm, &mk("DELETE", "/docs/none.txt", None)).status,
            404
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_endpoint_reports_cache_and_stages() {
        let (nm, dir) = temp_nm("stats");
        nm.insert_file("a.txt", "# Budget\ntwo million\n").unwrap();
        let h = serve(nm.clone(), "127.0.0.1:0").unwrap();
        // Same query twice: the second must be a cache hit.
        for _ in 0..2 {
            let resp = request(h.addr(), "GET /xdb?Context=Budget HTTP/1.1\r\n\r\n");
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        }
        let resp = request(h.addr(), "GET /xdb/stats HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("<stats"), "{resp}");
        assert!(resp.contains("cache-hits=\"1\""), "{resp}");
        assert!(resp.contains("cache-misses=\"1\""), "{resp}");
        assert!(resp.contains("collect-us="), "{resp}");
        assert!(resp.contains("<mvcc"), "{resp}");
        assert!(resp.contains("live-views=\"0\""), "{resp}");
        // Restart detection: first scrape of this process is generation 1.
        assert!(resp.contains("uptime="), "{resp}");
        assert!(resp.contains("stats-generation=\"1\""), "{resp}");
        let resp = request(h.addr(), "GET /xdb/stats HTTP/1.1\r\n\r\n");
        assert!(resp.contains("stats-generation=\"2\""), "{resp}");
        h.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_query_parameters_get_typed_400s() {
        let (nm, dir) = temp_nm("badq");
        let mk = |query: &str| Request {
            method: "GET".into(),
            path: "/xdb".into(),
            query: Some(query.to_string()),
            headers: BTreeMap::new(),
            body: Vec::new(),
        };
        for (qs, needle) in [
            ("Context=", "empty value"),
            ("Context=A&Context=B", "duplicate"),
            ("limit=abc", "limit"),
            ("bogus=1", "unknown query key"),
        ] {
            let resp = handle(&*nm, &mk(qs));
            assert_eq!(resp.status, 400, "{qs}");
            let body = String::from_utf8_lossy(&resp.body).into_owned();
            assert!(body.contains(needle), "{qs} → {body}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn xslt_composition_over_http() {
        let (nm, dir) = temp_nm("xslt");
        nm.insert_file("a.txt", "# Budget\nmoney\n").unwrap();
        nm.register_stylesheet(
            "wrap",
            "<xsl:stylesheet><xsl:template match=\"/\"><composed><xsl:value-of select=\"//Content\"/></composed></xsl:template></xsl:stylesheet>",
        )
        .unwrap();
        let h = serve(nm, "127.0.0.1:0").unwrap();
        let resp = request(
            h.addr(),
            "GET /xdb?Context=Budget&xslt=wrap HTTP/1.1\r\n\r\n",
        );
        assert!(resp.contains("<composed>money</composed>"), "{resp}");
        h.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod encoding_tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn percent_encoded_document_names() {
        let dir = std::env::temp_dir().join(format!("netmark-dav-enc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = Arc::new(netmark::NetMark::open(&dir).unwrap());
        let h = serve(nm.clone(), "127.0.0.1:0").unwrap();
        let body = "# Budget\nmoney\n";
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(
            format!(
                "PUT /docs/my%20plan.txt HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .as_bytes(),
        )
        .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
        assert!(nm.document_by_name("my plan.txt").unwrap().is_some());
        // Fetch with the encoded name.
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /docs/my%20plan.txt HTTP/1.1\r\n\r\n")
            .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        h.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_content_length_gets_413() {
        let dir = std::env::temp_dir().join(format!("netmark-dav-big-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = Arc::new(netmark::NetMark::open(&dir).unwrap());
        let h = serve(nm.clone(), "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Claim a 1 GiB body; the parser must refuse rather than allocate.
        s.write_all(b"PUT /docs/x.txt HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        let _ = s.read_to_string(&mut resp);
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        assert!(nm.list_documents().unwrap().is_empty());
        h.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_headers_get_431() {
        let dir = std::env::temp_dir().join(format!("netmark-dav-hdr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = Arc::new(netmark::NetMark::open(&dir).unwrap());
        let h = serve(nm.clone(), "127.0.0.1:0").unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"GET /xdb?Context=x HTTP/1.1\r\n").unwrap();
        let pad = format!("X-Pad: {}\r\n", "y".repeat(8 << 10));
        for _ in 0..16 {
            if s.write_all(pad.as_bytes()).is_err() {
                break; // server may slam the door before we finish
            }
        }
        let _ = s.write_all(b"\r\n");
        let mut resp = String::new();
        let _ = s.read_to_string(&mut resp);
        assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");
        h.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let dir = std::env::temp_dir().join(format!("netmark-dav-ka-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = Arc::new(netmark::NetMark::open(&dir).unwrap());
        nm.insert_file("a.txt", "# Budget\nmoney\n").unwrap();
        let h = serve(nm.clone(), "127.0.0.1:0").unwrap();

        let mut s = TcpStream::connect(h.addr()).unwrap();
        let read_one = |s: &mut TcpStream| {
            // Parse exactly one response off the stream by Content-Length.
            use std::io::{BufRead, BufReader, Read};
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut head = String::new();
            let mut len = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().unwrap();
                }
                let done = line == "\r\n" || line == "\n";
                head.push_str(&line);
                if done {
                    break;
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            (head, String::from_utf8_lossy(&body).into_owned())
        };

        s.write_all(b"GET /xdb?Context=Budget HTTP/1.1\r\n\r\n")
            .unwrap();
        let (head, body) = read_one(&mut s);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.to_ascii_lowercase().contains("connection: keep-alive"));
        assert!(body.contains("money"));

        // Same socket, second request.
        s.write_all(b"GET /xdb/capabilities HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (head, body) = read_one(&mut s);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.to_ascii_lowercase().contains("connection: close"));
        assert!(body.contains("capabilities"));
        assert!(body.contains("version=\"2\""));
        assert!(body.contains("ranked=\"true\""));

        h.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
