//! `.pdoc` upmarker — the simulated PDF format.
//!
//! PDFs carry no logical structure; extractors recover it from *layout*:
//! font sizes, positions, page breaks. `.pdoc` (the DESIGN.md substitution
//! for real PDF) is a span list exposing exactly those cues:
//!
//! ```text
//! PAGE 1
//! SPAN 72 720 18 bold | Anomaly Report AR-2005-113
//! SPAN 72 690 11 regular | During ascent the engine controller ...
//! SPAN 72 650 14 bold | Corrective Action
//! ```
//!
//! `SPAN x y size style | text`. Heading detection mirrors real PDF
//! upmarking: a span is a context when its font size is at least 1.25× the
//! body size (the median span size), or when it is `bold` and short.
//! Heading levels are assigned by descending distinct heading sizes.

use crate::canonical::UpmarkBuilder;
use netmark_model::{Document, Node};

#[derive(Debug, Clone)]
struct Span {
    size: f64,
    bold: bool,
    text: String,
}

#[derive(Debug, Clone)]
enum Item {
    Page(u32),
    Span(Span),
}

fn parse_line(line: &str) -> Option<Item> {
    let t = line.trim();
    if t.is_empty() {
        return None;
    }
    if let Some(rest) = t.strip_prefix("PAGE") {
        return rest.trim().parse::<u32>().ok().map(Item::Page);
    }
    let rest = t.strip_prefix("SPAN")?;
    let (head, text) = rest.split_once('|')?;
    let fields: Vec<&str> = head.split_whitespace().collect();
    if fields.len() < 4 {
        return None;
    }
    let size: f64 = fields[2].parse().ok()?;
    let bold = fields[3].eq_ignore_ascii_case("bold");
    Some(Item::Span(Span {
        size,
        bold,
        text: text.trim().to_string(),
    }))
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

/// Upmarks a `.pdoc` file.
pub fn parse_pdoc(name: &str, content: &str) -> Document {
    let items: Vec<Item> = content.lines().filter_map(parse_line).collect();
    let mut sizes: Vec<f64> = items
        .iter()
        .filter_map(|i| match i {
            Item::Span(s) => Some(s.size),
            _ => None,
        })
        .collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let body_size = median(&sizes);

    let is_heading = |s: &Span| -> bool {
        if body_size <= 0.0 {
            return false;
        }
        s.size >= body_size * 1.25 || (s.bold && s.text.len() <= 60 && s.size >= body_size)
    };

    // Distinct heading sizes, descending → levels 1, 2, 3…
    let mut heading_sizes: Vec<f64> = items
        .iter()
        .filter_map(|i| match i {
            Item::Span(s) if is_heading(s) => Some(s.size),
            _ => None,
        })
        .collect();
    heading_sizes.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    heading_sizes.dedup_by(|a, b| (*a - *b).abs() < 0.01);
    let level_of = |size: f64| -> u32 {
        heading_sizes
            .iter()
            .position(|&s| (s - size).abs() < 0.01)
            .map(|p| p as u32 + 1)
            .unwrap_or(1)
    };

    let mut b = UpmarkBuilder::new(name, "pdoc");
    let mut para = String::new();
    for item in &items {
        match item {
            Item::Page(n) => {
                if !para.trim().is_empty() {
                    b.paragraph(&para);
                    para.clear();
                }
                b.node(Node::simulation("page-break").with_attr("page", &n.to_string()));
            }
            Item::Span(s) => {
                if is_heading(s) {
                    if !para.trim().is_empty() {
                        b.paragraph(&para);
                        para.clear();
                    }
                    b.context(&s.text, level_of(s.size));
                } else {
                    if !para.is_empty() {
                        para.push(' ');
                    }
                    para.push_str(&s.text);
                    if s.text.ends_with('.') {
                        b.paragraph(&para);
                        para.clear();
                    }
                }
            }
        }
    }
    if !para.trim().is_empty() {
        b.paragraph(&para);
    }
    b.finish().with_source_size(content.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "PAGE 1\n\
SPAN 72 720 18 bold | Anomaly Report AR-113\n\
SPAN 72 690 11 regular | During ascent the controller faulted.\n\
SPAN 72 660 14 bold | Corrective Action\n\
SPAN 72 630 11 regular | Replace the harness\n\
SPAN 72 610 11 regular | before next flight.\n\
PAGE 2\n\
SPAN 72 720 14 bold | Disposition\n\
SPAN 72 690 11 regular | Closed.\n";

    #[test]
    fn size_based_contexts() {
        let d = parse_pdoc("a.pdoc", SAMPLE);
        let labels: Vec<String> = d
            .context_content_pairs()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(
            labels,
            vec!["Anomaly Report AR-113", "Corrective Action", "Disposition"]
        );
    }

    #[test]
    fn heading_levels_follow_sizes() {
        let d = parse_pdoc("a.pdoc", SAMPLE);
        let ctxs = d.root.find_all("Context");
        assert_eq!(ctxs[0].attr("level"), Some("1"), "18pt is level 1");
        assert_eq!(ctxs[1].attr("level"), Some("2"), "14pt is level 2");
    }

    #[test]
    fn spans_join_until_sentence_end() {
        let d = parse_pdoc("a.pdoc", SAMPLE);
        let pairs = d.context_content_pairs();
        assert_eq!(pairs[1].1, "Replace the harness before next flight.");
    }

    #[test]
    fn page_breaks_recorded() {
        let d = parse_pdoc("a.pdoc", SAMPLE);
        let breaks = d.root.find_all("page-break");
        assert_eq!(breaks.len(), 2);
        assert_eq!(breaks[1].attr("page"), Some("2"));
    }

    #[test]
    fn malformed_lines_skipped() {
        let d = parse_pdoc(
            "m.pdoc",
            "SPAN garbage\nnot a span\nSPAN 1 2 11 regular | ok.\n",
        );
        let pairs = d.context_content_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1, "ok.");
    }

    #[test]
    fn empty_input() {
        let d = parse_pdoc("e.pdoc", "");
        assert!(d.context_content_pairs().is_empty());
    }

    #[test]
    fn uniform_size_no_headings() {
        let src = "SPAN 0 0 11 regular | a.\nSPAN 0 0 11 regular | b.\n";
        let d = parse_pdoc("u.pdoc", src);
        let pairs = d.context_content_pairs();
        assert_eq!(pairs[0].0, "Body");
    }
}
