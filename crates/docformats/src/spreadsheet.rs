//! CSV spreadsheet upmarker.
//!
//! "The data in any source could range from a few tables that could well be
//! stored in a spreadsheet ..." (paper §1). A CSV sheet upmarks into one
//! context (the sheet name) whose content is a table of records: the first
//! row supplies column names, and each subsequent row becomes a `row`
//! element with one child element per column — giving spreadsheet data the
//! same queryable shape as document sections without declaring any schema.

use crate::canonical::UpmarkBuilder;
use netmark_model::{Document, Node};

/// Minimal RFC-4180-ish CSV field splitter (quotes, embedded commas,
/// doubled quotes).
pub fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Sanitizes a header cell into an element name.
fn element_name(header: &str, index: usize) -> String {
    let mut name: String = header
        .trim()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    while name.contains("__") {
        name = name.replace("__", "_");
    }
    let name = name.trim_matches('_').to_string();
    if name.is_empty()
        || !name
            .chars()
            .next()
            .map(char::is_alphabetic)
            .unwrap_or(false)
    {
        format!("col{}", index + 1)
    } else {
        name
    }
}

/// Upmarks a CSV file. The sheet name (file stem) becomes the context.
pub fn parse_csv(name: &str, content: &str) -> Document {
    let sheet = name
        .rsplit('/')
        .next()
        .unwrap_or(name)
        .rsplit_once('.')
        .map(|(stem, _)| stem)
        .unwrap_or(name);
    let mut b = UpmarkBuilder::new(name, "csv");
    let mut lines = content.lines().filter(|l| !l.trim().is_empty());
    let Some(header_line) = lines.next() else {
        return b.finish();
    };
    b.context(sheet, 1);
    let headers: Vec<String> = split_csv_line(header_line)
        .iter()
        .enumerate()
        .map(|(i, h)| element_name(h, i))
        .collect();
    let mut table = Node::element("table").with_attr("sheet", sheet);
    for line in lines {
        let cells = split_csv_line(line);
        let mut row = Node::element("row");
        for (i, cell) in cells.iter().enumerate() {
            let col = headers
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("col{}", i + 1));
            let mut el = Node::element(&col);
            if !cell.trim().is_empty() {
                el.children.push(Node::text(cell.trim()));
            }
            row.children.push(el);
        }
        table.children.push(row);
    }
    b.node(table);
    b.finish().with_source_size(content.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Proposal Number,Division,Amount Requested\n\
P-001,Aeronautics,\"1,200,000\"\n\
P-002,Space Science,800000\n";

    #[test]
    fn header_row_names_columns() {
        let d = parse_csv("proposals.csv", SAMPLE);
        let rows = d.root.find_all("row");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].children[0].name, "Proposal_Number");
        assert_eq!(rows[0].children[2].name, "Amount_Requested");
        assert_eq!(rows[0].children[2].text_content(), "1,200,000");
    }

    #[test]
    fn sheet_name_is_context() {
        let d = parse_csv("data/proposals.csv", SAMPLE);
        assert_eq!(d.context_content_pairs()[0].0, "proposals");
        assert_eq!(
            d.root.find("table").unwrap().attr("sheet"),
            Some("proposals")
        );
    }

    #[test]
    fn quoted_fields_and_doubled_quotes() {
        let fields = split_csv_line(r#"a,"b,c","d""e",f"#);
        assert_eq!(fields, vec!["a", "b,c", "d\"e", "f"]);
    }

    #[test]
    fn ragged_rows_get_generic_columns() {
        let d = parse_csv("r.csv", "a,b\n1,2,3\n");
        let row = &d.root.find_all("row")[0];
        assert_eq!(row.children.len(), 3);
        assert_eq!(row.children[2].name, "col3");
    }

    #[test]
    fn weird_headers_sanitized() {
        let d = parse_csv("w.csv", "Amount ($),%%,123\nx,y,z\n");
        let row = &d.root.find_all("row")[0];
        assert_eq!(row.children[0].name, "Amount");
        assert_eq!(row.children[1].name, "col2");
        assert_eq!(row.children[2].name, "col3");
    }

    #[test]
    fn empty_file() {
        let d = parse_csv("e.csv", "");
        assert!(d.context_content_pairs().is_empty());
    }

    #[test]
    fn empty_cells_are_empty_elements() {
        let d = parse_csv("c.csv", "a,b\n1,\n");
        let row = &d.root.find_all("row")[0];
        assert_eq!(row.children[1].text_content(), "");
    }
}
