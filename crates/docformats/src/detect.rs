//! Format detection and the one-call upmark entry point.
//!
//! "Users insert new documents (in any format such as Word, PDF, HTML, XML
//! or others) into NETMARK by simply dragging the documents into a desktop
//! folder" (paper §2.1.2) — so the daemon must decide per file how to
//! upmark it. Extension first, content sniffing as fallback.

use crate::{
    parse_csv, parse_html_doc, parse_pdoc, parse_plaintext, parse_sdoc, parse_wdoc, parse_xml_doc,
};
use netmark_model::Document;

/// Source formats the upmarkers understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Plain text (Markdown-ish cues).
    Text,
    /// HTML page.
    Html,
    /// Already-structured XML.
    Xml,
    /// Simulated word-processor document (`.wdoc`).
    Wdoc,
    /// Simulated PDF span list (`.pdoc`).
    Pdoc,
    /// Simulated slide deck (`.sdoc`).
    Sdoc,
    /// CSV spreadsheet.
    Csv,
}

impl Format {
    /// Short lowercase tag (matches [`Document::format`]).
    pub fn tag(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Html => "html",
            Format::Xml => "xml",
            Format::Wdoc => "wdoc",
            Format::Pdoc => "pdoc",
            Format::Sdoc => "sdoc",
            Format::Csv => "csv",
        }
    }
}

fn by_extension(name: &str) -> Option<Format> {
    let ext = name.rsplit('.').next()?.to_ascii_lowercase();
    Some(match ext.as_str() {
        "txt" | "md" | "text" => Format::Text,
        "html" | "htm" => Format::Html,
        "xml" => Format::Xml,
        "wdoc" | "doc" | "docx" => Format::Wdoc,
        "pdoc" | "pdf" => Format::Pdoc,
        "sdoc" | "ppt" | "pptx" => Format::Sdoc,
        "csv" | "xls" | "xlsx" => Format::Csv,
        _ => return None,
    })
}

fn sniff(content: &str) -> Format {
    let head: String = content
        .chars()
        .take(512)
        .collect::<String>()
        .to_ascii_lowercase();
    let trimmed = head.trim_start();
    if trimmed.starts_with("<?xml") {
        return Format::Xml;
    }
    if trimmed.starts_with("<!doctype html")
        || trimmed.contains("<html")
        || trimmed.contains("<body")
    {
        return Format::Html;
    }
    if trimmed.starts_with('<') && !trimmed.starts_with("<<") {
        // Generic markup: try XML (it degrades to text on failure).
        return Format::Xml;
    }
    if trimmed.starts_with("<<") {
        return Format::Wdoc;
    }
    if trimmed.starts_with("span ") || trimmed.starts_with("page ") {
        return Format::Pdoc;
    }
    if trimmed.starts_with("=== slide:") {
        return Format::Sdoc;
    }
    // CSV: first two lines have the same comma count (> 0).
    let mut lines = content.lines().filter(|l| !l.trim().is_empty());
    if let (Some(a), Some(b)) = (lines.next(), lines.next()) {
        let ca = a.matches(',').count();
        if ca > 0 && ca == b.matches(',').count() {
            return Format::Csv;
        }
    }
    Format::Text
}

/// Decides a document's format from its name and contents.
pub fn detect_format(name: &str, content: &str) -> Format {
    by_extension(name).unwrap_or_else(|| sniff(content))
}

/// The one-call ingestion front end: detect, then upmark.
pub fn upmark(name: &str, content: &str) -> Document {
    upmark_as(name, content, detect_format(name, content))
}

/// Upmarks with an explicit format.
pub fn upmark_as(name: &str, content: &str, format: Format) -> Document {
    match format {
        Format::Text => parse_plaintext(name, content),
        Format::Html => parse_html_doc(name, content),
        Format::Xml => parse_xml_doc(name, content),
        Format::Wdoc => parse_wdoc(name, content),
        Format::Pdoc => parse_pdoc(name, content),
        Format::Sdoc => parse_sdoc(name, content),
        Format::Csv => parse_csv(name, content),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_wins() {
        assert_eq!(detect_format("a.wdoc", ""), Format::Wdoc);
        assert_eq!(detect_format("a.html", ""), Format::Html);
        assert_eq!(detect_format("a.csv", ""), Format::Csv);
        assert_eq!(detect_format("report.pdf", ""), Format::Pdoc);
        assert_eq!(detect_format("deck.pptx", ""), Format::Sdoc);
        assert_eq!(detect_format("memo.docx", ""), Format::Wdoc);
    }

    #[test]
    fn sniffing_without_extension() {
        assert_eq!(
            detect_format("noext", "<?xml version='1.0'?><a/>"),
            Format::Xml
        );
        assert_eq!(detect_format("noext", "<html><body>x"), Format::Html);
        assert_eq!(detect_format("noext", "<<Heading1>> T"), Format::Wdoc);
        assert_eq!(detect_format("noext", "SPAN 0 0 12 bold | t"), Format::Pdoc);
        assert_eq!(detect_format("noext", "=== Slide: T ==="), Format::Sdoc);
        assert_eq!(detect_format("noext", "a,b,c\n1,2,3\n"), Format::Csv);
        assert_eq!(detect_format("noext", "plain prose here"), Format::Text);
    }

    #[test]
    fn upmark_dispatches() {
        let d = upmark("x.wdoc", "<<Heading1>> Budget\n<<Normal>> money\n");
        assert_eq!(d.format, "wdoc");
        assert_eq!(d.context_content_pairs()[0].0, "Budget");

        let d = upmark("x.csv", "a,b\n1,2\n");
        assert_eq!(d.format, "csv");

        let d = upmark("unknown.bin", "free text with no cues at all");
        assert_eq!(d.format, "text");
    }

    #[test]
    fn tags_round_trip() {
        for f in [
            Format::Text,
            Format::Html,
            Format::Xml,
            Format::Wdoc,
            Format::Pdoc,
            Format::Sdoc,
            Format::Csv,
        ] {
            assert!(!f.tag().is_empty());
        }
    }
}
