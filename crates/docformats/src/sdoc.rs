//! `.sdoc` upmarker — the simulated presentation (slide deck) format.
//!
//! The DESIGN.md substitution for PowerPoint. Slide titles carry the
//! structure; bullets are content:
//!
//! ```text
//! === Slide: FY05 Budget Overview ===
//! - Total request: $2.4M
//! - Breakdown by year
//!   - 2005: $800K
//! Speaker notes are free text.
//! ```

use crate::canonical::{parse_inline_runs, UpmarkBuilder};
use netmark_model::{Document, Node};

fn slide_title(line: &str) -> Option<&str> {
    let t = line.trim();
    let rest = t.strip_prefix("===")?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("Slide:")
        .or_else(|| rest.strip_prefix("slide:"))?;
    let rest = rest.trim();
    Some(rest.strip_suffix("===").map(str::trim_end).unwrap_or(rest))
}

fn bullet(line: &str) -> Option<(u32, &str)> {
    let stripped = line.trim_start();
    let indent = line.len() - stripped.len();
    let text = stripped
        .strip_prefix("- ")
        .or_else(|| stripped.strip_prefix("* "))?;
    Some(((indent / 2) as u32 + 1, text.trim()))
}

/// Upmarks an `.sdoc` slide deck. Each slide title opens a context; bullets
/// become a nested list; free lines become notes paragraphs.
pub fn parse_sdoc(name: &str, content: &str) -> Document {
    let mut b = UpmarkBuilder::new(name, "sdoc");
    let mut bullets: Vec<Node> = Vec::new();
    let mut slide_no = 0u32;

    let flush_bullets = |b: &mut UpmarkBuilder, bullets: &mut Vec<Node>| {
        if bullets.is_empty() {
            return;
        }
        let mut list = Node::element("list");
        list.children = std::mem::take(bullets);
        b.node(list);
    };

    for line in content.lines() {
        if let Some(title) = slide_title(line) {
            flush_bullets(&mut b, &mut bullets);
            slide_no += 1;
            b.context(title, 1);
            b.node(Node::simulation("slide-marker").with_attr("number", &slide_no.to_string()));
            continue;
        }
        if let Some((depth, text)) = bullet(line) {
            let mut item = Node::element("item").with_attr("depth", &depth.to_string());
            item.children = parse_inline_runs(text);
            bullets.push(item);
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        flush_bullets(&mut b, &mut bullets);
        let mut notes = Node::element("notes");
        notes.children = parse_inline_runs(line.trim());
        b.node(notes);
    }
    flush_bullets(&mut b, &mut bullets);
    b.finish().with_source_size(content.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "=== Slide: FY05 Budget ===\n",
        "- Total request: **$2.4M**\n",
        "- Breakdown\n",
        "  - 2005: $800K\n",
        "note for the speaker\n",
        "=== Slide: Risks ===\n",
        "- schedule slip\n",
    );

    #[test]
    fn slides_become_contexts() {
        let d = parse_sdoc("s.sdoc", SAMPLE);
        let labels: Vec<String> = d
            .context_content_pairs()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(labels, vec!["FY05 Budget", "Risks"]);
    }

    #[test]
    fn bullets_nest_by_indent() {
        let d = parse_sdoc("s.sdoc", SAMPLE);
        let items = d.root.find_all("item");
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].attr("depth"), Some("1"));
        assert_eq!(items[2].attr("depth"), Some("2"));
    }

    #[test]
    fn notes_and_bold() {
        let d = parse_sdoc("s.sdoc", SAMPLE);
        assert_eq!(
            d.root.find("notes").unwrap().text_content(),
            "note for the speaker"
        );
        assert_eq!(d.root.find("b").unwrap().text_content(), "$2.4M");
    }

    #[test]
    fn slide_markers_numbered() {
        let d = parse_sdoc("s.sdoc", SAMPLE);
        let markers = d.root.find_all("slide-marker");
        assert_eq!(markers.len(), 2);
        assert_eq!(markers[1].attr("number"), Some("2"));
    }

    #[test]
    fn title_without_closing_fence() {
        let d = parse_sdoc("t.sdoc", "=== Slide: Open Ended\n- x\n");
        assert_eq!(d.context_content_pairs()[0].0, "Open Ended");
    }

    #[test]
    fn content_before_first_slide_is_body() {
        let d = parse_sdoc("b.sdoc", "- stray bullet\n=== Slide: One ===\n");
        assert_eq!(d.context_content_pairs()[0].0, "Body");
    }
}
