//! `.wdoc` upmarker — the simulated word-processor format.
//!
//! Real Word binaries are unavailable offline; `.wdoc` is the substitution
//! documented in DESIGN.md. It preserves exactly the signal the paper's
//! Word parser keys on: *named paragraph styles*. Each paragraph is one
//! line, optionally prefixed with its style:
//!
//! ```text
//! <<Title>> Proposal for Ion Engine Research
//! <<Heading1>> Budget
//! <<Normal>> We request **$2.4M** over three years.
//! plain lines default to Normal
//! <<Table>> cell1 | cell2 | cell3
//! ```
//!
//! Styles `Title` and `Heading1`–`Heading9` open contexts (level 1 for
//! Title/Heading1, 2 for Heading2, …); `Table` rows aggregate into a table
//! node; everything else is body content with `**bold**` runs.

use crate::canonical::{parse_inline_runs, UpmarkBuilder};
use netmark_model::{Document, Node};

fn style_of(line: &str) -> (String, &str) {
    let t = line.trim_start();
    if let Some(rest) = t.strip_prefix("<<") {
        if let Some(close) = rest.find(">>") {
            let style = rest[..close].trim().to_string();
            return (style, rest[close + 2..].trim_start());
        }
    }
    ("Normal".to_string(), line)
}

fn heading_level(style: &str) -> Option<u32> {
    if style.eq_ignore_ascii_case("title") {
        return Some(1);
    }
    let rest = style
        .strip_prefix("Heading")
        .or_else(|| style.strip_prefix("heading"))?;
    let n: u32 = rest.trim().parse().ok()?;
    (1..=9).contains(&n).then_some(n)
}

/// Upmarks a `.wdoc` file.
pub fn parse_wdoc(name: &str, content: &str) -> Document {
    let mut b = UpmarkBuilder::new(name, "wdoc");
    let mut table_rows: Vec<Node> = Vec::new();

    let flush_table = |b: &mut UpmarkBuilder, rows: &mut Vec<Node>| {
        if rows.is_empty() {
            return;
        }
        let mut table = Node::element("table");
        table.children = std::mem::take(rows);
        b.node(table);
    };

    for line in content.lines() {
        if line.trim().is_empty() {
            flush_table(&mut b, &mut table_rows);
            continue;
        }
        let (style, text) = style_of(line);
        if style == "Table" {
            let mut row = Node::element("row");
            for cell in text.split('|') {
                row.children
                    .push(Node::element("cell").with_child(Node::text(cell.trim())));
            }
            table_rows.push(row);
            continue;
        }
        flush_table(&mut b, &mut table_rows);
        if let Some(level) = heading_level(&style) {
            b.context(text, level);
        } else if text.trim().is_empty() {
            // Style with no text: skip.
        } else {
            let mut runs = parse_inline_runs(text);
            // Unknown non-Normal styles are preserved as an attribute so
            // clients can impose their own semantics (the paper's thesis).
            if style != "Normal" {
                let mut p = Node::element("p").with_attr("style", &style);
                p.children = std::mem::take(&mut runs);
                b.node(p);
            } else {
                b.runs(runs);
            }
        }
    }
    flush_table(&mut b, &mut table_rows);
    b.finish().with_source_size(content.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "<<Title>> Ion Engine Proposal\n\
<<Normal>> Submitted to NASA Ames.\n\
<<Heading1>> Budget\n\
<<Normal>> We request **$2.4M**.\n\
<<Table>> Year | Amount\n\
<<Table>> 2005 | 800K\n\
<<Heading2>> Travel\n\
plain paragraph\n";

    #[test]
    fn title_and_headings_open_contexts() {
        let d = parse_wdoc("p.wdoc", SAMPLE);
        let labels: Vec<String> = d
            .context_content_pairs()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(labels, vec!["Ion Engine Proposal", "Budget", "Travel"]);
    }

    #[test]
    fn heading_levels() {
        let d = parse_wdoc("p.wdoc", SAMPLE);
        let contexts = d.root.find_all("Context");
        assert_eq!(contexts[0].attr("level"), Some("1"));
        assert_eq!(contexts[2].attr("level"), Some("2"));
    }

    #[test]
    fn tables_aggregate() {
        let d = parse_wdoc("p.wdoc", SAMPLE);
        let table = d.root.find("table").unwrap();
        assert_eq!(table.find_all("row").len(), 2);
        assert_eq!(table.find_all("cell").len(), 4);
        assert_eq!(table.find_all("cell")[3].text_content(), "800K");
    }

    #[test]
    fn bold_runs_and_default_style() {
        let d = parse_wdoc("p.wdoc", SAMPLE);
        assert_eq!(d.root.find("b").unwrap().text_content(), "$2.4M");
        let pairs = d.context_content_pairs();
        assert!(pairs.last().unwrap().1.contains("plain paragraph"));
    }

    #[test]
    fn unknown_style_preserved_as_attr() {
        let d = parse_wdoc("q.wdoc", "<<Heading1>> A\n<<Quote>> wise words\n");
        let p = d
            .root
            .find_all("p")
            .into_iter()
            .find(|p| p.attr("style").is_some())
            .unwrap();
        assert_eq!(p.attr("style"), Some("Quote"));
        assert_eq!(p.text_content(), "wise words");
    }

    #[test]
    fn malformed_style_marker_is_text() {
        let d = parse_wdoc("m.wdoc", "<<Unclosed text here\n");
        assert!(d
            .context_content_pairs()
            .iter()
            .any(|(_, c)| c.contains("Unclosed text here")));
    }

    #[test]
    fn heading_out_of_range_is_content() {
        let d = parse_wdoc("r.wdoc", "<<Heading12>> not a heading really\n");
        assert_eq!(d.context_content_pairs()[0].0, "Body");
    }
}
