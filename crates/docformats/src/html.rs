//! HTML and XML upmarkers.
//!
//! HTML: parse leniently (via `netmark-sgml`), then linearize into the
//! canonical Context/Content alternation — headings (`h1`–`h6`, `title`)
//! open sections "similar to the `<H1>` and `<H2>` header tags commonly
//! found within HTML pages" (paper §2.1.4); tables are kept as subtrees;
//! `script`/`style` are dropped.
//!
//! XML: documents that are *already* structured (e.g. produced by another
//! NETMARK) are stored as parsed — upmarking is the identity on them.

use crate::canonical::UpmarkBuilder;
use netmark_model::{Document, Node, NodeType};
use netmark_sgml::{parse_html as sgml_parse_html, parse_xml as sgml_parse_xml, NodeTypeConfig};

fn heading_level(name: &str) -> u32 {
    match name {
        "title" => 1,
        "h1" => 1,
        "h2" => 2,
        "h3" => 3,
        "h4" => 4,
        "h5" => 5,
        "h6" => 6,
        _ => 1,
    }
}

const PARA_BREAKERS: &[&str] = &["p", "div", "li", "tr", "br", "section", "article", "td"];
const SKIP: &[&str] = &["script", "style", "head"];

struct HtmlWalk<'a> {
    b: &'a mut UpmarkBuilder,
    para: Vec<Node>,
}

impl HtmlWalk<'_> {
    fn flush(&mut self) {
        if !self.para.is_empty() {
            let runs = std::mem::take(&mut self.para);
            self.b.runs(runs);
        }
    }

    fn walk(&mut self, node: &Node) {
        match node.ntype {
            NodeType::Text => {
                let t = node.text.trim();
                if !t.is_empty() {
                    self.para.push(Node::text(t));
                }
            }
            NodeType::Context => {
                self.flush();
                self.b
                    .context(&node.text_content(), heading_level(&node.name));
            }
            NodeType::Intense => {
                let t = node.text_content();
                if !t.is_empty() {
                    self.para
                        .push(Node::intense(&node.name).with_child(Node::text(&t)));
                }
            }
            _ => {
                if SKIP.contains(&node.name.as_str()) {
                    // `<title>` lives in `<head>` but is a context.
                    for c in &node.children {
                        if c.ntype == NodeType::Context {
                            self.flush();
                            self.b.context(&c.text_content(), heading_level(&c.name));
                        }
                    }
                    return;
                }
                if node.name == "table" {
                    self.flush();
                    self.b.node(node.clone());
                    return;
                }
                let breaks = PARA_BREAKERS.contains(&node.name.as_str());
                if breaks {
                    self.flush();
                }
                for c in &node.children {
                    self.walk(c);
                }
                if breaks {
                    self.flush();
                }
            }
        }
    }
}

/// Upmarks an HTML page.
pub fn parse_html_doc(name: &str, content: &str) -> Document {
    let cfg = NodeTypeConfig::html_default();
    let tree = sgml_parse_html(content, &cfg);
    let mut b = UpmarkBuilder::new(name, "html");
    {
        let mut w = HtmlWalk {
            b: &mut b,
            para: Vec::new(),
        };
        w.walk(&tree);
        w.flush();
    }
    b.finish().with_source_size(content.len() as u64)
}

/// Parses an already-structured XML document (identity upmark). Falls back
/// to plain-text upmarking when the XML is malformed, so ingest never
/// rejects a document.
pub fn parse_xml_doc(name: &str, content: &str) -> Document {
    let cfg = NodeTypeConfig::xml_default();
    match sgml_parse_xml(content, &cfg) {
        Ok(root) => Document::new(name, "xml", root).with_source_size(content.len() as u64),
        Err(_) => crate::plaintext::parse_plaintext(name, content),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<html><head><title>Lessons Learned 0424</title>
<style>p { color: red }</style></head>
<body>
<h1>Summary</h1>
<p>The <b>engine</b> controller faulted during ascent.</p>
<h2>Recommendation</h2>
<p>Replace the harness.</p><p>Re-inspect before flight.</p>
<table><tr><td>Code</td><td>E-42</td></tr></table>
</body></html>"#;

    #[test]
    fn headings_become_contexts() {
        let d = parse_html_doc("l.html", PAGE);
        let labels: Vec<String> = d
            .context_content_pairs()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(
            labels,
            vec!["Lessons Learned 0424", "Summary", "Recommendation"]
        );
    }

    #[test]
    fn levels_follow_tags() {
        let d = parse_html_doc("l.html", PAGE);
        let ctxs = d.root.find_all("Context");
        assert_eq!(ctxs[1].attr("level"), Some("1"));
        assert_eq!(ctxs[2].attr("level"), Some("2"));
    }

    #[test]
    fn style_dropped_bold_kept() {
        let d = parse_html_doc("l.html", PAGE);
        let text = d.root.text_content();
        assert!(!text.contains("color: red"));
        assert_eq!(d.root.find("b").unwrap().text_content(), "engine");
    }

    #[test]
    fn paragraph_boundaries() {
        let d = parse_html_doc("l.html", PAGE);
        let pairs = d.context_content_pairs();
        let rec = &pairs[2].1;
        assert!(rec.contains("Replace the harness"));
        assert!(rec.contains("Re-inspect"));
    }

    #[test]
    fn table_preserved_as_subtree() {
        let d = parse_html_doc("l.html", PAGE);
        let table = d.root.find("table").unwrap();
        assert_eq!(table.find_all("td").len(), 2);
    }

    #[test]
    fn xml_identity() {
        let src = "<doc><Context>Budget</Context><Content>money</Content></doc>";
        let d = parse_xml_doc("d.xml", src);
        assert_eq!(d.format, "xml");
        assert_eq!(
            d.context_content_pairs(),
            vec![("Budget".to_string(), "money".to_string())]
        );
    }

    #[test]
    fn malformed_xml_degrades_to_text() {
        let d = parse_xml_doc("bad.xml", "<unclosed>\nplain fallback text");
        assert_eq!(d.format, "text");
        assert!(d.root.text_content().contains("plain fallback text"));
    }

    #[test]
    fn messy_html_still_upmarks() {
        let d = parse_html_doc("m.html", "<h1>Top<p>one<p>two");
        let pairs = d.context_content_pairs();
        assert_eq!(pairs[0].0, "Top");
        assert!(pairs[0].1.contains("one"));
        assert!(pairs[0].1.contains("two"));
    }
}
