//! `netmark-docformats`: automated metadata extraction — the paper's
//! format "upmarkers".
//!
//! "We have developed parsers for a wide variety of document formats (such
//! as Word, PDF, HTML, Powerpoint and others) that automatically structure
//! and 'upmark' a document into XML based on the formatting information in
//! the document" (paper §4). Binary Word/PDF/PowerPoint are unavailable
//! offline, so this crate parses *simulated* formats carrying the same
//! formatting cues (see DESIGN.md's substitution table):
//!
//! | format | cue used for structure |
//! |---|---|
//! | plain text / Markdown | `#`, numbering, underlines, ALL CAPS |
//! | `.wdoc` (Word stand-in) | named paragraph styles (`<<Heading1>>`) |
//! | `.pdoc` (PDF stand-in) | font sizes and bold spans |
//! | `.sdoc` (slides stand-in) | slide titles and bullets |
//! | HTML | `h1`–`h6`, `title`, emphasis tags |
//! | XML | already structured (identity) |
//! | CSV | header row → named record fields |
//!
//! Every parser emits the same canonical Fig-4 shape — alternating
//! `<Context>` / `<Content>` siblings — via [`canonical::UpmarkBuilder`].
//! Entry point: [`upmark`].

#![warn(missing_docs)]

pub mod canonical;
pub mod detect;
pub mod html;
pub mod pdoc;
pub mod plaintext;
pub mod sdoc;
pub mod spreadsheet;
pub mod wdoc;

pub use canonical::UpmarkBuilder;
pub use detect::{detect_format, upmark, upmark_as, Format};
pub use html::{parse_html_doc, parse_xml_doc};
pub use pdoc::parse_pdoc;
pub use plaintext::parse_plaintext;
pub use sdoc::parse_sdoc;
pub use spreadsheet::{parse_csv, split_csv_line};
pub use wdoc::parse_wdoc;
