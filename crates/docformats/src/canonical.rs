//! The canonical upmarked form every format parser produces.
//!
//! Fig 4 of the paper shows what upmarking yields: a flat alternation of
//! `<Context>heading</Context>` and `<Content>...</Content>` elements under
//! a document root. The query processor depends on contexts and their
//! content being *siblings* (it walks up from a text hit to the nearest
//! preceding context — §2.1.4), so every parser emits this shape.

use netmark_model::{Document, Node, NodeType};

/// Incrementally builds a canonical upmarked document.
pub struct UpmarkBuilder {
    name: String,
    format: String,
    nodes: Vec<Node>,
    /// Children of the currently open `<Content>`.
    pending: Vec<Node>,
}

impl UpmarkBuilder {
    /// Starts a document named `name` of source format `format`.
    pub fn new(name: &str, format: &str) -> UpmarkBuilder {
        UpmarkBuilder {
            name: name.to_string(),
            format: format.to_string(),
            nodes: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn flush_content(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut content = Node::element("Content");
        content.children = std::mem::take(&mut self.pending);
        self.nodes.push(content);
    }

    /// Opens a new section with the given heading text and level (1 = top).
    pub fn context(&mut self, label: &str, level: u32) {
        self.flush_content();
        let node = Node::context("Context", label).with_attr("level", &level.to_string());
        self.nodes.push(node);
    }

    /// Appends a paragraph of plain text to the open section.
    pub fn paragraph(&mut self, text: &str) {
        let t = text.trim();
        if t.is_empty() {
            return;
        }
        self.pending
            .push(Node::element("p").with_child(Node::text(t)));
    }

    /// Appends an arbitrary node (tables, styled runs…) to the open section.
    pub fn node(&mut self, node: Node) {
        self.pending.push(node);
    }

    /// Appends a paragraph built from mixed runs (text + intense spans).
    pub fn runs(&mut self, runs: Vec<Node>) {
        if runs.is_empty() {
            return;
        }
        let mut p = Node::element("p");
        p.children = runs;
        self.pending.push(p);
    }

    /// Finishes the document. Content with no preceding heading gets an
    /// implied `Body` context, synthesized by the upmarker and flagged
    /// `simulated="true"`.
    pub fn finish(mut self) -> Document {
        self.flush_content();
        let mut root = Node::element("document")
            .with_attr("name", &self.name)
            .with_attr("format", &self.format);
        // If actual content appears before any context (or there is content
        // but no context at all), synthesize one so every content node is
        // reachable. Non-content markers (page breaks) don't count.
        let first_ctx = self.nodes.iter().position(|n| n.ntype == NodeType::Context);
        let has_text = |n: &Node| {
            n.iter()
                .any(|d| d.ntype == NodeType::Text && !d.text.trim().is_empty())
        };
        let needs_leading = match first_ctx {
            Some(i) => self.nodes[..i]
                .iter()
                .any(|n| n.name == "Content" && has_text(n)),
            None => self.nodes.iter().any(has_text),
        };
        if needs_leading {
            // A context the source never contained: still a CONTEXT node
            // (the query processor must find it), flagged as synthesized.
            let sim = Node::context("Context", "Body")
                .with_attr("level", "1")
                .with_attr("simulated", "true");
            root.children.push(sim);
        }
        root.children.extend(self.nodes);
        Document::new(&self.name, &self.format, root)
    }
}

/// Splits inline `**bold**` emphasis into text / intense runs.
pub fn parse_inline_runs(text: &str) -> Vec<Node> {
    let mut runs = Vec::new();
    let mut rest = text;
    loop {
        match rest.find("**") {
            None => {
                if !rest.trim().is_empty() {
                    runs.push(Node::text(rest));
                }
                return runs;
            }
            Some(open) => {
                let after = &rest[open + 2..];
                match after.find("**") {
                    None => {
                        // Unclosed marker: literal.
                        if !rest.trim().is_empty() {
                            runs.push(Node::text(rest));
                        }
                        return runs;
                    }
                    Some(close) => {
                        if !rest[..open].trim().is_empty() {
                            runs.push(Node::text(&rest[..open]));
                        }
                        let inner = &after[..close];
                        if !inner.is_empty() {
                            runs.push(Node::intense("b").with_child(Node::text(inner)));
                        }
                        rest = &after[close + 2..];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_context_content() {
        let mut b = UpmarkBuilder::new("d.txt", "text");
        b.context("Introduction", 1);
        b.paragraph("first");
        b.paragraph("second");
        b.context("Budget", 1);
        b.paragraph("dollars");
        let d = b.finish();
        let pairs = d.context_content_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(
            pairs[0],
            ("Introduction".to_string(), "first second".to_string())
        );
        assert_eq!(pairs[1].0, "Budget");
    }

    #[test]
    fn leading_content_gets_simulated_body() {
        let mut b = UpmarkBuilder::new("d.txt", "text");
        b.paragraph("orphan text");
        b.context("Later", 1);
        b.paragraph("x");
        let d = b.finish();
        let pairs = d.context_content_pairs();
        assert_eq!(pairs[0].0, "Body");
        assert_eq!(pairs[0].1, "orphan text");
        // The synthesized context is flagged.
        let first_ctx = d
            .root
            .children
            .iter()
            .find(|n| n.ntype == NodeType::Context)
            .unwrap();
        assert_eq!(first_ctx.text_content(), "Body");
        assert_eq!(first_ctx.attr("simulated"), Some("true"));
    }

    #[test]
    fn no_context_at_all() {
        let mut b = UpmarkBuilder::new("d.txt", "text");
        b.paragraph("just text");
        let d = b.finish();
        let pairs = d.context_content_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, "Body");
    }

    #[test]
    fn empty_document() {
        let d = UpmarkBuilder::new("e.txt", "text").finish();
        assert!(d.context_content_pairs().is_empty());
        assert!(d.root.children.is_empty());
    }

    #[test]
    fn inline_runs() {
        let runs = parse_inline_runs("plain **bold** tail");
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[1].ntype, NodeType::Intense);
        assert_eq!(runs[1].text_content(), "bold");
        // Unclosed marker is literal.
        let runs = parse_inline_runs("a ** b");
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].text, "a ** b");
    }
}
