//! Plain-text upmarker.
//!
//! Recovers section structure from the cues people actually leave in text
//! files: Markdown-style `#` headings, numbered headings (`3.2 Results`),
//! underlined headings (`====`/`----`), and ALL-CAPS lines.

use crate::canonical::{parse_inline_runs, UpmarkBuilder};
use netmark_model::Document;

fn is_underline(line: &str) -> Option<u32> {
    let t = line.trim();
    if t.len() >= 3 && t.chars().all(|c| c == '=') {
        return Some(1);
    }
    if t.len() >= 3 && t.chars().all(|c| c == '-') {
        return Some(2);
    }
    None
}

fn hash_heading(line: &str) -> Option<(u32, &str)> {
    let t = line.trim_start();
    let hashes = t.chars().take_while(|&c| c == '#').count();
    if hashes == 0 || hashes > 6 {
        return None;
    }
    let rest = t[hashes..].trim();
    if rest.is_empty() {
        return None;
    }
    Some((hashes as u32, rest))
}

fn numbered_heading(line: &str) -> Option<(u32, &str)> {
    // "1. Introduction", "2.3 Cost Model", "IV." is out of scope.
    let t = line.trim();
    let mut dots = 0u32;
    let mut idx = 0usize;
    let bytes = t.as_bytes();
    let mut saw_digit = false;
    while idx < bytes.len() {
        match bytes[idx] {
            b'0'..=b'9' => {
                saw_digit = true;
                idx += 1;
            }
            b'.' => {
                dots += 1;
                idx += 1;
            }
            b' ' => break,
            _ => return None,
        }
    }
    if !saw_digit || dots == 0 || idx >= bytes.len() {
        return None;
    }
    let title = t[idx..].trim();
    // Headings are short and don't end in sentence punctuation.
    if title.is_empty() || title.len() > 80 || title.ends_with('.') {
        return None;
    }
    // Require the title to start with an uppercase letter to avoid
    // swallowing numbered list items ("1. buy milk" stays content).
    if !title
        .chars()
        .next()
        .map(char::is_uppercase)
        .unwrap_or(false)
    {
        return None;
    }
    Some((dots.min(6), title))
}

fn all_caps_heading(line: &str) -> Option<&str> {
    let t = line.trim();
    if t.len() < 3 || t.len() > 60 {
        return None;
    }
    let letters: Vec<char> = t.chars().filter(|c| c.is_alphabetic()).collect();
    if letters.len() < 3 {
        return None;
    }
    if letters.iter().all(|c| c.is_uppercase()) {
        Some(t)
    } else {
        None
    }
}

/// Upmarks a plain-text file.
pub fn parse_plaintext(name: &str, content: &str) -> Document {
    let mut b = UpmarkBuilder::new(name, "text");
    let lines: Vec<&str> = content.lines().collect();
    let mut para = String::new();
    let mut i = 0usize;

    macro_rules! flush_para {
        ($b:expr) => {
            if !para.trim().is_empty() {
                $b.runs(parse_inline_runs(para.trim()));
                para.clear();
            } else {
                para.clear();
            }
        };
    }

    while i < lines.len() {
        let line = lines[i];
        // Underlined heading: a short line followed by ===/---.
        if i + 1 < lines.len() {
            if let Some(level) = is_underline(lines[i + 1]) {
                let t = line.trim();
                if !t.is_empty() && t.len() <= 80 {
                    flush_para!(b);
                    b.context(t, level);
                    i += 2;
                    continue;
                }
            }
        }
        if let Some((level, title)) = hash_heading(line) {
            flush_para!(b);
            b.context(title, level);
            i += 1;
            continue;
        }
        if let Some((level, title)) = numbered_heading(line) {
            flush_para!(b);
            b.context(title, level);
            i += 1;
            continue;
        }
        if let Some(title) = all_caps_heading(line) {
            flush_para!(b);
            b.context(title, 1);
            i += 1;
            continue;
        }
        if line.trim().is_empty() {
            flush_para!(b);
        } else {
            if !para.is_empty() {
                para.push(' ');
            }
            para.push_str(line.trim());
        }
        i += 1;
    }
    flush_para!(b);
    b.finish().with_source_size(content.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_headings() {
        let d = parse_plaintext(
            "m.txt",
            "# Introduction\nsome text\n\n## Details\nmore text\n",
        );
        let pairs = d.context_content_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], ("Introduction".into(), "some text".into()));
        assert_eq!(pairs[1].0, "Details");
    }

    #[test]
    fn numbered_headings() {
        let d = parse_plaintext(
            "n.txt",
            "1. Introduction\nalpha beta\n2.1 Cost Model\ngamma\n",
        );
        let labels: Vec<String> = d
            .context_content_pairs()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(labels, vec!["Introduction", "Cost Model"]);
    }

    #[test]
    fn numbered_list_items_stay_content() {
        let d = parse_plaintext("l.txt", "# Tasks\n1. buy milk\n2. fix engine\n");
        let pairs = d.context_content_pairs();
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].1.contains("buy milk"));
    }

    #[test]
    fn underlined_headings() {
        let d = parse_plaintext(
            "u.txt",
            "Budget\n======\ncosts here\n\nSchedule\n--------\ndates here\n",
        );
        let pairs = d.context_content_pairs();
        assert_eq!(pairs[0].0, "Budget");
        assert_eq!(pairs[1].0, "Schedule");
        assert_eq!(pairs[1].1, "dates here");
    }

    #[test]
    fn all_caps_headings() {
        let d = parse_plaintext("c.txt", "EXECUTIVE SUMMARY\nwe did things\n");
        assert_eq!(d.context_content_pairs()[0].0, "EXECUTIVE SUMMARY");
    }

    #[test]
    fn paragraphs_join_across_linebreaks() {
        let d = parse_plaintext("p.txt", "# A\nline one\nline two\n\nsecond para\n");
        let pairs = d.context_content_pairs();
        assert_eq!(pairs[0].1, "line one line two second para");
    }

    #[test]
    fn bold_runs_become_intense() {
        let d = parse_plaintext("b.txt", "# A\nthis is **important** stuff\n");
        assert!(d.root.find("b").is_some());
        assert_eq!(d.root.find("b").unwrap().text_content(), "important");
    }

    #[test]
    fn headingless_text_gets_body() {
        let d = parse_plaintext("x.txt", "just some prose\n");
        assert_eq!(d.context_content_pairs()[0].0, "Body");
    }
}
