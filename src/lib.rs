//! Umbrella crate for the NETMARK reproduction workspace.
//!
//! The root package exists to host workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! surface lives in the [`netmark`] facade crate and the substrate crates
//! it re-exports.

pub use netmark;
